//! LLM serving scenario: compare all five designs (§6.1) across batch
//! sizes for one model, reproducing the Fig. 17 reading for one column.
//!
//! ```text
//! cargo run --release --example llm_serving [model] [seq_len] [--threads N]
//! # model in {llama13, llama70, gemma27, opt30}, default llama13
//! ```

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let parsed = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let model_arg = parsed
        .rest
        .first()
        .cloned()
        .unwrap_or_else(|| "llama13".into());
    let seq: u64 = parsed
        .rest
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let cfg = match zoo::by_name(&model_arg) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let runner = DesignRunner::new(presets::ipu_pod4()).with_threads(parsed.threads);
    println!(
        "{} decode, seq_len {seq}, 4 chips, 16 TB/s pod HBM",
        cfg.name
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "batch", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal"
    );

    for batch in [16u64, 32, 64] {
        let graph = cfg.build(Workload::decode(batch, seq), 4);
        let catalog = runner.catalog(&graph)?;
        let mut row = format!("{batch:>6}");
        for design in Design::ALL {
            let out = runner.run(design, &graph, &catalog, &SimOptions::default())?;
            row.push_str(&format!(" {:>8.2}ms", out.report.total.as_millis()));
        }
        println!("{row}");
    }

    println!();
    println!("Expected: ELK-Full tracks Ideal closely and the gap to Basic/Static");
    println!("widens with batch (KV-cache pressure on the on-chip memory).");
    Ok(())
}
