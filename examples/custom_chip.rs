//! Bring-your-own hardware: describe a hypothetical ICCA chip (not an
//! IPU), compile a diffusion transformer for it, and inspect the chosen
//! execution plan — the "generic interface ... to popular ICCA chip
//! architectures" claim (§4.5).
//!
//! ```text
//! cargo run --release --example custom_chip [--threads N]
//! ```

use elk::hw::{ChipConfig, HbmConfig, SramContention, SystemConfig, Topology};
use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let threads = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed.threads,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // A Tenstorrent-flavoured part: fewer, beefier cores on a 2D mesh
    // with dual-ported SRAM (remote accesses overlap compute).
    let cores = 900; // 30 x 30 mesh
    let chip = ChipConfig {
        name: "meshling-900".into(),
        cores,
        sram_per_core: Bytes::mib(1),
        io_buffer_per_core: Bytes::kib(16),
        matmul_rate_per_core: FlopRate::new(320e12 / cores as f64),
        vector_rate_per_core: FlopRate::new(10e12 / cores as f64),
        sram_bw_per_core: ByteRate::new(64e9),
        sram_contention: SramContention::Concurrent,
        topology: Topology::mesh_with_total(ByteRate::tib_per_sec(10.0), cores),
    };
    let system = SystemConfig {
        chip,
        hbm: HbmConfig::new(6, ByteRate::gib_per_sec(400.0)),
        chips: 1,
        inter_chip_bw: ByteRate::ZERO,
        inter_chip_topology: elk::hw::InterChipTopology::Ring,
    };
    println!("target: {system}");

    // DiT-XL denoising step, single chip.
    let graph = zoo::dit_xl().build(Workload::decode(8, 256), 1);
    let opts = CompilerOptions {
        threads,
        ..CompilerOptions::default()
    };
    let plan = Compiler::with_options(system.clone(), opts).compile(&graph)?;

    // Inspect a few chosen plans: the §5 "list of integers".
    println!("\nchosen plans (layer 5):");
    let span = graph.layer_spans()[5].ops.clone();
    for i in span.clone().take(6) {
        let spec = &plan.program.specs[i];
        println!(
            "  {:<16} tile {} x{} on {} cores, exec space {}, preload {}",
            spec.name, spec.tile, spec.chunks, spec.cores_used, spec.exec_space, spec.preload_space,
        );
    }

    let report = simulate(&plan.program, &system, &SimOptions::default());
    println!(
        "\nstep latency {} | {:.1} of {:.0} TFLOPS | HBM util {:.0}%",
        report.total,
        report.achieved.as_tera(),
        system.chip.matmul_rate().as_tera(),
        report.hbm_util * 100.0
    );
    println!("(diffusion is compute-bound: preload efficiency matters less, Fig. 23)");
    Ok(())
}
