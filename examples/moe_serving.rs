//! Mixture-of-experts serving (§7 "Apply Elk to MoE"): compile a
//! Mixtral-style model with the generic-expert plan and compare the cost
//! of sparse (top-2 of 8 experts) vs hypothetical dense execution.
//!
//! ```text
//! cargo run --release --example moe_serving [--threads N]
//! ```

use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let threads = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed.threads,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let system = presets::ipu_pod4();
    let cfg = zoo::mixtral_8x7b();
    println!(
        "{}: {:.0}B total parameters, {:.0}B active per token (top-{} of {})",
        cfg.name,
        cfg.param_count() as f64 / 1e9,
        cfg.active_param_count() as f64 / 1e9,
        cfg.experts_per_token,
        cfg.experts,
    );

    let graph = cfg.build(Workload::decode(32, 2048), 4);
    println!(
        "per-shard HBM per decode step: {} (only the routed experts load)",
        graph.total_hbm_load()
    );

    let opts = CompilerOptions {
        threads,
        ..CompilerOptions::default()
    };
    let plan = Compiler::with_options(system.clone(), opts).compile(&graph)?;
    let report = simulate(&plan.program, &system, &SimOptions::default());
    println!(
        "per-token latency {} | HBM util {:.0}% | mean preload number {:.1}",
        report.total,
        report.hbm_util * 100.0,
        plan.stats.avg_preload_number,
    );
    assert_eq!(report.capacity_violations, 0);

    // At compile time every expert has the same shape, so the schedule is
    // built for a generic expert; the runtime binds expert indices when
    // each preload_async is issued. Elk already places preloads as late
    // as the overlap windows allow, which is what keeps the binding after
    // the routing operator.
    let span = graph.layer_spans()[1].ops.clone();
    println!("\nlayer-1 preload picture:");
    for i in span {
        let spec = &plan.program.specs[i];
        if spec.hbm_load.get() > 0 {
            println!(
                "  {:<22} loads {:>9} -> preload space {:>9}/core",
                spec.name,
                spec.hbm_load.to_string(),
                spec.preload_space.to_string(),
            );
        }
    }
    Ok(())
}
