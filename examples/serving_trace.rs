//! Request-level serving: replay one seeded trace against all five
//! designs and compare TTFT / TPOT / p99 / goodput — the serving-system
//! view the paper's per-batch numbers (Fig. 17) do not show.
//!
//! ```text
//! cargo run --release --example serving_trace [model] [replicas] [--threads N]
//! # model in {llama13, llama70, gemma27, opt30}, default llama13
//! ```

use elk::baselines::Design;
use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let parsed = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let model_arg = parsed
        .rest
        .first()
        .cloned()
        .unwrap_or_else(|| "llama13".into());
    let model = match zoo::by_name(&model_arg) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let replicas: usize = match parsed.rest.get(1) {
        None => 1,
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid replica count '{s}': expected a positive integer");
                std::process::exit(2);
            }
        },
    };

    // A thundering-herd trace: a burst of long-prompt requests saturates
    // the batcher, driving decode to batch 32-64 against 2048/4096-deep
    // KV contexts — the memory-pressured regime where the paper's design
    // gap is decisive (Fig. 17) — with outputs long enough that decode,
    // not prefill, dominates each request's lifetime.
    let trace = TraceConfig {
        seed: 0x5eed,
        requests: 64,
        arrivals: ArrivalProcess::Bursty {
            rate_rps: 300.0,
            burst_factor: 3.5,
            period_s: 0.2,
            duty: 0.25,
        },
        prompt_len: LengthDist::Uniform { lo: 1700, hi: 3600 },
        output_len: LengthDist::Uniform { lo: 160, hi: 320 },
    }
    .generate();

    println!(
        "{}: {} requests over {:.3} s ({} output tokens), {} replica(s) x 4 chips, {} worker thread(s)",
        model.name,
        trace.len(),
        trace.duration().as_secs(),
        trace.total_output_tokens(),
        replicas,
        parsed.threads,
    );
    println!();

    // Under a saturating burst, TTFT is queueing-dominated for every
    // design; the SLO that separates them is the decode-speed (TPOT)
    // bound.
    let mut config = ServeConfig::new(model, 4)
        .with_replicas(replicas)
        .with_threads(parsed.threads);
    // Batch 32 keeps decode in the regime where every design is
    // HBM-overlappable (at batch 64 x seq 4096 even Static's tuned split
    // thrashes and the Fig. 17 ordering degenerates).
    config.batch.max_batch = 32;
    config.slo = SloConfig {
        ttft: Seconds::new(20.0),
        tpot: Seconds::from_millis(25.0),
    };
    let mut sim = ServingSim::new(presets::ipu_pod4(), config);

    let mut mean_tpot = Vec::new(); // (design, secs), in Design::ALL order
    let mut rows = Vec::new();
    for design in Design::ALL {
        let report = sim.run(design, &trace)?;
        assert_eq!(report.completed, trace.len());
        rows.push(format!(
            "{:>9} {:>9.2} {:>9.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2} {:>8.1} {:>7.0}%  {:>4}/{:<4}",
            design.to_string(),
            report.ttft.p50.as_millis(),
            report.ttft.p99.as_millis(),
            report.tpot.mean.as_millis(),
            report.tpot.p99.as_millis(),
            report.e2e.p99.as_millis(),
            report.makespan.as_millis(),
            report.goodput_rps,
            report.slo_attainment * 100.0,
            report.cache.hits,
            report.cache.misses,
        ));
        mean_tpot.push((design, report.tpot.mean.as_secs()));
    }

    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}  {:>9}",
        "design",
        "TTFT-p50",
        "TTFT-p99",
        "TPOT",
        "TPOT-p99",
        "E2E-p99",
        "makespan",
        "goodput",
        "SLO",
        "hit/miss"
    );
    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "", "(ms)", "(ms)", "(ms)", "(ms)", "(ms)", "(ms)", "(req/s)", ""
    );
    for row in &rows {
        println!("{row}");
    }

    // Fig. 17's design ordering must survive the request-level view:
    // Ideal <= ELK-Full <= ELK-Dyn/Static <= Basic on mean TPOT.
    let tpot_of = |d: Design| {
        mean_tpot
            .iter()
            .find(|(design, _)| *design == d)
            .expect("all designs ran")
            .1
    };
    let (basic, stat, dyn_, full, ideal) = (
        tpot_of(Design::Basic),
        tpot_of(Design::Static),
        tpot_of(Design::ElkDyn),
        tpot_of(Design::ElkFull),
        tpot_of(Design::Ideal),
    );
    let slack = 1.02; // simulator noise tolerance
    assert!(ideal <= full * slack, "Ideal {ideal} > ELK-Full {full}");
    assert!(full <= dyn_ * slack, "ELK-Full {full} > ELK-Dyn {dyn_}");
    assert!(full <= stat * slack, "ELK-Full {full} > Static {stat}");
    assert!(dyn_ <= basic * slack, "ELK-Dyn {dyn_} > Basic {basic}");
    assert!(stat <= basic * slack, "Static {stat} > Basic {basic}");

    let stats = sim.cache_stats();
    println!();
    println!(
        "plan cache over all designs: {} hits / {} misses ({:.0}% hit rate) — repeated seq buckets never recompile",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(
        stats.hits > 0,
        "repeated step shapes must hit the plan cache"
    );
    Ok(())
}
