//! Architecture design-space exploration (§6.4): sweep HBM bandwidth and
//! interconnect topology for a new ICCA chip and see where the
//! bottleneck moves — the paper's "HBM and interconnect must scale
//! together" insight.
//!
//! ```text
//! cargo run --release --example design_space [--threads N]
//! ```

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let threads = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed.threads,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let graph = zoo::llama2_70b().build(Workload::decode(32, 2048), 4);

    for (name, base) in [
        ("all-to-all", presets::ipu_pod4()),
        ("2D mesh", presets::ipu_pod4_mesh()),
    ] {
        println!("== {name} interconnect ==");
        println!(
            "{:>10} {:>12} {:>12} {:>10}",
            "HBM TB/s", "ELK-Full", "Ideal", "NoC util"
        );
        let runner = DesignRunner::new(base).with_threads(threads);
        let catalog = runner.catalog(&graph)?;
        for hbm_tbps in [4.0f64, 8.0, 12.0, 16.0] {
            let swept = runner.with_system(
                runner
                    .system()
                    .with_total_hbm_bandwidth(ByteRate::tib_per_sec(hbm_tbps)),
            );
            let full = swept.run(Design::ElkFull, &graph, &catalog, &SimOptions::default())?;
            let ideal = swept.run(Design::Ideal, &graph, &catalog, &SimOptions::default())?;
            println!(
                "{:>10.0} {:>10.2}ms {:>10.2}ms {:>9.0}%",
                hbm_tbps,
                full.report.total.as_millis(),
                ideal.report.total.as_millis(),
                full.report.noc_util * 100.0,
            );
        }
        println!();
    }

    println!("Reading: more HBM bandwidth helps until the interconnect binds; the mesh");
    println!("saturates its links earlier than the all-to-all exchange at equal aggregate");
    println!("bandwidth, so its returns diminish sooner (Figs. 19, 21, 22).");
    Ok(())
}
