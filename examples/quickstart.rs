//! Quickstart: compile one LLM decode step with Elk and measure it on
//! the ICCA chip simulator.
//!
//! ```text
//! cargo run --release --example quickstart [--threads N]
//! ```

use elk::prelude::*;

fn main() -> Result<(), elk::compiler::CompileError> {
    let threads = match elk::par::parse_threads(std::env::args().skip(1)) {
        Ok(parsed) => parsed.threads,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // The paper's platform: an IPU-POD4 (4 chips x 1472 cores x 624 KB)
    // with 4 TB/s of HBM per chip.
    let system = presets::ipu_pod4();
    println!("system: {system}  ({threads} compile threads)");

    // One decode step of Llama-2-13B: 32 requests against a 2048-token
    // KV cache, tensor-parallel over the 4 chips.
    let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
    println!("model:  {graph}");

    // Compile: enumerate partition plans, search preload orders with the
    // inductive scheduler and the cost-aware allocator, lower to the
    // abstract device program.
    let compiler = Compiler::with_options(
        system.clone(),
        CompilerOptions {
            threads,
            ..CompilerOptions::default()
        },
    );
    let plan = compiler.compile(&graph)?;
    println!(
        "compiled in {:.2}s: {} instructions, {} candidate orders, \
         mean preload number {:.1}, estimate {}",
        plan.stats.compile_seconds,
        plan.program.instrs.len(),
        plan.stats.orders_considered,
        plan.stats.avg_preload_number,
        plan.estimate.total,
    );

    // Measure on the event-driven simulator (noisy analytic device,
    // shared interconnect, HBM channels).
    let report = simulate(&plan.program, &system, &SimOptions::default());
    println!(
        "simulated per-token latency: {}  (HBM util {:.0}%, NoC util {:.0}%, {:.1} TFLOPS/chip)",
        report.total,
        report.hbm_util * 100.0,
        report.noc_util * 100.0,
        report.achieved.as_tera(),
    );
    assert_eq!(report.capacity_violations, 0, "plan must respect SRAM");

    // Compare against the paper's roofline.
    let hbm_bound = system
        .hbm
        .total_bandwidth()
        .transfer_time(graph.total_hbm_load());
    println!(
        "HBM roofline: {} -> Elk achieves {:.0}% of it end-to-end",
        hbm_bound,
        hbm_bound / report.total * 100.0
    );
    Ok(())
}
