#!/usr/bin/env bash
# BENCH.json regression guard, shared by every bench step in CI.
#
# A bench binary writing into a results directory must *merge* with the
# experiments already consolidated there — upsert, not clobber. This
# script asserts that contract after each upsert: every experiment id
# the caller names must still be present, and every report in the
# directory must round-trip through `elk validate`.
#
# Usage: ci/check_bench.sh <results-dir> <experiment-id>...
set -euo pipefail

dir="${1:?usage: ci/check_bench.sh <results-dir> <experiment-id>...}"
shift
bench="$dir/BENCH.json"

test -f "$bench" || { echo "check_bench: missing $bench" >&2; exit 1; }
test "$#" -ge 1 || { echo "check_bench: no expected experiment ids given" >&2; exit 1; }

for id in "$@"; do
  if ! grep -q "\"$id\": {" "$bench"; then
    echo "check_bench: BENCH.json lost experiment '$id' — upsert clobbered it" >&2
    exit 1
  fi
done

cargo run --release --bin elk -- validate "$dir"
