//! JSON text serialization over the vendored serde shim's [`Value`]
//! tree: `to_string`, `to_string_pretty`, and `from_str`.
//!
//! Output is deterministic (struct fields keep declaration order) and
//! round-trips through the parser. Non-finite floats — which JSON
//! cannot represent — are written as the strings `"Infinity"`,
//! `"-Infinity"`, and `"NaN"`; the shim's `f64` deserializer accepts
//! them back.
//!
//! ```
//! let json = serde_json::to_string(&vec![1u64, 2, 3]).unwrap();
//! assert_eq!(json, "[1,2,3]");
//! let back: Vec<u64> = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, vec![1, 2, 3]);
//! ```

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
/// This implementation cannot fail, but keeps the fallible signature
/// of the real `serde_json` for call-site compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
///
/// # Errors
/// This implementation cannot fail, but keeps the fallible signature
/// of the real `serde_json` for call-site compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Errors on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---- emitter ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_str(out, s),
        Value::Seq(items) => {
            write_block(
                out,
                b'[',
                b']',
                items.len(),
                indent,
                level,
                |out, i, ind, lvl| {
                    write_value(out, &items[i], ind, lvl);
                },
            );
        }
        Value::Map(entries) => {
            write_block(
                out,
                b'{',
                b'}',
                entries.len(),
                indent,
                level,
                |out, i, ind, lvl| {
                    let (k, v) = &entries[i];
                    write_str(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, ind, lvl);
                },
            );
        }
    }
}

fn write_block(
    out: &mut String,
    open: u8,
    close: u8,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open as char);
    if len == 0 {
        out.push(close as char);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, indent, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close as char);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // always with a decimal point or exponent (valid JSON).
        out.push_str(&format!("{x:?}"));
    } else if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("eof in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("eof in \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // emitter; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error::msg("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::msg(format!("invalid number {text:?}: {e}")))
    }
}
