//! Minimal offline stand-in for the `criterion` bench API used by
//! `elk-bench`: `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Instead of criterion's statistical sampling, each benchmark runs a
//! short warmup, then times a fixed batch and prints the mean
//! iteration time. That keeps `cargo bench` fast and dependency-free
//! while still exercising every bench path and producing comparable
//! numbers run-to-run. Set `ELK_BENCH_ITERS` to raise the measured
//! iteration count for lower-variance numbers.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("add", |b| b.iter(|| black_box(2) + black_box(3)));
//! ```

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn measured_iters() -> u32 {
    std::env::var("ELK_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Batch sizing hint; accepted for API compatibility, the shim times
/// each batch element individually regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many per alloc.
    SmallInput,
    /// Inputs are large; criterion would batch few per alloc.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    iters: u32,
    /// Mean seconds per iteration of the last `iter*` call.
    last_mean: f64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters: measured_iters(),
            last_mean: 0.0,
        }
    }

    /// Times `f`, discarding one warmup run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.last_mean = start.elapsed().as_secs_f64() / f64::from(self.iters);
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let mut total = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed().as_secs_f64();
        }
        self.last_mean = total / f64::from(self.iters);
    }
}

fn print_result(id: &str, mean_secs: f64) {
    let (value, unit) = if mean_secs >= 1.0 {
        (mean_secs, "s")
    } else if mean_secs >= 1e-3 {
        (mean_secs * 1e3, "ms")
    } else if mean_secs >= 1e-6 {
        (mean_secs * 1e6, "µs")
    } else {
        (mean_secs * 1e9, "ns")
    };
    println!("{id:<40} {value:>10.3} {unit}/iter");
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(id, b.last_mean);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's fixed iteration count is
    /// controlled by `ELK_BENCH_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under the group's name prefix.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(&format!("{}/{id}", self.name), b.last_mean);
        self
    }

    /// Ends the group (criterion would emit summary statistics here).
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
