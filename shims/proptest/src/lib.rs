//! Minimal offline stand-in for the parts of `proptest` this
//! workspace's property tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, range / tuple / collection / sample strategies,
//! `any::<bool>()`, the `proptest!` macro, and `prop_assert*`.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case panics with its inputs via the
//!   normal assert message and the deterministic case seed;
//! - sampling is uniform (no bias toward edge cases);
//! - every test function's RNG is seeded from its name, so runs are
//!   fully reproducible.
//!
//! ```
//! use proptest::prelude::*;
//! use proptest::test_runner::TestRng;
//!
//! let mut rng = TestRng::from_name("doctest");
//! let (x, y) = (0u32..10, 0.0f64..1.0).new_value(&mut rng);
//! assert!(x < 10 && (0.0..1.0).contains(&y));
//! ```

#![warn(missing_docs)]

/// Strategies: recipes for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every sampled value through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $sample:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.$sample(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.$sample(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(
        u8 => int_in, u16 => int_in, u32 => int_in, u64 => int_in, usize => int_in,
        i8 => int_in, i16 => int_in, i32 => int_in, i64 => int_in, isize => int_in
    );

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A.0);
    impl_tuple!(A.0, B.1);
    impl_tuple!(A.0, B.1, C.2);
    impl_tuple!(A.0, B.1, C.2, D.3);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical default strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A` (`any::<A>()`).
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Test configuration and the deterministic RNG driving each case.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic splitmix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and
            // platforms, distinct per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[lo, hi]` (inclusive). `i128` bounds
        /// cover every primitive integer type without overflow.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty range");
            let width = (hi - lo + 1) as u128;
            lo + (u128::from(self.next_u64()) % width) as i128
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing a `Vec` of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.int_in(0, self.options.len() as i128 - 1) as usize;
            self.options[i].clone()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`,
/// `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` body
/// runs `cases` times with fresh sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &$strat, &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
