//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! The offline build environment has no `syn`/`quote`, so this crate
//! parses the item's `TokenStream` directly. It supports exactly the
//! shapes this workspace uses:
//!
//! - structs with named fields,
//! - tuple structs (including `#[serde(transparent)]` newtypes),
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Generics are not supported — none of the workspace's serialized
//! types are generic.
//!
//! ```
//! use serde::{Serialize, Value};
//!
//! #[derive(Serialize)]
//! struct Point {
//!     x: u64,
//!     y: u64,
//! }
//!
//! let v = Point { x: 1, y: 2 }.to_value();
//! assert_eq!(v.get("y"), Some(&Value::U64(2)));
//! ```

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// `true` if the attribute group (the `[...]` contents) is
/// `serde(transparent)`.
fn is_serde_transparent(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Advances past a `#[...]` attribute starting at `i`; returns whether
/// it was `#[serde(transparent)]`.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    debug_assert!(matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#'));
    *i += 1;
    if let Some(TokenTree::Group(g)) = tokens.get(*i) {
        let transparent = is_serde_transparent(g);
        *i += 1;
        transparent
    } else {
        false
    }
}

/// Advances past a visibility qualifier (`pub`, `pub(crate)`, ...) if
/// present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses the named fields of a brace-delimited body, returning field
/// names in declaration order.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip_attr(&tokens, &mut i);
        }
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket
        // depth 0. Nested (), [], {} arrive as whole Groups, so only
        // generic brackets need depth tracking.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a paren-delimited (tuple) body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip_attr(&tokens, &mut i);
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                transparent |= skip_attr(&tokens, &mut i);
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let k = id.to_string();
                i += 1;
                break k;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    };
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        panic!("serde_derive: expected type name after `{keyword}`");
    };
    let name = name.to_string();
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let kind = if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    };
    Item {
        name,
        transparent,
        kind,
    }
}

// ---- code generation (as source strings, parsed back into tokens) ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) if item.transparent => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, {name:?}, {f:?})?,"))
                .collect();
            format!(
                "let __m = ::serde::expect_map(__v, {name:?})?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        ItemKind::TupleStruct(1) if item.transparent => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = ::serde::expect_seq(__v, {name:?}, {n})?; \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __s = ::serde::expect_seq(\
                                 __val, \"{name}::{vn}\", {n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::field(__m, \"{name}::{vn}\", {f:?})?,")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __m = ::serde::expect_map(\
                                 __val, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                   {} \
                   __other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"unknown variant `{{__other}}` for {name}\"))) \
                 }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                   let (__tag, __val) = &__m[0]; \
                   match __tag.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::msg(\
                       ::std::format!(\"unknown variant `{{__other}}` for {name}\"))) \
                   }} \
                 }}, \
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                   ::std::format!(\"expected variant of {name}, found {{}}\", __other.kind()))) \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

/// Derives `serde::Serialize` by lowering the item to a `Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` by rebuilding the item from a `Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
