//! A minimal, self-contained stand-in for the parts of `serde` this
//! workspace uses: `Serialize` / `Deserialize` traits (with derive
//! macros) over an in-memory [`Value`] tree.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate. The data
//! model is deliberately simple: serialization lowers any value to a
//! [`Value`], and `serde_json` (the sibling shim) renders/parses that
//! tree as JSON text. Field order is preserved, so output is stable
//! across runs — which the golden-report tests rely on.
//!
//! ```
//! use serde::Value;
//!
//! let v = Value::Map(vec![("x".into(), Value::U64(3))]);
//! assert_eq!(v.get("x"), Some(&Value::U64(3)));
//! assert_eq!(v.kind(), "map");
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Looks up a key in a `Map` value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can lower itself to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A value reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// # Errors
    /// Returns an error when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by the derive-generated code ----

/// # Errors
/// Errors when `v` is not a map.
pub fn expect_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::msg(format!(
            "expected map for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// # Errors
/// Errors when `v` is not a sequence of exactly `len` elements.
pub fn expect_seq<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => Err(Error::msg(format!(
            "expected {len} elements for {ty}, found {}",
            s.len()
        ))),
        other => Err(Error::msg(format!(
            "expected sequence for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Looks up and deserializes a struct field.
///
/// # Errors
/// Errors when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(map: &[(String, Value)], ty: &str, name: &str) -> Result<T, Error> {
    let v = map
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}` for {ty}")))?;
    T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{name}: {e}")))
}

// ---- primitive impls ----

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            // Non-finite floats are serialized as strings (JSON has no
            // literal for them); accept them back here.
            Value::Str(ref s) => match s.as_str() {
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                _ => Err(Error::msg(format!("expected number, found string {s:?}"))),
            },
            ref other => Err(Error::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($len:literal; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = expect_seq(v, "tuple", $len)?;
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1; A.0);
impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}
impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = expect_map(v, "Range")?;
        Ok(field(m, "Range", "start")?..field(m, "Range", "end")?)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = expect_map(v, "BTreeMap")?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = expect_map(v, "HashMap")?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
