//! Minimal offline stand-in for the `rand 0.8` API surface this
//! workspace uses: `StdRng::seed_from_u64` and `Rng::gen_range` over
//! integer and float ranges.
//!
//! The generator is splitmix64 — not cryptographic, but statistically
//! fine for the synthetic-profile sampling in `elk-cost`, and exactly
//! reproducible from the seed, which the cost-model accuracy tests
//! rely on.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(9);
//! let mut b = StdRng::seed_from_u64(9);
//! let x: u64 = a.gen_range(0..100);
//! assert_eq!(x, b.gen_range(0..100)); // same seed, same stream
//! assert!(x < 100);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly. Generic over the output
/// type (rather than using an associated type) so an integer literal
/// like `1..=3` infers its width from the call site, as with real
/// rand.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width range: every u64 value is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % width) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range");
                let width = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                (lo.wrapping_add((rng.next_u64() % width) as i64)) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Concrete generators (`StdRng`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stands in for rand's
    /// `StdRng`; same role, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
