//! `elk` — the scenario CLI: run declarative JSON scenario files
//! through the compiler, simulator, and serving stack without touching
//! Rust code.
//!
//! ```text
//! elk compile  <scenario.json> [--out DIR] [--threads N]   compile + measure each design
//! elk simulate <scenario.json> [--out DIR] [--threads N]   design comparison table
//! elk serve    <scenario.json> [--out DIR] [--threads N]   request-level serving replay
//! elk cluster  <scenario.json> [--out DIR] [--threads N]   multi-chip plan + routed serving
//! elk trace gen <scenario.json> [--out DIR]                emit the workload.trace generator
//! elk sweep    <scenario.json> [--out DIR] [--threads N]   grid over the file's sweep axes
//! elk validate <dir-or-file>...                            round-trip emitted JSON reports
//! ```
//!
//! `serve` and `cluster` replay the scenario's `workload.trace` source
//! when one is present (a recorded `elk-trace` JSONL file or a seeded
//! generator), so recorded and synthetic traces flow through one path.
//!
//! Every run writes a machine-readable report to
//! `<out>/<name>.<command>.json` (default `results/`). Reports contain
//! no wall-clock fields, so reruns are byte-identical, as is any
//! command at any `--threads` count — except `serve`, whose plan-cache
//! hit/miss split legitimately shifts with the worker count
//! (concurrent warming); everything else in a serve report is
//! thread-count invariant.
//!
//! `simulate`, `serve`, and `cluster` can additionally export a
//! deterministic sim-time timeline: `--timeline FILE` (or the
//! scenario's `observe` section) attaches an `elk-obs` recorder and
//! writes a Chrome-trace JSON (open in Perfetto / `chrome://tracing`)
//! plus a flat `*.metrics.json` next to it. Timelines carry only
//! simulated time, so they are byte-identical at any `--threads` count.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use elk::obs::{export, MemRecorder, Obs, Recorder};
use elk::spec::{runner, ScenarioSpec, SpecError};
use serde::{Serialize, Value};

const USAGE: &str = "\
usage: elk <command> ...

commands:
  compile  <scenario.json> [--out DIR] [--threads N]  compile the scenario's designs and
                                                      simulate each compiled program
  simulate <scenario.json> [--out DIR] [--threads N]  per-design comparison table
  serve    <scenario.json> [--out DIR] [--threads N]  replay the scenario's request trace
  cluster  <scenario.json> [--out DIR] [--threads N]  plan (tp, pp, dp) parallelism over the
                                                      pod and replay routed cluster serving
                                                      (plus the autoscaled fleet, the
                                                      disaggregated prefill/decode pools,
                                                      and/or the multi-tenant replay when
                                                      the scenario has cluster.autoscale /
                                                      cluster.disaggregate / cluster.tenants
                                                      sections)
  trace gen <scenario.json> [--out DIR]               write the scenario's workload.trace
                                                      generator as <name>.trace.jsonl
  sweep    <scenario.json> [--out DIR] [--threads N]  run the file's sweep grid
  validate <dir-or-file>...                           check emitted JSON round-trips

Reports are written to <out>/<name>.<command>.json (default: results/).
--threads overrides the spec's worker-thread count (sweep: the fan-out
width across grid points); results are byte-identical at any setting,
except the serve report's cache hit/miss split (worker-count warming).

simulate, serve, and cluster take --timeline FILE: record the run with
elk-obs and write a Chrome-trace timeline (Perfetto-loadable) there,
plus flat metrics as *.metrics.json next to it. The flag overrides the
scenario's observe.timeline and implies observe.enable; with observe
enabled and no path, the timeline lands at <out>/<name>.timeline.json.
Timelines carry simulated time only and are byte-identical at any
--threads count.";

/// A fatal CLI error: message plus exit code (2 = usage/parse, 1 = run).
struct Fail {
    code: u8,
    msg: String,
}

impl Fail {
    fn usage(msg: impl Into<String>) -> Self {
        Fail {
            code: 2,
            msg: msg.into(),
        }
    }

    fn run(msg: impl Into<String>) -> Self {
        Fail {
            code: 1,
            msg: msg.into(),
        }
    }
}

impl From<SpecError> for Fail {
    fn from(e: SpecError) -> Self {
        match e {
            SpecError::Parse(_) | SpecError::Invalid(_) => Fail::usage(e.to_string()),
            SpecError::Compile(_) => Fail::run(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(fail) => {
            eprintln!("elk: {}", fail.msg);
            ExitCode::from(fail.code)
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), Fail> {
    let Some(command) = args.first() else {
        return Err(Fail::usage(USAGE));
    };
    match command.as_str() {
        "compile" | "simulate" | "serve" | "cluster" | "sweep" => {
            let opts = ScenarioArgs::parse(command, &args[1..])?;
            run_scenario(command, &opts)
        }
        "trace" => match args.get(1).map(String::as_str) {
            Some("gen") => {
                let opts = ScenarioArgs::parse("trace gen", &args[2..])?;
                run_trace_gen(&opts)
            }
            Some(other) => Err(Fail::usage(format!(
                "unknown trace subcommand '{other}' (expected `gen`)\n\n{USAGE}"
            ))),
            None => Err(Fail::usage(format!(
                "`elk trace` needs a subcommand (expected `gen`)\n\n{USAGE}"
            ))),
        },
        "validate" => validate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Fail::usage(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

/// Parsed arguments of the scenario-running commands.
struct ScenarioArgs {
    file: PathBuf,
    out: PathBuf,
    threads: Option<usize>,
    timeline: Option<PathBuf>,
}

impl ScenarioArgs {
    fn parse(command: &str, args: &[String]) -> Result<Self, Fail> {
        // Same shared flag walk as elk-par's --threads and elk-bench's
        // --out, so the three surfaces cannot drift.
        let (outs, rest) = elk::par::extract_flag("--out", args.to_vec()).map_err(Fail::usage)?;
        let (timelines, rest) = elk::par::extract_flag("--timeline", rest).map_err(Fail::usage)?;
        let (threads_values, rest) =
            elk::par::extract_flag("--threads", rest).map_err(Fail::usage)?;
        // Validate every occurrence; the last one wins.
        let mut threads = None;
        for v in &threads_values {
            threads = Some(elk::par::validate_threads(v).map_err(Fail::usage)?);
        }
        let mut file = None;
        for arg in rest {
            if arg.starts_with('-') {
                return Err(Fail::usage(format!(
                    "unknown flag '{arg}' for `elk {command}`"
                )));
            }
            if file.is_some() {
                return Err(Fail::usage(format!(
                    "`elk {command}` takes exactly one scenario file"
                )));
            }
            file = Some(PathBuf::from(arg));
        }
        let file = file.ok_or_else(|| {
            Fail::usage(format!("`elk {command}` needs a scenario file\n\n{USAGE}"))
        })?;
        Ok(ScenarioArgs {
            file,
            out: outs
                .last()
                .map_or_else(|| PathBuf::from("results"), PathBuf::from),
            threads,
            timeline: timelines.last().map(PathBuf::from),
        })
    }
}

/// Resolves where a run's timeline goes, or `None` when the run should
/// not record one. Precedence: the `--timeline` flag (which implies
/// `observe.enable`), then the scenario's `observe.timeline` path, then
/// — with `observe.enable` set but no path — the derived
/// `<out>/<name>.timeline.json`.
fn timeline_destination(
    command: &str,
    opts: &ScenarioArgs,
    spec: &ScenarioSpec,
) -> Result<Option<PathBuf>, Fail> {
    let supported = matches!(command, "simulate" | "serve" | "cluster");
    if let Some(path) = &opts.timeline {
        if !supported {
            return Err(Fail::usage(format!(
                "`elk {command}` does not take --timeline (only simulate, \
                 serve, and cluster record timelines)"
            )));
        }
        return Ok(Some(path.clone()));
    }
    if !supported || !spec.observe.enable {
        return Ok(None);
    }
    Ok(Some(spec.observe.timeline.as_ref().map_or_else(
        || {
            opts.out
                .join(format!("{}.timeline.json", report_stem(&spec.name)))
        },
        PathBuf::from,
    )))
}

/// `<x>.timeline.json` → `<x>.metrics.json` (plain `<x>.json` also
/// swaps its extension); anything else gets `.metrics.json` appended.
fn metrics_destination(timeline: &Path) -> PathBuf {
    let name = timeline
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("timeline");
    let stem = name
        .strip_suffix(".timeline.json")
        .or_else(|| name.strip_suffix(".json"))
        .unwrap_or(name);
    timeline.with_file_name(format!("{stem}.metrics.json"))
}

fn run_scenario(command: &str, opts: &ScenarioArgs) -> Result<(), Fail> {
    let text = fs::read_to_string(&opts.file)
        .map_err(|e| Fail::usage(format!("{}: {e}", opts.file.display())))?;
    // One parse: the document tree feeds `sweep` (which rewrites it per
    // grid point) and the spec everything else.
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| Fail::usage(format!("{}: {e}", opts.file.display())))?;
    let mut spec = <ScenarioSpec as serde::Deserialize>::from_value(&doc)
        .map_err(|e| Fail::usage(format!("{}: {e}", opts.file.display())))?;

    // --threads overrides the section the command actually uses. For
    // `sweep` it is the fan-out width across grid points instead (each
    // point keeps its file's own worker setting), so the spec is left
    // untouched there.
    if command != "sweep" {
        if let Some(threads) = opts.threads {
            spec.compiler.threads = threads;
            spec.serving.threads = threads;
            // Only `cluster` reads the cluster section; don't conjure a
            // phantom section into the other commands' specs.
            if command == "cluster" {
                spec.cluster.get_or_insert_with(Default::default).threads = threads;
            } else if let Some(cluster) = spec.cluster.as_mut() {
                cluster.threads = threads;
            }
        }
    }

    // Recording: when a timeline destination resolves, every observed
    // runner below shares one in-memory recorder; the buffered stream
    // is exported after the report lands.
    let timeline_out = timeline_destination(command, opts, &spec)?;
    let recorder = timeline_out.as_ref().map(|_| Arc::new(MemRecorder::new()));
    let obs = recorder.as_ref().map_or_else(Obs::null, |rec| {
        Obs::new(Arc::clone(rec) as Arc<dyn Recorder>, spec.observe.sample)
    });

    let report: Value = match command {
        "compile" => {
            let r = runner::run_compile(&spec)?;
            for d in &r.designs {
                println!(
                    "{}: {} on {}: {} ops, {:.3} ms simulated ({} violations)",
                    spec.name,
                    elk::spec::design_name(d.design),
                    r.system,
                    d.ops,
                    d.report.total.as_millis(),
                    d.report.capacity_violations,
                );
            }
            r.to_value()
        }
        "simulate" => {
            let r = runner::run_simulate_observed(&spec, &obs)?;
            for d in &r.designs {
                let speedup = d
                    .speedup_vs_basic
                    .map_or_else(String::new, |s| format!(" ({s:.2}x vs basic)"));
                println!(
                    "{}: {}: {:.3} ms{speedup}, hbm {:.0}%, noc {:.0}%",
                    spec.name,
                    elk::spec::design_name(d.design),
                    d.total_ms,
                    d.hbm_util * 100.0,
                    d.noc_util * 100.0,
                );
            }
            r.to_value()
        }
        "serve" => {
            // A broken model spec (typo'd alias, zero layers) must fail
            // like every other command; only a *valid* model the serving
            // engine cannot batch (MoE, DiT) is a documented no-op —
            // scenario smoke runs `elk serve` over every file.
            match spec.model.resolve().map_err(Fail::from)? {
                elk::spec::ResolvedModel::Llm(_) => {}
                _ => {
                    let reason = "the serving engine batches dense transformers only";
                    println!("{}: serving skipped — {reason}", spec.name);
                    let path = write_skip_marker(&opts.out, &spec.name, command, reason)?;
                    println!("skip marker: {}", path.display());
                    return Ok(());
                }
            }
            // A recorded serve timeline also carries the compile
            // pipeline's lanes, so one file spans compile phases,
            // kernel events, and request lanes end to end.
            if obs.enabled() {
                runner::run_compile_observed(&spec, &obs)?;
            }
            let r = runner::run_serve_observed(&spec, &obs)?;
            for d in &r.designs {
                println!(
                    "{}: {}: {} reqs, ttft p99 {:.2} ms, tpot mean {:.2} ms, goodput {:.1} req/s",
                    spec.name,
                    elk::spec::design_name(d.design),
                    d.completed,
                    d.ttft.p99.as_millis(),
                    d.tpot.mean.as_millis(),
                    d.goodput_rps,
                );
            }
            for row in r.tenancy.iter().flatten() {
                print_tenancy_row(&format!("{}: tenancy", spec.name), row);
            }
            // Same disposition summary the cluster path prints: with no
            // admission control every completed request was admitted.
            let (admitted, rejected, deferred) = match &r.tenancy {
                Some(rows) => rows.iter().fold((0, 0, 0), |(a, j, d), t| {
                    (a + t.admitted, j + t.rejected, d + t.deferred)
                }),
                None => (r.designs.iter().map(|d| d.completed).sum(), 0, 0),
            };
            println!(
                "{}: dispositions: {admitted} admitted / {rejected} rejected / {deferred} deferred",
                spec.name,
            );
            r.to_value()
        }
        "cluster" => {
            // Same skip contract as `serve`: a broken model spec fails,
            // a valid non-dense model is a documented no-op (CI runs
            // `elk cluster` over scenario sets that include MoE/DiT).
            match spec.model.resolve().map_err(Fail::from)? {
                elk::spec::ResolvedModel::Llm(_) => {}
                _ => {
                    let reason = "the planner shards dense transformers only";
                    println!("{}: cluster planning skipped — {reason}", spec.name);
                    let path = write_skip_marker(&opts.out, &spec.name, command, reason)?;
                    println!("skip marker: {}", path.display());
                    return Ok(());
                }
            }
            // See the serve arm: compile lanes ride along in the
            // recorded timeline.
            if obs.enabled() {
                runner::run_compile_observed(&spec, &obs)?;
            }
            let r = runner::run_cluster_observed(&spec, &obs)?;
            let e = &r.estimate;
            println!(
                "{}: {} plan {} on {} chips ({} used), step {:.3} ms, bubble {:.1}%, {}",
                spec.name,
                if r.auto { "auto-selected" } else { "pinned" },
                e.plan,
                r.chips,
                e.chips_used,
                e.step_total.as_millis(),
                e.bubble_fraction * 100.0,
                e.scaling_efficiency.map_or_else(
                    || "no single-chip baseline".to_string(),
                    |s| format!("scaling efficiency {:.2}", s)
                ),
            );
            for s in &e.stages {
                println!(
                    "  stage {}: layers {}..{}{}{} {:.3} ms/microbatch (busy {:.0}%)",
                    s.stage,
                    s.layer_start,
                    s.layer_end,
                    if s.embed { " +embed" } else { "" },
                    if s.head { " +head" } else { "" },
                    s.time.as_millis(),
                    s.busy_fraction * 100.0,
                );
            }
            for row in r.serving.iter().flatten() {
                println!(
                    "  serve {} × {}: {} reqs, ttft p99 {:.2} ms, tpot mean {:.2} ms, goodput {:.1} req/s",
                    elk::spec::design_name(row.design),
                    row.policy,
                    row.completed,
                    row.ttft.p99.as_millis(),
                    row.tpot.mean.as_millis(),
                    row.goodput_rps,
                );
            }
            for row in r.autoscale.iter().flatten() {
                println!(
                    "  autoscale {}: {} reqs, {}..{} groups (peak {}), {} up / {} down, \
                     {} cold start(s) ({:.1} ms), slo {:.1}%, goodput {:.1} req/s, {:.2} chip-s",
                    elk::spec::design_name(row.design),
                    row.completed,
                    row.min_groups,
                    row.max_groups,
                    row.peak_groups,
                    row.scale_ups,
                    row.scale_downs,
                    row.cold_starts,
                    row.cold_start_total.as_millis(),
                    row.slo_attainment * 100.0,
                    row.goodput_rps,
                    row.chip_seconds,
                );
            }
            for row in r.disagg.iter().flatten() {
                println!(
                    "  disagg {} × {}: {} reqs, prefill {} × decode {}{}, \
                     ttft p99 {:.2} ms, tpot mean {:.2} ms, kv {:.1} MiB, goodput {:.1} req/s",
                    elk::spec::design_name(row.design),
                    row.policy,
                    row.completed,
                    row.prefill_plan,
                    row.decode_plan,
                    if row.chunk_tokens > 0 {
                        format!(" (chunk {})", row.chunk_tokens)
                    } else {
                        String::new()
                    },
                    row.ttft.p99.as_millis(),
                    row.tpot.mean.as_millis(),
                    row.kv_moved.get() as f64 / (1024.0 * 1024.0),
                    row.goodput_rps,
                );
            }
            for row in r.tenancy.iter().flatten() {
                print_tenancy_row("  tenancy", row);
            }
            r.to_value()
        }
        "sweep" => {
            let threads = opts.threads.unwrap_or(0);
            let r = elk::spec::run_sweep(&doc, threads)?;
            println!(
                "{}: swept {} over {} point(s): {}",
                r.scenario,
                r.axes.join(" x "),
                r.points.len(),
                r.command,
            );
            for p in &r.points {
                println!("  {}", p.name);
            }
            r.to_value()
        }
        _ => unreachable!("dispatch only routes known commands"),
    };

    let path = write_report(&opts.out, &spec.name, command, &report)?;
    println!("report: {}", path.display());

    if let (Some(timeline_path), Some(rec)) = (timeline_out, recorder) {
        let buf = rec.take_buf();
        let metrics_path = metrics_destination(&timeline_path);
        write_json(&timeline_path, &export::chrome_trace(&buf))?;
        write_json(&metrics_path, &export::metrics(&buf))?;
        println!("timeline: {}", timeline_path.display());
        println!("metrics: {}", metrics_path.display());
    }
    Ok(())
}

/// Writes a pretty-printed JSON value to `path`, creating parent
/// directories as needed.
fn write_json(path: &Path, value: &Value) -> Result<(), Fail> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent).map_err(|e| Fail::run(format!("{}: {e}", parent.display())))?;
    }
    let json = serde_json::to_string_pretty(value).expect("value serialization is infallible");
    fs::write(path, json + "\n").map_err(|e| Fail::run(format!("{}: {e}", path.display())))
}

/// One console row per tenancy replay, plus an indented line per
/// tenant: admission split, fleet goodput, and the fairness index.
fn print_tenancy_row(prefix: &str, row: &elk::cluster::TenancyServingReport) {
    println!(
        "{prefix} {} × {}: {} admitted / {} rejected / {} deferred, \
         goodput {:.1} req/s, jain {:.3}",
        elk::spec::design_name(row.base.design),
        row.base.policy,
        row.admitted,
        row.rejected,
        row.deferred,
        row.base.goodput_rps,
        row.jain_fairness,
    );
    for t in &row.tenants {
        println!(
            "    {} [{}]: {}/{} completed, ttft p99 {:.2} ms, slo {:.1}%, goodput {:.1} req/s",
            t.tenant,
            t.class,
            t.completed,
            t.arrivals,
            t.ttft.p99.as_millis(),
            t.slo_attainment * 100.0,
            t.goodput_rps,
        );
    }
}

/// `elk trace gen`: run the scenario's `workload.trace.generate`
/// recipe and write the records as `<out>/<name>.trace.jsonl` plus a
/// `<name>.trace.json` summary. The JSONL is the artifact a replay
/// scenario points its `workload.trace.file` at, so the bytes are the
/// raw versioned trace format, not a pretty-printed report.
fn run_trace_gen(opts: &ScenarioArgs) -> Result<(), Fail> {
    if opts.threads.is_some() {
        return Err(Fail::usage(
            "`elk trace gen` does not take --threads: generation is a \
             pure function of the seed",
        ));
    }
    let text = fs::read_to_string(&opts.file)
        .map_err(|e| Fail::usage(format!("{}: {e}", opts.file.display())))?;
    let spec = ScenarioSpec::from_json(&text)
        .map_err(|e| Fail::usage(format!("{}: {e}", opts.file.display())))?;
    let (trace, report) = runner::run_trace_gen(&spec)?;

    fs::create_dir_all(&opts.out).map_err(|e| Fail::run(format!("{}: {e}", opts.out.display())))?;
    let jsonl_path = opts
        .out
        .join(format!("{}.trace.jsonl", report_stem(&spec.name)));
    fs::write(&jsonl_path, trace.to_jsonl())
        .map_err(|e| Fail::run(format!("{}: {e}", jsonl_path.display())))?;
    println!(
        "{}: {} request(s) over {:.2} s, {} prompt + {} output tokens, {} tenant(s)",
        spec.name,
        report.requests,
        report.duration_s,
        report.total_prompt_tokens,
        report.total_output_tokens,
        report.tenants,
    );
    println!("trace: {}", jsonl_path.display());
    let path = write_report(&opts.out, &spec.name, "trace", &report.to_value())?;
    println!("report: {}", path.display());
    Ok(())
}

/// Sanitizes a scenario name into a filesystem-safe report stem.
fn report_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `report` to `<out>/<name>.<command>.json` and returns the
/// path.
fn write_report(out: &Path, name: &str, command: &str, report: &Value) -> Result<PathBuf, Fail> {
    fs::create_dir_all(out).map_err(|e| Fail::run(format!("{}: {e}", out.display())))?;
    let path = out.join(format!("{}.{command}.json", report_stem(name)));
    let json = serde_json::to_string_pretty(report).expect("report serialization is infallible");
    fs::write(&path, json + "\n").map_err(|e| Fail::run(format!("{}: {e}", path.display())))?;
    Ok(path)
}

/// Writes the structured `<stem>.<command>.skipped.json` marker for a
/// scenario a command declines (MoE/DiT under `serve`/`cluster`).
///
/// A skip exits 0, but it must still leave a machine-readable trace:
/// without one, "skipped by design" and "silently never ran" are
/// indistinguishable to anything consuming the results directory. The
/// marker round-trips through `elk validate` like every other report.
fn write_skip_marker(out: &Path, name: &str, command: &str, reason: &str) -> Result<PathBuf, Fail> {
    let marker = Value::Map(vec![
        ("scenario".to_string(), Value::Str(name.to_string())),
        ("command".to_string(), Value::Str(command.to_string())),
        ("skipped".to_string(), Value::Bool(true)),
        ("reason".to_string(), Value::Str(reason.to_string())),
    ]);
    write_report(out, name, &format!("{command}.skipped"), &marker)
}

/// `elk validate`: every given JSON file (or every `*.json` in a given
/// directory) must parse and survive a serialize → parse round-trip
/// unchanged.
fn validate(args: &[String]) -> Result<(), Fail> {
    if args.is_empty() {
        return Err(Fail::usage(
            "`elk validate` needs at least one file or directory",
        ));
    }
    let mut files = Vec::new();
    for arg in args {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&path)
                .map_err(|e| Fail::usage(format!("{arg}: {e}")))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(Fail::run("no JSON files found to validate"));
    }
    for file in &files {
        let text =
            fs::read_to_string(file).map_err(|e| Fail::run(format!("{}: {e}", file.display())))?;
        let parsed: Value = serde_json::from_str(&text)
            .map_err(|e| Fail::run(format!("{}: parse error: {e}", file.display())))?;
        let reemitted = serde_json::to_string(&parsed).expect("value serialization is infallible");
        let reparsed: Value = serde_json::from_str(&reemitted)
            .map_err(|e| Fail::run(format!("{}: re-parse error: {e}", file.display())))?;
        if parsed != reparsed {
            return Err(Fail::run(format!(
                "{}: JSON does not round-trip through serde_json",
                file.display()
            )));
        }
        if let Some(events) = timeline_events(&parsed) {
            check_timeline(file, events)?;
            println!("{}: ok ({} trace event(s))", file.display(), events.len());
        } else {
            println!("{}: ok", file.display());
        }
    }
    println!("{} file(s) round-trip clean", files.len());
    Ok(())
}

/// The `traceEvents` array when `v` is a Chrome-trace timeline, else
/// `None` (ordinary reports fall through to the round-trip check only).
fn timeline_events(v: &Value) -> Option<&[Value]> {
    let Value::Map(pairs) = v else { return None };
    pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, events)| match events {
            Value::Seq(events) => Some(events.as_slice()),
            _ => None,
        })
}

/// Structural check over a timeline's `traceEvents`: every event is an
/// object with string `ph` and `name`, and every non-metadata event
/// (`ph` ≠ `"M"`) carries a numeric `ts`.
fn check_timeline(file: &Path, events: &[Value]) -> Result<(), Fail> {
    let field = |pairs: &[(String, Value)], key: &str| {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| Fail::run(format!("{}: traceEvents[{i}]: {what}", file.display()));
        let Value::Map(pairs) = ev else {
            return Err(fail("not an object"));
        };
        let Some(Value::Str(ph)) = field(pairs, "ph") else {
            return Err(fail("missing string `ph`"));
        };
        if !matches!(field(pairs, "name"), Some(Value::Str(_))) {
            return Err(fail("missing string `name`"));
        }
        if ph != "M"
            && !matches!(
                field(pairs, "ts"),
                Some(Value::U64(_) | Value::I64(_) | Value::F64(_))
            )
        {
            return Err(fail("missing numeric `ts`"));
        }
    }
    Ok(())
}
