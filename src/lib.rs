//! # Elk — a DL compiler framework for inter-core connected AI chips
//!
//! Reproduction of *"Elk: Exploring the Efficiency of Inter-core Connected
//! AI Chips with Deep Learning Compiler Techniques"* (MICRO 2025), built
//! from scratch in Rust: the compiler (§4), the operator partitioner
//! (§2.2/§5), the cost models (§4.3), the ICCA-chip simulator (§5), and
//! the evaluation baselines (§6.1).
//!
//! This facade crate re-exports the workspace's public API under one
//! namespace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `elk-model` | operator graphs, model zoo, workloads |
//! | [`hw`] | `elk-hw` | chips, topologies, HBM, system presets |
//! | [`cost`] | `elk-cost` | analytic device + linear-tree cost models |
//! | [`partition`] | `elk-partition` | execute/preload-state plan enumeration |
//! | [`compiler`] | `elk-core` | scheduling, allocation, reordering, codegen |
//! | [`sim`] | `elk-sim` | event-driven chip simulator |
//! | [`sim_core`] | `elk-sim-core` | deterministic DES kernel: event queue, clock, seeded RNG, time-weighted stats |
//! | [`obs`] | `elk-obs` | deterministic sim-time observability: spans, counters, histograms, Chrome-trace export |
//! | [`baselines`] | `elk-baselines` | Basic / Static / Elk-Dyn / Elk-Full / Ideal |
//! | [`serve`] | `elk-serve` | request-level serving simulator (traces, batching, SLOs, routers) |
//! | [`trace`] | `elk-trace` | versioned trace files + production-shaped generators |
//! | [`cluster`] | `elk-cluster` | multi-chip (tp, pp, dp) planning, cluster estimation + serving, autoscaling |
//! | [`spec`] | `elk-spec` | declarative JSON scenario specs, runners, and sweeps |
//! | [`par`] | `elk-par` | scoped work-pool: deterministic `par_map`, single-flight |
//! | [`units`] | `elk-units` | typed bytes/seconds/bandwidth/FLOPs |
//!
//! ## Quickstart
//!
//! ```
//! use elk::prelude::*;
//!
//! # fn main() -> Result<(), elk::compiler::CompileError> {
//! // A (doctest-sized) LLM decode step on an IPU-POD4-class system.
//! let mut cfg = zoo::llama2_13b();
//! cfg.layers = 2;
//! let graph = cfg.build(Workload::decode(16, 512), 4);
//! let system = presets::ipu_pod4();
//!
//! // Compile with full Elk, then measure on the simulator.
//! let plan = Compiler::new(system.clone()).compile(&graph)?;
//! let report = simulate(&plan.program, &system, &SimOptions::default());
//! assert_eq!(report.capacity_violations, 0);
//! println!("per-token latency: {}", report.total);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios,
//! `crates/elk-bench` for the paper's tables and figures, and
//! [`docs/ARCHITECTURE.md`](https://example.invalid/elk/blob/main/docs/ARCHITECTURE.md)
//! (in the repository root) for the end-to-end dataflow — model →
//! partition → compile → simulate → serve → cluster → bench —
//! including the determinism contract of the [`par`] work-pool that
//! every stage's `threads` knob feeds into.

#![warn(missing_docs)]

pub use elk_baselines as baselines;
pub use elk_cluster as cluster;
pub use elk_core as compiler;
pub use elk_cost as cost;
pub use elk_hw as hw;
pub use elk_model as model;
pub use elk_obs as obs;
pub use elk_par as par;
pub use elk_partition as partition;
pub use elk_serve as serve;
pub use elk_sim as sim;
pub use elk_sim_core as sim_core;
pub use elk_spec as spec;
pub use elk_trace as trace;
pub use elk_units as units;

/// The common imports for application code.
pub mod prelude {
    pub use elk_baselines::{Design, DesignRunner};
    pub use elk_cluster::{ClusterEstimator, ClusterOptions, ParallelismPlan};
    pub use elk_core::{Compiler, CompilerOptions};
    pub use elk_hw::{
        presets, ChipConfig, CollectiveModel, HbmConfig, InterChipTopology, SystemConfig, Topology,
    };
    pub use elk_model::{zoo, ModelGraph, SeqBuckets, TransformerConfig, Workload};
    pub use elk_serve::{
        ArrivalProcess, BatchConfig, LengthDist, RequestTrace, ServeConfig, ServingReport,
        ServingSim, SloConfig, TraceConfig,
    };
    pub use elk_sim::{simulate, SimOptions, SimReport};
    pub use elk_spec::{ScenarioSpec, SpecError};
    pub use elk_trace::{TraceFile, TraceGenConfig};
    pub use elk_units::{ByteRate, Bytes, FlopRate, Flops, Seconds};
}
