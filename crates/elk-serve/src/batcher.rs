//! Iteration-level continuous batching (Orca-style).
//!
//! Each scheduler iteration is either a **prefill** step (admitting
//! waiting requests, bounded by free batch slots and a prompt-token
//! budget) or a **decode** step (one token for every active request).
//! Prefill has priority whenever requests are waiting and slots are
//! free — the policy that minimizes time-to-first-token at a small cost
//! to decode throughput.

use serde::{Deserialize, Serialize};

use elk_model::{Phase, SeqBuckets, Workload};

/// Continuous-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum concurrent requests per replica (decode batch cap and
    /// admission bound).
    pub max_batch: u64,
    /// Prompt-token budget per prefill step (at least one request is
    /// always admitted, even if its prompt alone exceeds the budget).
    pub max_prefill_tokens: u64,
    /// Sequence-length bucketing for plan-cache keys.
    pub seq_buckets: SeqBuckets,
    /// Round step batch sizes up to powers of two so the plan cache sees
    /// a bounded set of batch shapes (costs a conservative latency
    /// estimate for mid-bucket sizes).
    pub bucket_batch: bool,
}

impl Default for BatchConfig {
    /// Batch cap 64 (the paper's largest evaluated batch),
    /// an 8192-token prefill budget, and pow-of-two bucketing on.
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_prefill_tokens: 8192,
            seq_buckets: SeqBuckets::default(),
            bucket_batch: true,
        }
    }
}

impl BatchConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `max_prefill_tokens` is zero.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be > 0");
        assert!(
            self.max_prefill_tokens > 0,
            "max_prefill_tokens must be > 0"
        );
    }

    /// The bucketed step workload for `n` requests at raw sequence
    /// length `seq` (the longest context in the batch) — the shape the
    /// plan cache is keyed on. Public so cluster-level serving engines
    /// bucket exactly like the single-pod batcher.
    #[must_use]
    pub fn step_workload(&self, phase: Phase, n: u64, seq: u64) -> Workload {
        let mut wl = Workload {
            batch: n,
            seq_len: seq,
            phase,
        };
        wl = wl.bucketed(&self.seq_buckets);
        if self.bucket_batch {
            wl = wl.with_bucketed_batch(self.max_batch);
        }
        wl
    }
}

/// What the scheduler decided to run this iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepPlan {
    /// Admit the first `admit` waiting requests and run their prefill.
    Prefill {
        /// How many waiting requests to admit, in FIFO order.
        admit: usize,
    },
    /// Run one decode iteration over all active requests.
    Decode,
}

/// Picks the next iteration given the FIFO prompt lengths of waiting
/// requests and the number of active (decoding) requests.
///
/// Returns `None` when there is nothing to do (idle — the engine jumps
/// the clock to the next arrival).
#[must_use]
pub fn next_step(cfg: &BatchConfig, waiting_prompts: &[u64], active: usize) -> Option<StepPlan> {
    let free = (cfg.max_batch as usize).saturating_sub(active);
    if !waiting_prompts.is_empty() && free > 0 {
        let mut admit = 0;
        let mut tokens = 0u64;
        for &p in waiting_prompts.iter().take(free) {
            if admit > 0 && tokens + p > cfg.max_prefill_tokens {
                break;
            }
            admit += 1;
            tokens += p;
        }
        return Some(StepPlan::Prefill { admit });
    }
    if active > 0 {
        return Some(StepPlan::Decode);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_model::Phase;

    fn cfg() -> BatchConfig {
        BatchConfig {
            max_batch: 4,
            max_prefill_tokens: 1000,
            seq_buckets: SeqBuckets::new(256, 4096),
            bucket_batch: true,
        }
    }

    #[test]
    fn prefill_has_priority_while_slots_free() {
        assert_eq!(
            next_step(&cfg(), &[100, 100], 2),
            Some(StepPlan::Prefill { admit: 2 })
        );
    }

    #[test]
    fn full_batch_decodes_even_with_waiters() {
        assert_eq!(next_step(&cfg(), &[100], 4), Some(StepPlan::Decode));
    }

    #[test]
    fn admission_respects_token_budget() {
        // 600 + 600 > 1000: only the first fits alongside another.
        assert_eq!(
            next_step(&cfg(), &[600, 600, 600], 0),
            Some(StepPlan::Prefill { admit: 1 })
        );
        // A single oversized prompt is still admitted alone.
        assert_eq!(
            next_step(&cfg(), &[5000], 0),
            Some(StepPlan::Prefill { admit: 1 })
        );
    }

    #[test]
    fn admission_respects_free_slots() {
        assert_eq!(
            next_step(&cfg(), &[10, 10, 10, 10, 10], 1),
            Some(StepPlan::Prefill { admit: 3 })
        );
    }

    #[test]
    fn idle_when_nothing_to_do() {
        assert_eq!(next_step(&cfg(), &[], 0), None);
        assert_eq!(next_step(&cfg(), &[], 2), Some(StepPlan::Decode));
    }

    #[test]
    fn step_workload_buckets_both_axes() {
        let wl = cfg().step_workload(Phase::Decode, 3, 700);
        assert_eq!(wl.batch, 4); // pow2(3)
        assert_eq!(wl.seq_len, 1024);
        assert_eq!(wl.phase, Phase::Decode);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        BatchConfig {
            max_batch: 0,
            ..BatchConfig::default()
        }
        .validate();
    }
}
