//! The serving engine: replays a request trace against compiled plans.
//!
//! Each replica is an event source on the [`elk_sim_core`] kernel:
//! arrivals and step completions are typed events on one total-ordered
//! queue, and the simulation clock only moves when an event fires. A
//! scheduler step compiles (or cache-hits) the Elk plan for its
//! bucketed workload signature and schedules its completion at the
//! simulated step latency from [`elk_sim`]'s `SimReport`. Requests are
//! routed round-robin across `replicas` independent chip groups that
//! share one plan cache.

use std::sync::Arc;

use elk_baselines::{Design, DesignRunner};
use elk_core::CompileError;
use elk_hw::SystemConfig;
use elk_model::{Phase, TransformerConfig};
use elk_obs::{MemRecorder, Obs, ObsBuf};
use elk_sim::SimOptions;
use elk_sim_core::{EventQueue, QueueStat, PRIO_ARRIVAL, PRIO_STEP_DONE};
use elk_units::Seconds;

use crate::batcher::{next_step, BatchConfig, StepPlan};
use crate::cache::PlanCache;
use crate::metrics::{LatencyStats, RequestOutcome, SloConfig};
use crate::report::ServingReport;
use crate::trace::RequestTrace;

/// Everything a serving run is parameterized by (except the design,
/// which is per-run so designs can share one engine and cache).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Model to serve.
    pub model: TransformerConfig,
    /// Tensor-parallel shard count per replica (chips per chip group).
    pub shards: u64,
    /// Independent chip-group replicas; requests are routed round-robin.
    pub replicas: usize,
    /// Continuous-batching knobs.
    pub batch: BatchConfig,
    /// Latency SLO for goodput accounting.
    pub slo: SloConfig,
    /// Chip-simulator options used when a plan is compiled.
    pub sim: SimOptions,
    /// Worker threads (`1` = fully sequential, `0` = all available
    /// cores). With more than one worker, replica event loops run
    /// concurrently against the shared plan cache and a cache miss
    /// compiles all five designs' plans for the new signature at once
    /// (single-flight deduplicated). Request outcomes and latencies are
    /// identical at any setting; only wall-clock and the hit/miss split
    /// can shift.
    pub threads: usize,
}

impl ServeConfig {
    /// A config serving `model` on `shards`-way tensor parallelism with
    /// one replica and default batching/SLO/simulator knobs.
    #[must_use]
    pub fn new(model: TransformerConfig, shards: u64) -> Self {
        ServeConfig {
            model,
            shards,
            replicas: 1,
            batch: BatchConfig::default(),
            slo: SloConfig::default(),
            sim: SimOptions::default(),
            threads: 1,
        }
    }

    /// Spreads the trace over `n` independent chip-group replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_replicas(mut self, n: usize) -> Self {
        assert!(n > 0, "replica count must be > 0");
        self.replicas = n;
        self
    }

    /// Sets the worker-thread count (`0` = all available cores).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Trace-driven serving simulator for one (system, model) pair.
///
/// Owns the [`DesignRunner`] (fitted cost model) and the [`PlanCache`],
/// so consecutive [`run`](ServingSim::run) calls — across designs,
/// traces, and replicas — reuse catalogs and compiled plans.
#[derive(Debug)]
pub struct ServingSim {
    runner: DesignRunner,
    config: ServeConfig,
    cache: PlanCache,
    obs: Obs,
}

/// Per-request progress while in flight.
struct InFlight {
    /// Index into the trace's request vector.
    idx: usize,
    /// Tokens generated so far (1 after prefill).
    generated: u64,
}

/// Typed events on a replica's simulation timeline.
enum Ev {
    /// The request at this trace index joins the waiting queue.
    Arrival(usize),
    /// The in-flight scheduler step completes.
    StepDone,
}

/// What the in-flight step will do when its [`Ev::StepDone`] fires.
enum PendingStep {
    /// Prefill of these trace indices; each emits its first token at
    /// completion.
    Prefill {
        /// Trace indices admitted into the step.
        batch: Vec<usize>,
    },
    /// One decode iteration over the whole active set.
    Decode,
}

/// One replica's event-loop output, merged deterministically by
/// [`ServingSim::run`].
struct ReplicaRun {
    /// `(trace index, outcome)` for every request this replica served.
    outcomes: Vec<(usize, RequestOutcome)>,
    /// Waiting-queue depth trace (transitions + time-weighted area).
    queue: QueueStat,
    /// Prefill steps executed.
    prefill_steps: u64,
    /// Decode steps executed.
    decode_steps: u64,
    /// The replica's final clock.
    end: Seconds,
    /// Kernel events fired by this replica's timeline.
    events: u64,
    /// Peak future-event heap size on this replica's kernel.
    peak: usize,
    /// Locally recorded observations, absorbed in replica order by the
    /// parent so the merged stream is thread-schedule independent.
    obs: Option<ObsBuf>,
}

impl ServingSim {
    /// Creates a simulator for `config` on `system`, fitting the
    /// runner's cost model once.
    ///
    /// # Panics
    ///
    /// Panics if `config` is ill-formed (zero batch caps, zero shards
    /// or replicas).
    #[must_use]
    pub fn new(system: SystemConfig, config: ServeConfig) -> Self {
        config.batch.validate();
        assert!(config.shards > 0, "shards must be > 0");
        assert!(config.replicas > 0, "replicas must be > 0");
        let threads = config.threads;
        // The serving pool already parallelizes across replicas and
        // across designs on a cache miss; keep the nested compiler
        // pools sequential so worker counts do not multiply
        // (replicas × designs × candidate orders).
        ServingSim {
            runner: DesignRunner::new(system).with_threads(1),
            config,
            cache: PlanCache::new().with_threads(threads),
            obs: Obs::null(),
        }
    }

    /// Attaches an observation handle: per-replica kernel dispatch
    /// spans, per-request lanes (sampled by trace index), TTFT/TPOT
    /// histograms, and plan-cache counters. Only thread-invariant
    /// quantities are recorded — the raw hit/miss split is not — so
    /// recorded output stays byte-identical at any thread count.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The serve configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative plan-cache counters (across all runs so far).
    #[must_use]
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Serves `trace` under `design` and reports request-level metrics.
    /// The plan cache persists across calls, so running a second design
    /// (or the same trace again) reuses catalogs and plans.
    ///
    /// With [`ServeConfig::threads`] > 1, replica event loops run
    /// concurrently on a scoped pool, sharing the single-flight plan
    /// cache; per-replica results merge in replica order, so the
    /// reported outcomes and latencies are identical at any thread
    /// count (replicas are independent given the — deterministic —
    /// cached step latencies).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] if any step shape has no feasible
    /// plan.
    pub fn run(
        &mut self,
        design: Design,
        trace: &RequestTrace,
    ) -> Result<ServingReport, CompileError> {
        let stats_before = self.cache.stats();
        let catalogs_before = self.cache.catalogs();
        // Round-robin request routing: replica r serves indices
        // r, r + R, r + 2R, ... in arrival order.
        let replicas: Vec<usize> = (0..self.config.replicas).collect();
        let this = &*self;
        let runs = elk_par::try_par_map(
            this.config.threads.min(replicas.len()),
            &replicas,
            |_, &replica| this.run_replica(design, trace, replica),
        )?;

        // Deterministic merge in replica order (the same order the
        // sequential loop produced).
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let mut queue_depth: Vec<(Seconds, usize)> = Vec::new();
        let mut prefill_steps = 0u64;
        let mut decode_steps = 0u64;
        let mut makespan = Seconds::ZERO;
        let mut sim_events = 0u64;
        // The fleet-wide mean queue depth is the total depth-time area
        // over the total simulated replica-time: each replica's depth
        // is integrated over its own timeline, so a 5 ms decode step
        // and a 900 ms prefill stall weigh by their durations.
        let mut depth_area = 0.0;
        let mut sim_time = 0.0;
        let mut max_q = 0usize;
        let mut peak_q = 0usize;
        for run in runs {
            for (idx, outcome) in run.outcomes {
                outcomes[idx] = Some(outcome);
            }
            prefill_steps += run.prefill_steps;
            decode_steps += run.decode_steps;
            makespan = makespan.max(run.end);
            sim_events += run.events;
            peak_q = peak_q.max(run.peak);
            depth_area += run.queue.area_until(run.end);
            sim_time += run.end.as_secs();
            max_q = max_q.max(run.queue.max_depth());
            queue_depth.extend(run.queue.into_samples());
            // Replica buffers fold in replica index order — the same
            // order the sequential loop records in.
            if let Some(buf) = run.obs {
                self.obs.absorb(buf);
            }
        }
        if self.obs.enabled() {
            // Only thread-invariant cache quantities: total lookups and
            // distinct compiled signatures. The hit/miss split (and the
            // per-design plan count) shifts with design warming, so it
            // stays out of the recorded stream.
            let d = self.cache.stats().since(stats_before);
            self.obs.counter("serve.cache.lookups", d.hits + d.misses);
            self.obs.counter(
                "serve.cache.signatures",
                (self.cache.catalogs() - catalogs_before) as u64,
            );
        }

        queue_depth.sort_by_key(|&(t, _)| t);
        let mean_q = if sim_time > 0.0 {
            depth_area / sim_time
        } else {
            0.0
        };
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every request completes"))
            .collect();
        Ok(self.summarize(
            design,
            trace,
            outcomes,
            queue_depth,
            (mean_q, max_q),
            (prefill_steps, decode_steps),
            makespan,
            (sim_events, peak_q),
            self.cache.stats().since(stats_before),
        ))
    }

    /// Runs one replica as an event source on the simulation kernel.
    ///
    /// Arrivals fire at class [`PRIO_ARRIVAL`] and step completions at
    /// [`PRIO_STEP_DONE`], so a step finishing at the same instant a
    /// request arrives observes that arrival in its scheduling decision
    /// — the same "admit everything arrived by now" semantics the old
    /// hand-rolled loop had. Scheduling decisions are deferred until
    /// every event at the current instant has fired.
    fn run_replica(
        &self,
        design: Design,
        trace: &RequestTrace,
        replica: usize,
    ) -> Result<ReplicaRun, CompileError> {
        let assigned: Vec<usize> = (replica..trace.len())
            .step_by(self.config.replicas)
            .collect();
        let reqs = &trace.requests;
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let mut queue = QueueStat::new();
        let mut prefill_steps = 0u64;
        let mut decode_steps = 0u64;
        let mut waiting: Vec<usize> = Vec::new(); // FIFO, trace indices
        let mut active: Vec<InFlight> = Vec::new();
        let mut pending: Option<PendingStep> = None;
        let mut end = Seconds::ZERO;

        // A replica-local recorder: worker threads never write to the
        // shared sink directly, so the merged stream only depends on
        // the (deterministic) absorb order in `run`.
        let rec = self.obs.enabled().then(|| Arc::new(MemRecorder::new()));
        let mut q: EventQueue<Ev> = EventQueue::new();
        if let Some(rec) = &rec {
            q.observe(
                Obs::new(rec.clone(), self.obs.sample()),
                &format!("serve/replica{replica}"),
                &[(PRIO_ARRIVAL, "arrival"), (PRIO_STEP_DONE, "step_done")],
            );
        }
        for &idx in &assigned {
            q.schedule(reqs[idx].arrival, PRIO_ARRIVAL, Ev::Arrival(idx));
        }

        while let Some(fired) = q.pop() {
            let now = q.now();
            match fired.event {
                Ev::Arrival(idx) => {
                    waiting.push(idx);
                    queue.record(now, waiting.len());
                }
                Ev::StepDone => {
                    match pending.take().expect("StepDone implies an in-flight step") {
                        PendingStep::Prefill { batch } => {
                            prefill_steps += 1;
                            for idx in batch {
                                // The prefill step emits each request's
                                // first token.
                                let outcome = RequestOutcome {
                                    id: reqs[idx].id,
                                    replica,
                                    arrival: reqs[idx].arrival,
                                    first_token: now,
                                    completion: now,
                                    output_len: reqs[idx].output_len,
                                };
                                outcomes[idx] = Some(outcome);
                                if reqs[idx].output_len > 1 {
                                    active.push(InFlight { idx, generated: 1 });
                                }
                            }
                        }
                        PendingStep::Decode => {
                            decode_steps += 1;
                            active.retain_mut(|a| {
                                a.generated += 1;
                                let outcome = outcomes[a.idx].as_mut().expect("prefilled");
                                outcome.completion = now;
                                a.generated < reqs[a.idx].output_len
                            });
                        }
                    }
                    end = now;
                }
            }
            // Defer the scheduling decision until everything at this
            // instant has fired (all simultaneous arrivals admitted,
            // the step completion applied).
            if q.peek_time() == Some(now) || pending.is_some() {
                continue;
            }
            // next_step never admits more than max_batch requests, so a
            // deep waiting queue need not be materialized in full.
            let prompts: Vec<u64> = waiting
                .iter()
                .take(self.config.batch.max_batch as usize)
                .map(|&i| reqs[i].prompt_len)
                .collect();
            // No step to run (all-idle): the clock next moves at the
            // following arrival event — the old loop's idle-jump.
            let Some(step) = next_step(&self.config.batch, &prompts, active.len()) else {
                continue;
            };
            let latency = match step {
                StepPlan::Prefill { admit } => {
                    let batch: Vec<usize> = waiting.drain(..admit).collect();
                    queue.record(now, waiting.len());
                    let longest = batch
                        .iter()
                        .map(|&i| reqs[i].prompt_len)
                        .max()
                        .expect("prefill admits >= 1");
                    let wl = self.config.batch.step_workload(
                        Phase::Prefill,
                        batch.len() as u64,
                        longest,
                    );
                    let latency = self.split_latency(design, wl)?;
                    pending = Some(PendingStep::Prefill { batch });
                    latency
                }
                StepPlan::Decode => {
                    let deepest = active
                        .iter()
                        .map(|a| reqs[a.idx].prompt_len + a.generated)
                        .max()
                        .expect("decode requires >= 1 active");
                    let wl = self.config.batch.step_workload(
                        Phase::Decode,
                        active.len() as u64,
                        deepest,
                    );
                    let latency = self.split_latency(design, wl)?;
                    pending = Some(PendingStep::Decode);
                    latency
                }
            };
            q.schedule_after(latency, PRIO_STEP_DONE, Ev::StepDone);
        }
        Ok(ReplicaRun {
            outcomes: assigned
                .iter()
                .map(|&i| (i, outcomes[i].take().expect("assigned request completed")))
                .collect(),
            queue,
            prefill_steps,
            decode_steps,
            end,
            events: q.events_processed(),
            peak: q.peak_len(),
            obs: rec.map(|r| r.take_buf()),
        })
    }

    /// Latency of one `wl` step, falling back to sequential micro-batches
    /// when the full batch shape has no feasible on-chip plan (prefill
    /// attention is quadratic in sequence length, so long-context steps
    /// can exceed SRAM at batch sizes the decode path handles fine).
    /// Splitting halves the batch until the shape compiles; a batch-1
    /// failure is a genuine error — the request cannot run on this chip.
    fn split_latency(
        &self,
        design: Design,
        wl: elk_model::Workload,
    ) -> Result<Seconds, CompileError> {
        match self.cache.step_latency(
            &self.runner,
            &self.config.model,
            self.config.shards,
            design,
            wl,
            &self.config.sim,
        ) {
            Ok(t) => Ok(t),
            Err(CompileError::NoFeasiblePlan { .. } | CompileError::CapacityExceeded { .. })
                if wl.batch > 1 =>
            {
                let lo = elk_model::Workload {
                    batch: wl.batch / 2,
                    ..wl
                };
                let hi = elk_model::Workload {
                    batch: wl.batch - wl.batch / 2,
                    ..wl
                };
                let a = self.split_latency(design, lo)?;
                let b = if hi.batch == lo.batch {
                    a
                } else {
                    self.split_latency(design, hi)?
                };
                Ok(a + b)
            }
            Err(e) => Err(e),
        }
    }

    /// Folds per-request outcomes into the aggregate report.
    #[allow(clippy::too_many_arguments)]
    fn summarize(
        &self,
        design: Design,
        trace: &RequestTrace,
        outcomes: Vec<RequestOutcome>,
        queue_depth: Vec<(Seconds, usize)>,
        (mean_q, max_q): (f64, usize),
        (prefill_steps, decode_steps): (u64, u64),
        makespan: Seconds,
        (sim_events, peak_event_queue_len): (u64, usize),
        cache: crate::cache::CacheStats,
    ) -> ServingReport {
        if self.obs.enabled() {
            // Request lanes and latency histograms are derived from the
            // merged outcomes (trace order), not from replica event
            // loops, so they are deterministic by construction.
            for (i, o) in outcomes.iter().enumerate() {
                self.obs.histogram("serve.ttft", o.ttft());
                if let Some(t) = o.tpot() {
                    self.obs.histogram("serve.tpot", t);
                }
                self.obs.histogram("serve.e2e", o.e2e());
                if !self.obs.sampled(i) {
                    continue;
                }
                let track = format!("req/{}", o.id);
                let args = [("replica", o.replica.to_string())];
                self.obs.span(
                    &track,
                    "prefill",
                    o.arrival,
                    o.first_token - o.arrival,
                    &args,
                );
                if o.completion > o.first_token {
                    self.obs.span(
                        &track,
                        "decode",
                        o.first_token,
                        o.completion - o.first_token,
                        &args,
                    );
                }
            }
        }
        let ttft: Vec<Seconds> = outcomes.iter().map(RequestOutcome::ttft).collect();
        let tpot: Vec<Seconds> = outcomes.iter().filter_map(RequestOutcome::tpot).collect();
        let e2e: Vec<Seconds> = outcomes.iter().map(RequestOutcome::e2e).collect();
        let met = outcomes
            .iter()
            .filter(|o| o.meets(&self.config.slo))
            .count();
        let span = makespan.as_secs();
        let per_sec = |x: f64| if span > 0.0 { x / span } else { 0.0 };
        ServingReport {
            design,
            replicas: self.config.replicas,
            requests: trace.len(),
            completed: outcomes.len(),
            makespan,
            ttft: LatencyStats::of(&ttft),
            tpot: LatencyStats::of(&tpot),
            e2e: LatencyStats::of(&e2e),
            slo: self.config.slo,
            slo_attainment: if outcomes.is_empty() {
                0.0
            } else {
                met as f64 / outcomes.len() as f64
            },
            goodput_rps: per_sec(met as f64),
            throughput_rps: per_sec(outcomes.len() as f64),
            tokens_per_sec: per_sec(trace.total_output_tokens() as f64),
            prefill_steps,
            decode_steps,
            mean_queue_depth: mean_q,
            max_queue_depth: max_q,
            queue_depth,
            sim_events,
            peak_event_queue_len,
            cache,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArrivalProcess, LengthDist, TraceConfig};
    use elk_hw::presets;
    use elk_model::{zoo, SeqBuckets};

    fn tiny_config() -> ServeConfig {
        let mut model = zoo::llama2_13b();
        model.layers = 2;
        ServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_prefill_tokens: 2048,
                seq_buckets: SeqBuckets::new(256, 2048),
                bucket_batch: true,
            },
            ..ServeConfig::new(model, 4)
        }
    }

    fn tiny_trace(requests: usize) -> RequestTrace {
        TraceConfig {
            seed: 11,
            requests,
            arrivals: ArrivalProcess::Poisson { rate_rps: 200.0 },
            prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
            output_len: LengthDist::Uniform { lo: 2, hi: 12 },
        }
        .generate()
    }

    #[test]
    fn every_request_completes_in_order_consistent_state() {
        let mut sim = ServingSim::new(presets::ipu_pod4(), tiny_config());
        let trace = tiny_trace(20);
        let r = sim.run(Design::ElkFull, &trace).unwrap();
        assert_eq!(r.completed, 20);
        assert_eq!(r.outcomes.len(), 20);
        for o in &r.outcomes {
            assert!(o.first_token > o.arrival);
            assert!(o.completion >= o.first_token);
            if o.output_len > 1 {
                assert!(o.completion > o.first_token);
            }
        }
        assert!(r.makespan >= trace.duration());
        assert!(r.prefill_steps > 0 && r.decode_steps > 0);
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let mut sim = ServingSim::new(presets::ipu_pod4(), tiny_config());
        let trace = RequestTrace::from_requests(vec![]);
        let r = sim.run(Design::Basic, &trace).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.makespan, Seconds::ZERO);
        assert_eq!(r.throughput_rps, 0.0);
        assert_eq!(r.ttft.n, 0);
    }

    #[test]
    fn replicas_split_the_load() {
        let trace = tiny_trace(16);
        let mut one = ServingSim::new(presets::ipu_pod4(), tiny_config());
        let mut two = ServingSim::new(presets::ipu_pod4(), tiny_config().with_replicas(2));
        let r1 = one.run(Design::ElkFull, &trace).unwrap();
        let r2 = two.run(Design::ElkFull, &trace).unwrap();
        assert_eq!(r2.completed, 16);
        assert_eq!(r2.replicas, 2);
        // Twice the hardware under the same load should not be slower.
        assert!(r2.e2e.mean <= r1.e2e.mean * 1.01);
        let replicas_used: std::collections::HashSet<usize> =
            r2.outcomes.iter().map(|o| o.replica).collect();
        assert_eq!(replicas_used.len(), 2);
    }

    #[test]
    fn parallel_replicas_match_sequential_byte_for_byte() {
        let trace = tiny_trace(16);
        let mut seq = ServingSim::new(presets::ipu_pod4(), tiny_config().with_replicas(2));
        let mut par = ServingSim::new(
            presets::ipu_pod4(),
            tiny_config().with_replicas(2).with_threads(4),
        );
        for design in [Design::ElkFull, Design::Basic] {
            let mut a = seq.run(design, &trace).unwrap();
            let mut b = par.run(design, &trace).unwrap();
            // Outcomes and latencies are thread-count invariant; only
            // the hit/miss split may shift (warming), so blank it for
            // the whole-report comparison.
            a.cache = crate::cache::CacheStats::default();
            b.cache = crate::cache::CacheStats::default();
            assert_eq!(a, b, "{design}: parallel run diverged");
        }
    }

    #[test]
    fn recorded_timeline_is_byte_identical_across_thread_counts() {
        use elk_obs::{export, MemRecorder};

        let trace = tiny_trace(16);
        let run = |threads: usize| {
            let rec = Arc::new(MemRecorder::new());
            let mut sim = ServingSim::new(
                presets::ipu_pod4(),
                tiny_config().with_replicas(2).with_threads(threads),
            );
            sim.set_obs(Obs::new(rec.clone(), 64));
            sim.run(Design::ElkFull, &trace).unwrap();
            let buf = rec.take_buf();
            (
                serde_json::to_string(&export::chrome_trace(&buf)).unwrap(),
                serde_json::to_string(&export::metrics(&buf)).unwrap(),
            )
        };
        let (trace1, metrics1) = run(1);
        let (trace4, metrics4) = run(4);
        assert_eq!(trace1, trace4, "timeline must not depend on thread count");
        assert_eq!(
            metrics1, metrics4,
            "metrics must not depend on thread count"
        );
        assert!(trace1.contains("req/"), "request lanes recorded");
        assert!(trace1.contains("serve/replica1"), "kernel track recorded");
        assert!(metrics1.contains("serve.cache.lookups"));
        assert!(metrics1.contains("serve.cache.signatures"));
    }

    #[test]
    fn cache_hits_accumulate_across_runs() {
        let mut sim = ServingSim::new(presets::ipu_pod4(), tiny_config());
        let trace = tiny_trace(12);
        let first = sim.run(Design::ElkFull, &trace).unwrap();
        let second = sim.run(Design::ElkFull, &trace).unwrap();
        assert!(first.cache.misses > 0);
        assert!(first.cache.hits > 0, "repeated shapes must hit in-run");
        assert_eq!(second.cache.misses, 0, "second run must be fully cached");
        assert!(second.cache.hits > 0);
    }
}
