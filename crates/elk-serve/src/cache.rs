//! Plan cache: one compile + simulate per distinct workload signature.
//!
//! Continuous batching generates a stream of `(phase, batch, seq)` step
//! shapes. After bucketing (see [`elk_model::SeqBuckets`]) the stream
//! collapses onto a small set of signatures, so caching the simulated
//! step latency per signature means repeated shapes never recompile.
//! Plan catalogs are design-independent and cached separately, so the
//! five evaluation designs share the enumeration work too.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use elk_baselines::{Design, DesignRunner};
use elk_core::{Catalog, CompileError};
use elk_model::{ModelGraph, Phase, TransformerConfig, Workload};
use elk_sim::SimOptions;
use elk_units::Seconds;

/// Cache key: the workload signature the compiled step latency depends
/// on.
///
/// The model is identified **by name**: the cache trusts
/// [`TransformerConfig::name`] to uniquely identify the architecture,
/// and assumes the same [`SimOptions`] on every lookup. Both hold
/// inside [`ServingSim`](crate::ServingSim), which fixes the config per
/// instance; callers driving a shared `PlanCache` directly must keep
/// model names unique and simulator options constant themselves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Model name (from [`TransformerConfig::name`]).
    pub model: String,
    /// Tensor-parallel shard count the graph was built for.
    pub shards: u64,
    /// Evaluation design the plan was compiled for.
    pub design: Design,
    /// Step phase (prefill or decode).
    pub phase: Phase,
    /// Bucketed batch size.
    pub batch: u64,
    /// Bucketed sequence length.
    pub seq_bucket: u64,
}

impl PlanKey {
    /// Builds the key for `design` on a **bucketed** workload.
    #[must_use]
    pub fn new(model: &str, shards: u64, design: Design, wl: Workload) -> Self {
        PlanKey {
            model: model.to_string(),
            shards,
            design,
            phase: wl.phase,
            batch: wl.batch,
            seq_bucket: wl.seq_len,
        }
    }
}

/// Hit/miss counters, cumulative over the cache's lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered without compiling.
    pub hits: u64,
    /// Lookups that compiled and simulated a new plan.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counters accumulated since an earlier `snapshot` of this cache.
    #[must_use]
    pub fn since(&self, snapshot: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - snapshot.hits,
            misses: self.misses - snapshot.misses,
        }
    }
}

/// Signature of the graph/catalog, shared by all designs:
/// `(model name, shards, phase, batch, seq bucket)`.
type GraphKey = (String, u64, Phase, u64, u64);

/// Memoizes compiled-and-simulated step latencies per [`PlanKey`].
///
/// The catalog layer (plan enumeration per operator) is keyed on the
/// workload signature alone and reused across designs; the latency
/// layer additionally keys on the design. Both layers live for the
/// cache's lifetime, so one cache shared across designs and replicas
/// maximizes reuse.
#[derive(Debug, Default)]
pub struct PlanCache {
    graphs: HashMap<GraphKey, (ModelGraph, Catalog)>,
    latencies: HashMap<PlanKey, Seconds>,
    /// Signatures known to have no feasible plan, so the serving layer's
    /// fallback (micro-batch splitting) does not recompile the same
    /// doomed shape every step.
    graph_failures: HashMap<GraphKey, CompileError>,
    plan_failures: HashMap<PlanKey, CompileError>,
    stats: CacheStats,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Simulated latency of one `wl` step under `design`, compiling on
    /// first sight of the signature. `wl` must already be bucketed —
    /// the cache keys on it verbatim.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from catalog construction or planning.
    pub fn step_latency(
        &mut self,
        runner: &DesignRunner,
        cfg: &TransformerConfig,
        shards: u64,
        design: Design,
        wl: Workload,
        sim: &SimOptions,
    ) -> Result<Seconds, CompileError> {
        let key = PlanKey::new(&cfg.name, shards, design, wl);
        if let Some(&latency) = self.latencies.get(&key) {
            self.stats.hits += 1;
            return Ok(latency);
        }
        let gkey: GraphKey = (cfg.name.clone(), shards, wl.phase, wl.batch, wl.seq_len);
        if let Some(e) = self.graph_failures.get(&gkey) {
            self.stats.hits += 1;
            return Err(e.clone());
        }
        if let Some(e) = self.plan_failures.get(&key) {
            self.stats.hits += 1;
            return Err(e.clone());
        }
        self.stats.misses += 1;
        if !self.graphs.contains_key(&gkey) {
            let graph = cfg.build(wl, shards);
            match runner.catalog(&graph) {
                Ok(catalog) => {
                    self.graphs.insert(gkey.clone(), (graph, catalog));
                }
                Err(e) => {
                    self.graph_failures.insert(gkey, e.clone());
                    return Err(e);
                }
            }
        }
        let (graph, catalog) = &self.graphs[&gkey];
        match runner.run(design, graph, catalog, sim) {
            Ok(outcome) => {
                let latency = outcome.report.total;
                self.latencies.insert(key, latency);
                Ok(latency)
            }
            Err(e) => {
                self.plan_failures.insert(key, e.clone());
                Err(e)
            }
        }
    }

    /// Cumulative hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct compiled plans resident.
    #[must_use]
    pub fn plans(&self) -> usize {
        self.latencies.len()
    }

    /// Number of distinct graph/catalog signatures resident.
    #[must_use]
    pub fn catalogs(&self) -> usize {
        self.graphs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::zoo;

    fn tiny_cfg() -> TransformerConfig {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        cfg
    }

    #[test]
    fn second_lookup_hits() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let mut cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let a = cache
            .step_latency(&runner, &cfg, 4, Design::ElkFull, wl, &sim)
            .unwrap();
        let b = cache
            .step_latency(&runner, &cfg, 4, Design::ElkFull, wl, &sim)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.plans(), 1);
    }

    #[test]
    fn designs_share_the_catalog() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let mut cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        for d in Design::ALL {
            cache.step_latency(&runner, &cfg, 4, d, wl, &sim).unwrap();
        }
        assert_eq!(cache.catalogs(), 1, "catalog must be design-independent");
        assert_eq!(cache.plans(), 5);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn stats_delta() {
        let s0 = CacheStats { hits: 2, misses: 3 };
        let s1 = CacheStats { hits: 7, misses: 4 };
        assert_eq!(s1.since(s0), CacheStats { hits: 5, misses: 1 });
        assert!((s1.hit_rate() - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
