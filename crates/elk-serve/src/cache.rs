//! Plan cache: one compile + simulate per distinct workload signature.
//!
//! Continuous batching generates a stream of `(phase, batch, seq)` step
//! shapes. After bucketing (see [`elk_model::SeqBuckets`]) the stream
//! collapses onto a small set of signatures, so caching the simulated
//! step latency per signature means repeated shapes never recompile.
//! Plan catalogs are design-independent and cached separately, so the
//! five evaluation designs share the enumeration work too.
//!
//! The cache is **thread-safe and single-flight**: lookups take `&self`
//! (replica event loops run concurrently against one shared cache), and
//! each graph signature / plan key is guarded by an
//! [`elk_par::SingleFlight`] slot, so of N concurrent misses on one key
//! exactly one performs the compile and the rest wait for its result —
//! two in-flight requests never compile the same [`PlanKey`] twice.
//! With a multi-worker pool ([`PlanCache::with_threads`]) a miss on a
//! fresh signature also *warms* the remaining designs concurrently:
//! catalogs are design-independent, so compiling all five designs while
//! the catalog is hot turns the other designs' first lookups into hits.
//! Cached values are identical at any thread count (compilation is
//! deterministic); threading only changes when they are computed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use elk_baselines::{Design, DesignRunner};
use elk_core::{Catalog, CompileError};
use elk_model::{ModelGraph, Phase, TransformerConfig, Workload};
use elk_par::SingleFlight;
use elk_sim::SimOptions;
use elk_units::Seconds;

/// Cache key: the workload signature the compiled step latency depends
/// on.
///
/// The model is identified **by name**: the cache trusts
/// [`TransformerConfig::name`] to uniquely identify the architecture,
/// and assumes the same [`SimOptions`] on every lookup. Both hold
/// inside [`ServingSim`](crate::ServingSim), which fixes the config per
/// instance; callers driving a shared `PlanCache` directly must keep
/// model names unique and simulator options constant themselves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Model name (from [`TransformerConfig::name`]).
    pub model: String,
    /// Tensor-parallel shard count the graph was built for.
    pub shards: u64,
    /// Evaluation design the plan was compiled for.
    pub design: Design,
    /// Step phase (prefill or decode).
    pub phase: Phase,
    /// Bucketed batch size.
    pub batch: u64,
    /// Bucketed sequence length.
    pub seq_bucket: u64,
}

impl PlanKey {
    /// Builds the key for `design` on a **bucketed** workload.
    #[must_use]
    pub fn new(model: &str, shards: u64, design: Design, wl: Workload) -> Self {
        PlanKey {
            model: model.to_string(),
            shards,
            design,
            phase: wl.phase,
            batch: wl.batch,
            seq_bucket: wl.seq_len,
        }
    }
}

/// Hit/miss counters, cumulative over the cache's lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups whose requested key was (or became) available without
    /// this lookup computing it — including lookups that waited on
    /// another thread's in-flight compile of the same key.
    pub hits: u64,
    /// Lookups that computed their requested key: compiled + simulated
    /// the design, or memoized its compile failure.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counters accumulated since an earlier `snapshot` of this cache.
    #[must_use]
    pub fn since(&self, snapshot: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - snapshot.hits,
            misses: self.misses - snapshot.misses,
        }
    }
}

/// Signature of the graph/catalog, shared by all designs:
/// `(model name, shards, phase, batch, seq bucket)`.
type GraphKey = (String, u64, Phase, u64, u64);

/// The mutable cache maps, behind one mutex. Compiles happen *outside*
/// the lock (guarded by the single-flight slots), so lookups of already
/// cached keys never block behind an in-flight compile of another key.
#[derive(Debug, Default)]
struct Inner {
    graphs: HashMap<GraphKey, Arc<(ModelGraph, Catalog)>>,
    latencies: HashMap<PlanKey, Seconds>,
    /// Signatures known to have no feasible plan, so the serving layer's
    /// fallback (micro-batch splitting) does not recompile the same
    /// doomed shape every step.
    graph_failures: HashMap<GraphKey, CompileError>,
    plan_failures: HashMap<PlanKey, CompileError>,
    stats: CacheStats,
}

/// Memoizes compiled-and-simulated step latencies per [`PlanKey`].
///
/// The catalog layer (plan enumeration per operator) is keyed on the
/// workload signature alone and reused across designs; the latency
/// layer additionally keys on the design. Both layers live for the
/// cache's lifetime, so one cache shared across designs and replicas
/// maximizes reuse. See the module docs for the concurrency contract.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    graph_flight: SingleFlight<GraphKey>,
    plan_flight: SingleFlight<PlanKey>,
    threads: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache with a single worker (no design warming).
    #[must_use]
    pub fn new() -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            graph_flight: SingleFlight::new(),
            plan_flight: SingleFlight::new(),
            threads: 1,
        }
    }

    /// Sets the compile worker count (`0` = all available cores). With
    /// more than one worker, a miss on a fresh signature compiles all
    /// five designs concurrently instead of just the requested one.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = elk_par::resolve_threads(threads);
        self
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Simulated latency of one `wl` step under `design`, compiling on
    /// first sight of the signature. `wl` must already be bucketed —
    /// the cache keys on it verbatim.
    ///
    /// Safe to call from concurrent replica threads: the compile for
    /// any given key happens at most once (single-flight), and the
    /// returned latency is independent of interleaving.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from catalog construction or planning.
    pub fn step_latency(
        &self,
        runner: &DesignRunner,
        cfg: &TransformerConfig,
        shards: u64,
        design: Design,
        wl: Workload,
        sim: &SimOptions,
    ) -> Result<Seconds, CompileError> {
        self.step_latency_for(runner, &cfg.name, shards, design, wl, sim, |w, s| {
            cfg.build(w, s)
        })
    }

    /// [`step_latency`](Self::step_latency) with an explicit graph
    /// builder — the entry point for callers whose unit of compilation
    /// is not a whole [`TransformerConfig`] (the cluster planner caches
    /// per **pipeline stage**, building each stage's sub-graph here).
    ///
    /// `model_key` must uniquely identify the architecture `build`
    /// produces, exactly as [`PlanKey`]'s docs require of model names;
    /// equal keys share cached plans, so two structurally identical
    /// stages with the same key compile once.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from catalog construction or planning.
    #[allow(clippy::too_many_arguments)]
    pub fn step_latency_for<F>(
        &self,
        runner: &DesignRunner,
        model_key: &str,
        shards: u64,
        design: Design,
        wl: Workload,
        sim: &SimOptions,
        build: F,
    ) -> Result<Seconds, CompileError>
    where
        F: FnOnce(Workload, u64) -> ModelGraph,
    {
        let key = PlanKey::new(model_key, shards, design, wl);
        let gkey: GraphKey = (
            model_key.to_string(),
            shards,
            wl.phase,
            wl.batch,
            wl.seq_len,
        );

        // Fast path + provisional miss, under one short lock.
        {
            let mut inner = self.lock();
            if let Some(&latency) = inner.latencies.get(&key) {
                inner.stats.hits += 1;
                return Ok(latency);
            }
            if let Some(e) = inner.graph_failures.get(&gkey).cloned() {
                inner.stats.hits += 1;
                return Err(e);
            }
            if let Some(e) = inner.plan_failures.get(&key).cloned() {
                inner.stats.hits += 1;
                return Err(e);
            }
            // Provisional: reclassified as a hit below if another
            // thread's in-flight compile ends up doing all the work.
            inner.stats.misses += 1;
        }

        // Catalog layer, single-flight per graph signature.
        let mut memoized_graph_failure = false;
        self.graph_flight.with(&gkey, || {
            let cached = {
                let inner = self.lock();
                inner.graphs.contains_key(&gkey) || inner.graph_failures.contains_key(&gkey)
            };
            if cached {
                return;
            }
            let graph = build(wl, shards);
            match runner.catalog(&graph) {
                Ok(catalog) => {
                    self.lock()
                        .graphs
                        .insert(gkey.clone(), Arc::new((graph, catalog)));
                }
                Err(e) => {
                    memoized_graph_failure = true;
                    self.lock().graph_failures.insert(gkey.clone(), e);
                }
            }
        });

        let shared = {
            let inner = self.lock();
            match inner.graphs.get(&gkey) {
                Some(s) => Arc::clone(s),
                None => {
                    let e = inner.graph_failures[&gkey].clone();
                    drop(inner);
                    return self.resolve(memoized_graph_failure, Err(e));
                }
            }
        };

        // Plan layer: the requested design, plus — with a multi-worker
        // pool — every other not-yet-cached design (warming; catalogs
        // are design-independent, so the enumeration work is already
        // paid for).
        let designs: Vec<Design> = if self.threads > 1 {
            let inner = self.lock();
            Design::ALL
                .into_iter()
                .filter(|&d| {
                    let dk = PlanKey {
                        design: d,
                        ..key.clone()
                    };
                    d == design
                        || !(inner.latencies.contains_key(&dk)
                            || inner.plan_failures.contains_key(&dk))
                })
                .collect()
        } else {
            vec![design]
        };
        let compiled = elk_par::par_map(self.threads, &designs, |_, &d| {
            let dkey = PlanKey {
                design: d,
                ..key.clone()
            };
            self.plan_flight.with(&dkey, || {
                {
                    let inner = self.lock();
                    if inner.latencies.contains_key(&dkey)
                        || inner.plan_failures.contains_key(&dkey)
                    {
                        return false;
                    }
                }
                let (graph, catalog) = &*shared;
                match runner.run(d, graph, catalog, sim) {
                    Ok(outcome) => {
                        self.lock()
                            .latencies
                            .insert(dkey.clone(), outcome.report.total);
                    }
                    Err(e) => {
                        self.lock().plan_failures.insert(dkey.clone(), e);
                    }
                }
                true
            })
        });
        let computed_requested = designs
            .iter()
            .zip(&compiled)
            .any(|(&d, &c)| d == design && c);

        let result = {
            let inner = self.lock();
            match inner.latencies.get(&key) {
                Some(&latency) => Ok(latency),
                None => Err(inner.plan_failures[&key].clone()),
            }
        };
        self.resolve(computed_requested, result)
    }

    /// Final accounting for a slow-path lookup: if the requested key
    /// turned out to be computed by another thread (or by an earlier
    /// lookup's warming), the provisional miss becomes a hit — the same
    /// count a sequential interleaving would have produced.
    fn resolve(
        &self,
        worked: bool,
        result: Result<Seconds, CompileError>,
    ) -> Result<Seconds, CompileError> {
        if !worked {
            let mut inner = self.lock();
            inner.stats.misses -= 1;
            inner.stats.hits += 1;
        }
        result
    }

    /// Cumulative hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Number of distinct compiled plans resident.
    #[must_use]
    pub fn plans(&self) -> usize {
        self.lock().latencies.len()
    }

    /// Number of distinct graph/catalog signatures resident.
    #[must_use]
    pub fn catalogs(&self) -> usize {
        self.lock().graphs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::zoo;

    fn tiny_cfg() -> TransformerConfig {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        cfg
    }

    #[test]
    fn second_lookup_hits() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let a = cache
            .step_latency(&runner, &cfg, 4, Design::ElkFull, wl, &sim)
            .unwrap();
        let b = cache
            .step_latency(&runner, &cfg, 4, Design::ElkFull, wl, &sim)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.plans(), 1);
    }

    #[test]
    fn designs_share_the_catalog() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        for d in Design::ALL {
            cache.step_latency(&runner, &cfg, 4, d, wl, &sim).unwrap();
        }
        assert_eq!(cache.catalogs(), 1, "catalog must be design-independent");
        assert_eq!(cache.plans(), 5);
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn warming_compiles_all_designs_on_first_miss() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let cache = PlanCache::new().with_threads(4);
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let warm = cache
            .step_latency(&runner, &cfg, 4, Design::Basic, wl, &sim)
            .unwrap();
        assert_eq!(cache.plans(), 5, "first miss warms every design");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        // The other designs' first lookups are hits, and warmed values
        // equal what a cold sequential compile produces.
        let seq_cache = PlanCache::new();
        for d in Design::ALL {
            let a = cache.step_latency(&runner, &cfg, 4, d, wl, &sim).unwrap();
            let b = seq_cache
                .step_latency(&runner, &cfg, 4, d, wl, &sim)
                .unwrap();
            assert_eq!(a, b, "{d}: warmed latency must match sequential");
            if d == Design::Basic {
                assert_eq!(a, warm);
            }
        }
        assert_eq!(cache.stats(), CacheStats { hits: 5, misses: 1 });
    }

    #[test]
    fn concurrent_lookups_compile_each_key_once() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let latencies: Vec<Seconds> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .step_latency(&runner, &cfg, 4, Design::ElkDyn, wl, &sim)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(latencies.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.plans(), 1, "single-flight: one compile total");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one lookup did the work");
        assert_eq!(stats.hits, 5);
    }

    #[test]
    fn custom_builders_share_plans_per_model_key() {
        let cfg = tiny_cfg();
        let runner = DesignRunner::new(presets::ipu_pod4());
        let cache = PlanCache::new();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        // Two structurally identical "stages" under one key: one compile.
        let a = cache
            .step_latency_for(
                &runner,
                "stage[0..1]",
                4,
                Design::Basic,
                wl,
                &sim,
                |w, s| cfg.build_stage(w, s, 0..1, false, false),
            )
            .unwrap();
        let b = cache
            .step_latency_for(
                &runner,
                "stage[0..1]",
                4,
                Design::Basic,
                wl,
                &sim,
                |w, s| cfg.build_stage(w, s, 1..2, false, false),
            )
            .unwrap();
        assert_eq!(a, b, "same key, same cached latency");
        assert_eq!(cache.plans(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // A different key compiles separately.
        let c = cache
            .step_latency_for(
                &runner,
                "stage[+head]",
                4,
                Design::Basic,
                wl,
                &sim,
                |w, s| cfg.build_stage(w, s, 1..2, false, true),
            )
            .unwrap();
        assert!(c > b, "the head stage does strictly more work");
        assert_eq!(cache.plans(), 2);
    }

    #[test]
    fn stats_delta() {
        let s0 = CacheStats { hits: 2, misses: 3 };
        let s1 = CacheStats { hits: 7, misses: 4 };
        assert_eq!(s1.since(s0), CacheStats { hits: 5, misses: 1 });
        assert!((s1.hit_rate() - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
