//! # elk-serve — request-level serving simulation over compiled Elk plans
//!
//! The paper evaluates Elk on steady-state per-batch latency (§6,
//! Fig. 17). This crate layers request-level dynamics on top of the
//! compiler and chip simulator: arrivals, queueing, prefill/decode
//! interleaving, and tail latency — the quantities a serving system is
//! actually judged on.
//!
//! ## Data flow
//!
//! ```text
//! trace (TraceConfig / RequestTrace)          requests with arrival,
//!        |                                    prompt_len, output_len
//!        v
//! batcher (BatchConfig)                       iteration-level continuous
//!        |                                    batching: prefill | decode
//!        v
//! plan cache (PlanCache)                      one Elk compile + simulate
//!        |                                    per bucketed (model, design,
//!        v                                    phase, batch, seq) signature
//! chip simulator (elk-sim SimReport)          step latency
//!        |
//!        v
//! metrics (ServingReport)                     TTFT / TPOT / e2e
//!                                             percentiles, goodput,
//!                                             queue depth
//! ```
//!
//! ## Knobs
//!
//! | knob | where | meaning |
//! |---|---|---|
//! | `seed`, `requests` | [`TraceConfig`] | deterministic trace size/stream |
//! | `arrivals` | [`ArrivalProcess`] | `Poisson { rate_rps }` or on/off `Bursty { burst_factor, period_s, duty }` |
//! | `prompt_len`, `output_len` | [`LengthDist`] | `Fixed`, `Uniform`, or `Bimodal` token counts |
//! | `max_batch` | [`BatchConfig`] | concurrent requests per replica |
//! | `max_prefill_tokens` | [`BatchConfig`] | prompt-token budget per prefill step |
//! | `seq_buckets` | [`BatchConfig`] | pow-2 context bucketing for plan-cache keys |
//! | `bucket_batch` | [`BatchConfig`] | round batch shapes to powers of two |
//! | `shards` | [`ServeConfig`] | tensor-parallel chips per replica |
//! | `replicas` | [`ServeConfig`] | independent chip groups (round-robin routing) |
//! | `threads` | [`ServeConfig`] | worker pool: concurrent replica loops + single-flight compile fan-out (`1` = sequential, `0` = all cores) |
//! | `slo` | [`SloConfig`] | TTFT/TPOT bounds scored by goodput |
//! | `sim` | [`ServeConfig`] | chip-simulator noise/trace options |
//!
//! ## Example
//!
//! ```
//! use elk_serve::{ArrivalProcess, LengthDist, ServeConfig, ServingSim, TraceConfig};
//! use elk_baselines::Design;
//! use elk_hw::presets;
//! use elk_model::zoo;
//!
//! # fn main() -> Result<(), elk_core::CompileError> {
//! let trace = TraceConfig {
//!     seed: 7,
//!     requests: 10,
//!     arrivals: ArrivalProcess::Poisson { rate_rps: 100.0 },
//!     prompt_len: LengthDist::Uniform { lo: 100, hi: 400 },
//!     output_len: LengthDist::Fixed(4),
//! }
//! .generate();
//!
//! let mut model = zoo::llama2_13b();
//! model.layers = 2; // doctest-sized
//! let mut sim = ServingSim::new(presets::ipu_pod4(), ServeConfig::new(model, 4));
//! let report = sim.run(Design::ElkFull, &trace)?;
//! assert_eq!(report.completed, 10);
//! assert!(report.ttft.p99 >= report.ttft.p50);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batcher;
mod cache;
mod engine;
mod metrics;
mod report;
mod router;
mod tenancy;
mod trace;

pub use batcher::{next_step, BatchConfig, StepPlan};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use engine::{ServeConfig, ServingSim};
pub use metrics::{percentile, LatencyStats, RequestOutcome, SloConfig};
pub use report::ServingReport;
pub use router::{Router, RouterPolicy};
pub use tenancy::{
    jain_index, ShedPolicy, TenancyConfig, TenantClass, TenantReport, TokenBucket,
    MAX_CLASS_PRIORITY,
};
pub use trace::{ArrivalProcess, LengthDist, Request, RequestTrace, TraceConfig};
