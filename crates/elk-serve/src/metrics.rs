//! Latency summaries, percentiles, and SLO accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::Seconds;

/// Nearest-rank percentile of an **ascending-sorted** slice.
///
/// `p` is in `[0, 100]`; `p = 0` returns the minimum and `p = 100` the
/// maximum. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use elk_serve::percentile;
///
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.0)); // nearest rank: ceil(2) = 2nd
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// Five-number summary of a latency sample.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Median (nearest-rank p50).
    pub p50: Seconds,
    /// Nearest-rank 95th percentile.
    pub p95: Seconds,
    /// Nearest-rank 99th percentile.
    pub p99: Seconds,
    /// Maximum.
    pub max: Seconds,
}

impl LatencyStats {
    /// Summarizes `values` (order-insensitive). All fields are zero for
    /// an empty sample.
    #[must_use]
    pub fn of(values: &[Seconds]) -> Self {
        if values.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted: Vec<f64> = values.iter().map(|s| s.as_secs()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Seconds is never NaN"));
        let pick = |p: f64| Seconds::new(percentile(&sorted, p).expect("non-empty"));
        LatencyStats {
            n: values.len(),
            mean: Seconds::new(sorted.iter().sum::<f64>() / sorted.len() as f64),
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
            max: Seconds::new(*sorted.last().expect("non-empty")),
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.3} ms | p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms | max {:.3} ms (n={})",
            self.mean.as_millis(),
            self.p50.as_millis(),
            self.p95.as_millis(),
            self.p99.as_millis(),
            self.max.as_millis(),
            self.n
        )
    }
}

/// Per-request latency service-level objective.
///
/// A completed request *meets* the SLO when its time-to-first-token and
/// mean time-per-output-token are both within bounds; goodput is the
/// rate of SLO-meeting completions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Time-to-first-token bound.
    pub ttft: Seconds,
    /// Time-per-output-token bound (mean over the request's decode
    /// steps; ignored for single-token outputs).
    pub tpot: Seconds,
}

impl Default for SloConfig {
    /// Interactive-chat flavored bounds: 2 s to first token, 60 ms per
    /// subsequent token.
    fn default() -> Self {
        SloConfig {
            ttft: Seconds::new(2.0),
            tpot: Seconds::from_millis(60.0),
        }
    }
}

/// Timeline of one request through the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id from the trace.
    pub id: u64,
    /// Replica that served the request.
    pub replica: usize,
    /// Arrival time.
    pub arrival: Seconds,
    /// End of the prefill step that produced the first token.
    pub first_token: Seconds,
    /// End of the decode step that produced the last token.
    pub completion: Seconds,
    /// Tokens generated (equals the trace's `output_len`).
    pub output_len: u64,
}

impl RequestOutcome {
    /// Time-to-first-token: queueing plus prefill.
    #[must_use]
    pub fn ttft(&self) -> Seconds {
        self.first_token - self.arrival
    }

    /// Mean time-per-output-token over the decode steps (`None` for a
    /// single-token output, which has no decode steps).
    #[must_use]
    pub fn tpot(&self) -> Option<Seconds> {
        if self.output_len < 2 {
            return None;
        }
        Some((self.completion - self.first_token) / (self.output_len - 1) as f64)
    }

    /// End-to-end latency: arrival to last token.
    #[must_use]
    pub fn e2e(&self) -> Seconds {
        self.completion - self.arrival
    }

    /// `true` when the request meets `slo`.
    #[must_use]
    pub fn meets(&self, slo: &SloConfig) -> bool {
        self.ttft() <= slo.ttft && self.tpot().is_none_or(|t| t <= slo.tpot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_exact_small_samples() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 20.0), Some(10.0)); // ceil(1) = 1st
        assert_eq!(percentile(&v, 21.0), Some(20.0)); // ceil(1.05) = 2nd
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 99.0), Some(50.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile(&[7.5], 1.0), Some(7.5));
        assert_eq!(percentile(&[7.5], 99.0), Some(7.5));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of [0, 100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn stats_of_known_sample() {
        let vals: Vec<Seconds> = (1..=100).map(|i| Seconds::from_millis(i as f64)).collect();
        let s = LatencyStats::of(&vals);
        assert_eq!(s.n, 100);
        assert!((s.mean.as_millis() - 50.5).abs() < 1e-9);
        assert!((s.p50.as_millis() - 50.0).abs() < 1e-9);
        assert!((s.p95.as_millis() - 95.0).abs() < 1e-9);
        assert!((s.p99.as_millis() - 99.0).abs() < 1e-9);
        assert!((s.max.as_millis() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty_is_zeroed() {
        let s = LatencyStats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, Seconds::ZERO);
        assert_eq!(s.p99, Seconds::ZERO);
    }

    #[test]
    fn stats_are_order_insensitive() {
        let a = [Seconds::new(3.0), Seconds::new(1.0), Seconds::new(2.0)];
        let b = [Seconds::new(1.0), Seconds::new(2.0), Seconds::new(3.0)];
        assert_eq!(LatencyStats::of(&a), LatencyStats::of(&b));
    }

    fn outcome(ttft_ms: f64, total_ms: f64, tokens: u64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            replica: 0,
            arrival: Seconds::ZERO,
            first_token: Seconds::from_millis(ttft_ms),
            completion: Seconds::from_millis(total_ms),
            output_len: tokens,
        }
    }

    #[test]
    fn outcome_derived_metrics() {
        let o = outcome(100.0, 600.0, 11); // 10 decode steps over 500 ms
        assert!((o.ttft().as_millis() - 100.0).abs() < 1e-9);
        assert!((o.tpot().unwrap().as_millis() - 50.0).abs() < 1e-9);
        assert!((o.e2e().as_millis() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn single_token_output_has_no_tpot_and_meets_on_ttft_alone() {
        let o = outcome(100.0, 100.0, 1);
        assert_eq!(o.tpot(), None);
        let slo = SloConfig {
            ttft: Seconds::from_millis(150.0),
            tpot: Seconds::from_millis(1.0),
        };
        assert!(o.meets(&slo));
    }

    #[test]
    fn slo_miss_on_either_axis() {
        let slo = SloConfig {
            ttft: Seconds::from_millis(150.0),
            tpot: Seconds::from_millis(60.0),
        };
        assert!(outcome(100.0, 400.0, 11).meets(&slo));
        assert!(!outcome(200.0, 400.0, 11).meets(&slo)); // TTFT miss
        assert!(!outcome(100.0, 1200.0, 11).meets(&slo)); // TPOT miss
    }
}
