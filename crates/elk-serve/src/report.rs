//! The serving report: what one trace-driven run measured.

use std::fmt;

use serde::{Deserialize, Serialize};

use elk_baselines::Design;
use elk_units::Seconds;

use crate::cache::CacheStats;
use crate::metrics::{LatencyStats, RequestOutcome, SloConfig};

/// Aggregated result of serving one [`RequestTrace`] under one design.
///
/// [`RequestTrace`]: crate::RequestTrace
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// The design that served the trace.
    pub design: Design,
    /// Replica count the trace was spread over.
    pub replicas: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (always equals `requests`; the
    /// simulator drains the queue).
    pub completed: usize,
    /// Trace start to last token of the last request.
    pub makespan: Seconds,
    /// Time-to-first-token summary.
    pub ttft: LatencyStats,
    /// Time-per-output-token summary (multi-token requests only).
    pub tpot: LatencyStats,
    /// End-to-end (arrival to last token) summary.
    pub e2e: LatencyStats,
    /// The SLO the run was scored against.
    pub slo: SloConfig,
    /// Fraction of completed requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second of makespan.
    pub goodput_rps: f64,
    /// All completions per second of makespan.
    pub throughput_rps: f64,
    /// Generated tokens per second of makespan (all replicas).
    pub tokens_per_sec: f64,
    /// Prefill iterations across all replicas.
    pub prefill_steps: u64,
    /// Decode iterations across all replicas.
    pub decode_steps: u64,
    /// Time-weighted mean waiting-queue depth: total depth×time area
    /// over total simulated replica-time, so a long prefill stall
    /// weighs by its duration instead of counting as one sample.
    pub mean_queue_depth: f64,
    /// Deepest waiting queue observed at any instant.
    pub max_queue_depth: usize,
    /// `(time, waiting)` depth *transitions* (unchanged depths are not
    /// re-logged), all replicas interleaved in time order.
    pub queue_depth: Vec<(Seconds, usize)>,
    /// Simulation-kernel events fired across all replica timelines
    /// (arrivals + step completions).
    pub sim_events: u64,
    /// Largest future-event heap any replica's kernel held at once —
    /// the memory-pressure proxy matching `sim_events`' throughput one.
    pub peak_event_queue_len: usize,
    /// Plan-cache hits/misses incurred by this run alone.
    pub cache: CacheStats,
    /// Per-request timelines, in trace order.
    pub outcomes: Vec<RequestOutcome>,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} requests over {} replica(s), makespan {:.3} s",
            self.design,
            self.requests,
            self.replicas,
            self.makespan.as_secs()
        )?;
        writeln!(f, "  TTFT  {}", self.ttft)?;
        writeln!(f, "  TPOT  {}", self.tpot)?;
        writeln!(f, "  E2E   {}", self.e2e)?;
        writeln!(
            f,
            "  goodput {:.2} req/s of {:.2} req/s ({:.1}% within SLO ttft<={:.0}ms tpot<={:.1}ms)",
            self.goodput_rps,
            self.throughput_rps,
            self.slo_attainment * 100.0,
            self.slo.ttft.as_millis(),
            self.slo.tpot.as_millis()
        )?;
        writeln!(
            f,
            "  {:.0} tok/s | {} prefill + {} decode steps | {} sim events (peak heap {}) | queue mean {:.1} max {}",
            self.tokens_per_sec,
            self.prefill_steps,
            self.decode_steps,
            self.sim_events,
            self.peak_event_queue_len,
            self.mean_queue_depth,
            self.max_queue_depth
        )?;
        write!(
            f,
            "  plan cache: {} hits / {} misses ({:.0}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_and_complete() {
        let r = ServingReport {
            design: Design::ElkFull,
            replicas: 2,
            requests: 10,
            completed: 10,
            makespan: Seconds::new(1.25),
            ttft: LatencyStats::of(&[Seconds::from_millis(10.0)]),
            tpot: LatencyStats::of(&[Seconds::from_millis(5.0)]),
            e2e: LatencyStats::of(&[Seconds::from_millis(50.0)]),
            slo: SloConfig::default(),
            slo_attainment: 0.9,
            goodput_rps: 7.2,
            throughput_rps: 8.0,
            tokens_per_sec: 123.0,
            prefill_steps: 4,
            decode_steps: 20,
            mean_queue_depth: 1.5,
            max_queue_depth: 3,
            queue_depth: vec![],
            sim_events: 34,
            peak_event_queue_len: 9,
            cache: CacheStats { hits: 3, misses: 1 },
            outcomes: vec![],
        };
        let s = r.to_string();
        assert!(s.contains("ELK-Full"));
        assert!(s.contains("goodput 7.20 req/s"));
        assert!(s.contains("34 sim events (peak heap 9)"));
        assert!(s.contains("75% hit rate"));
        assert_eq!(s, r.to_string(), "Display must be deterministic");
    }
}
