//! Request routing across replica groups.
//!
//! The base [`ServingSim`](crate::ServingSim) pre-partitions its trace
//! round-robin so replicas can simulate independently. Cluster-level
//! serving (the `elk-cluster` crate) routes **dynamically** instead:
//! each arrival is dispatched by a [`Router`] that can observe how many
//! requests every replica group currently has outstanding. Three
//! policies are provided:
//!
//! * **round-robin** — ignore load, cycle through the groups;
//! * **least-outstanding** — pick the group with the fewest queued +
//!   in-flight requests (ties to the lowest index);
//! * **power-of-two-choices** — sample two groups with a seeded
//!   deterministic RNG and keep the less loaded one: most of the benefit
//!   of least-outstanding with O(1) observed state.
//!
//! Every policy is fully deterministic — same seed, same arrivals, same
//! decisions — which is what keeps cluster serving byte-identical at any
//! thread count.
//!
//! # Examples
//!
//! ```
//! use elk_serve::{Router, RouterPolicy};
//!
//! let mut rr = Router::new(RouterPolicy::RoundRobin, 3);
//! assert_eq!(rr.route(&[0, 0, 0]), 0);
//! assert_eq!(rr.route(&[9, 0, 0]), 1); // round-robin ignores load
//!
//! let mut lo = Router::new(RouterPolicy::LeastOutstanding, 3);
//! assert_eq!(lo.route(&[2, 1, 5]), 1);
//! ```

use std::fmt;

use elk_sim_core::SimRng;
use serde::{Deserialize, Serialize};

/// The dispatch policy of a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through the groups regardless of load.
    RoundRobin,
    /// Send each arrival to the group with the fewest outstanding
    /// requests (ties broken toward the lowest index).
    LeastOutstanding,
    /// Sample two groups with a seeded kernel RNG and pick the less
    /// loaded (ties toward the lower index of the pair).
    PowerOfTwoChoices {
        /// RNG seed; the same seed replays the same choice sequence.
        seed: u64,
    },
}

impl RouterPolicy {
    /// All policies, with the default power-of-two seed — the cluster
    /// scenarios' comparison order.
    #[must_use]
    pub fn all() -> [RouterPolicy; 3] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::PowerOfTwoChoices { seed: 2 },
        ]
    }

    /// Canonical lowercase name (`round_robin`, `least_outstanding`,
    /// `power_of_two`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round_robin",
            RouterPolicy::LeastOutstanding => "least_outstanding",
            RouterPolicy::PowerOfTwoChoices { .. } => "power_of_two",
        }
    }
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterPolicy::PowerOfTwoChoices { seed } => write!(f, "power_of_two(seed={seed})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Stateful dispatcher: one [`route`](Router::route) call per arrival.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RouterPolicy,
    groups: usize,
    /// Round-robin cursor.
    next: usize,
    /// Power-of-two seeded stream (the kernel's [`SimRng`]).
    rng: SimRng,
}

impl Router {
    /// A router over `groups` replica groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    #[must_use]
    pub fn new(policy: RouterPolicy, groups: usize) -> Self {
        assert!(groups > 0, "router needs at least one group");
        let seed = match policy {
            RouterPolicy::PowerOfTwoChoices { seed } => seed,
            _ => 0,
        };
        Router {
            policy,
            groups,
            next: 0,
            rng: SimRng::new(seed),
        }
    }

    /// The policy this router runs.
    #[must_use]
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the group for the next arrival. `outstanding[g]` is group
    /// `g`'s queued + in-flight request count at the arrival instant;
    /// its length must equal the router's group count.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding.len()` differs from the group count.
    pub fn route(&mut self, outstanding: &[usize]) -> usize {
        assert_eq!(
            outstanding.len(),
            self.groups,
            "outstanding snapshot does not match the router's group count"
        );
        match self.policy {
            RouterPolicy::RoundRobin => {
                let pick = self.next;
                self.next = (self.next + 1) % self.groups;
                pick
            }
            RouterPolicy::LeastOutstanding => outstanding
                .iter()
                .enumerate()
                .min_by_key(|&(i, &n)| (n, i))
                .map(|(i, _)| i)
                .expect("at least one group"),
            RouterPolicy::PowerOfTwoChoices { .. } => {
                let a = self.rng.gen_index(self.groups);
                let b = self.rng.gen_index(self.groups);
                // Less loaded wins; ties to the lower index.
                if (outstanding[b], b) < (outstanding[a], a) {
                    b
                } else {
                    a
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 3);
        let picks: Vec<usize> = (0..7).map(|_| r.route(&[9, 9, 9])).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_outstanding_tracks_load_with_index_ties() {
        let mut r = Router::new(RouterPolicy::LeastOutstanding, 4);
        assert_eq!(r.route(&[3, 1, 1, 2]), 1, "tie goes to the lower index");
        assert_eq!(r.route(&[0, 1, 1, 2]), 0);
        assert_eq!(r.route(&[5, 5, 5, 4]), 3);
    }

    #[test]
    fn power_of_two_is_seed_deterministic_and_load_aware() {
        let seq = |seed: u64, outstanding: &[usize]| -> Vec<usize> {
            let mut r = Router::new(RouterPolicy::PowerOfTwoChoices { seed }, outstanding.len());
            (0..32).map(|_| r.route(outstanding)).collect()
        };
        assert_eq!(seq(7, &[0, 0, 0, 0]), seq(7, &[0, 0, 0, 0]));
        assert_ne!(
            seq(7, &[0, 0, 0, 0]),
            seq(8, &[0, 0, 0, 0]),
            "different seeds explore differently"
        );
        // With one group drowning, p2c should mostly avoid it.
        let picks = seq(7, &[100, 0, 0, 0]);
        let drowned = picks.iter().filter(|&&p| p == 0).count();
        assert!(
            drowned < picks.len() / 2,
            "p2c sent {drowned}/32 to the hot group"
        );
        // Seed zero is valid (splitmix64 has no bad seeds).
        let _ = seq(0, &[0, 0]);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RouterPolicy::RoundRobin.name(), "round_robin");
        assert_eq!(RouterPolicy::LeastOutstanding.name(), "least_outstanding");
        assert_eq!(
            RouterPolicy::PowerOfTwoChoices { seed: 3 }.name(),
            "power_of_two"
        );
        assert_eq!(RouterPolicy::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = Router::new(RouterPolicy::RoundRobin, 0);
    }

    #[test]
    #[should_panic(expected = "group count")]
    fn mismatched_snapshot_rejected() {
        let mut r = Router::new(RouterPolicy::LeastOutstanding, 2);
        let _ = r.route(&[1, 2, 3]);
    }
}
