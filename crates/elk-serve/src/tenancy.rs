//! Multi-tenant serving support: SLO classes, per-tenant token-bucket
//! admission, load-shed policy knobs, and fairness metrics.
//!
//! This module holds the *policy* types; the engines (notably
//! `elk-cluster`'s `TenantServingSim`) consume them. A tenant maps to a
//! [`TenantClass`] carrying its own latency SLO, a scheduling priority
//! that feeds the kernel's event ordering, an optional per-tenant rate
//! limit, an optional model alias (several models can share one pod —
//! the plan cache keys on the model name), and a `sheddable` flag that
//! opts the class into load shedding under queue pressure.
//!
//! Everything here is deterministic: the token bucket refills lazily
//! from simulated timestamps and the fairness index is a pure fold, so
//! engines built on these types keep their byte-identical-report
//! contract.

use serde::{Deserialize, Serialize};

use elk_units::Seconds;

use crate::metrics::{LatencyStats, SloConfig};

/// Largest admissible [`TenantClass::priority`]. Engines reserve the
/// priority band above this for their own completion events, so class
/// priorities can never reorder an arrival past a step completion.
pub const MAX_CLASS_PRIORITY: u8 = 63;

/// One SLO class: the service contract a set of tenants is held to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantClass {
    /// Class name, referenced by [`TenancyConfig::tenants`].
    pub name: String,
    /// Kernel scheduling priority for this class's arrivals: lower
    /// fires first at equal timestamps. Must be `<=`
    /// [`MAX_CLASS_PRIORITY`]; within a class FIFO order is preserved.
    pub priority: u8,
    /// Latency SLO this class's goodput is scored against.
    pub slo: SloConfig,
    /// Token-bucket refill rate in requests/second; `None` disables
    /// rate limiting for the class.
    pub rate_rps: Option<f64>,
    /// Token-bucket capacity (burst size) when rate-limited, `>= 1`.
    pub burst: u64,
    /// Optional model-zoo alias this class is served by; `None` means
    /// the pod's base model. Distinct aliases genuinely coexist on one
    /// pod because compiled-plan cache keys carry the model name.
    pub model: Option<String>,
    /// Whether the load shedder may reject/defer this class when the
    /// time-weighted queue depth crosses the threshold. Premium classes
    /// set this `false`.
    pub sheddable: bool,
}

impl TenantClass {
    /// A permissive class: priority 0, default SLO, no rate limit, base
    /// model, not sheddable.
    #[must_use]
    pub fn named(name: &str) -> Self {
        TenantClass {
            name: name.to_string(),
            priority: 0,
            slo: SloConfig::default(),
            rate_rps: None,
            burst: 1,
            model: None,
            sheddable: false,
        }
    }
}

/// What the load shedder does to a sheddable arrival under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Drop the request outright (it never enters any queue).
    Reject,
    /// Re-offer the request once after [`TenancyConfig::defer_s`]; the
    /// retry is served unconditionally (one-shot backpressure).
    Defer,
}

/// Full multi-tenancy policy: classes, the tenant→class map, and the
/// load-shed knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyConfig {
    /// SLO classes, in declaration order (order is meaningful only for
    /// reporting; scheduling uses [`TenantClass::priority`]).
    pub classes: Vec<TenantClass>,
    /// `(tenant id, class name)` pairs; tenants absent from the map
    /// fall back to [`default_class`](Self::default_class).
    pub tenants: Vec<(String, String)>,
    /// Class for unmapped tenants (and for traces without tenant ids).
    pub default_class: String,
    /// Load-shed threshold on the run's time-weighted mean waiting
    /// depth (all groups pooled); `None` disables shedding.
    pub shed_queue_depth: Option<f64>,
    /// What happens to sheddable arrivals past the threshold.
    pub shed_policy: ShedPolicy,
    /// Defer delay in seconds for [`ShedPolicy::Defer`].
    pub defer_s: f64,
}

impl Default for TenancyConfig {
    /// One permissive `"default"` class, no rate limits, no shedding —
    /// behaviorally identical to running without tenancy.
    fn default() -> Self {
        TenancyConfig {
            classes: vec![TenantClass::named("default")],
            tenants: Vec::new(),
            default_class: "default".to_string(),
            shed_queue_depth: None,
            shed_policy: ShedPolicy::Reject,
            defer_s: 0.05,
        }
    }
}

impl TenancyConfig {
    /// Index into [`classes`](Self::classes) serving `tenant`.
    ///
    /// # Panics
    ///
    /// Panics when the config is invalid (unknown default class); run
    /// [`validate`](Self::validate) first.
    #[must_use]
    pub fn class_index_of(&self, tenant: &str) -> usize {
        let name = self
            .tenants
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(self.default_class.as_str(), |(_, c)| c.as_str());
        self.classes
            .iter()
            .position(|c| c.name == name)
            .expect("validated: class names resolve")
    }

    /// The class serving `tenant` (map hit or the default class).
    #[must_use]
    pub fn class_of(&self, tenant: &str) -> &TenantClass {
        &self.classes[self.class_index_of(tenant)]
    }

    /// Checks structural consistency, returning the first problem as a
    /// message: non-empty unique classes, priorities within
    /// [`MAX_CLASS_PRIORITY`], positive rates with `burst >= 1`, the
    /// default class and every mapped class resolvable, unique tenant
    /// ids, and shed knobs positive.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("tenancy needs at least one class".to_string());
        }
        for (i, c) in self.classes.iter().enumerate() {
            if c.name.is_empty() {
                return Err(format!("class {i} has an empty name"));
            }
            if self.classes[..i].iter().any(|p| p.name == c.name) {
                return Err(format!("duplicate class name {:?}", c.name));
            }
            if c.priority > MAX_CLASS_PRIORITY {
                return Err(format!(
                    "class {:?} priority {} exceeds the max {MAX_CLASS_PRIORITY}",
                    c.name, c.priority
                ));
            }
            match c.rate_rps {
                Some(r) if !(r.is_finite() && r > 0.0) => {
                    return Err(format!("class {:?} rate_rps must be > 0, got {r}", c.name));
                }
                Some(_) if c.burst == 0 => {
                    return Err(format!("class {:?} burst must be >= 1", c.name));
                }
                _ => {}
            }
            if let Some(m) = &c.model {
                if m.is_empty() {
                    return Err(format!("class {:?} model alias is empty", c.name));
                }
            }
        }
        if !self.classes.iter().any(|c| c.name == self.default_class) {
            return Err(format!("unknown default class {:?}", self.default_class));
        }
        for (i, (tenant, class)) in self.tenants.iter().enumerate() {
            if tenant.is_empty() {
                return Err(format!("tenant mapping {i} has an empty tenant id"));
            }
            if self.tenants[..i].iter().any(|(t, _)| t == tenant) {
                return Err(format!("tenant {tenant:?} mapped twice"));
            }
            if !self.classes.iter().any(|c| &c.name == class) {
                return Err(format!("tenant {tenant:?} maps to unknown class {class:?}"));
            }
        }
        if let Some(d) = self.shed_queue_depth {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("shed_queue_depth must be > 0, got {d}"));
            }
            let defer_ok = self.defer_s.is_finite() && self.defer_s > 0.0;
            if self.shed_policy == ShedPolicy::Defer && !defer_ok {
                return Err(format!("defer_s must be > 0, got {}", self.defer_s));
            }
        }
        Ok(())
    }
}

/// Deterministic token bucket for per-tenant rate limiting.
///
/// The bucket starts full and refills lazily: each
/// [`try_take`](Self::try_take) first credits `rate_rps × elapsed`
/// tokens (capped at the burst capacity), then spends one token if
/// available. Refill happens only from the simulated clock, so replays
/// are exact.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_rps: f64,
    capacity: f64,
    tokens: f64,
    last: Seconds,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_rps` with `burst` capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_rps > 0` and `burst >= 1`.
    #[must_use]
    pub fn new(rate_rps: f64, burst: u64) -> Self {
        assert!(rate_rps > 0.0, "token bucket rate must be > 0");
        assert!(burst >= 1, "token bucket burst must be >= 1");
        TokenBucket {
            rate_rps,
            capacity: burst as f64,
            tokens: burst as f64,
            last: Seconds::ZERO,
        }
    }

    /// Credits elapsed refill up to `now`, then takes one token if the
    /// bucket holds at least one. `now` must not run backwards.
    pub fn try_take(&mut self, now: Seconds) -> bool {
        assert!(now >= self.last, "token bucket clock ran backwards");
        let credited = self.tokens + self.rate_rps * (now - self.last).as_secs();
        self.tokens = credited.min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently held (as of the last [`try_take`](Self::try_take)).
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Jain fairness index over non-negative shares:
/// `(Σx)² / (n · Σx²)`, which is `1` for perfectly equal shares and
/// `1/n` when one share takes everything. Degenerate inputs (empty, or
/// all-zero) score `1.0` — nothing is being divided unfairly.
///
/// # Examples
///
/// ```
/// use elk_serve::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(jain_index(&[]), 1.0);
/// ```
#[must_use]
pub fn jain_index(shares: &[f64]) -> f64 {
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if shares.is_empty() || sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sq)
}

/// Per-tenant slice of a serving report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantReport {
    /// Tenant id from the trace (`"default"` for untagged traces).
    pub tenant: String,
    /// Name of the class the tenant was served under.
    pub class: String,
    /// Requests this tenant offered.
    pub arrivals: usize,
    /// Requests admitted directly (first offer).
    pub admitted: usize,
    /// Requests dropped by the rate limiter or the load shedder.
    pub rejected: usize,
    /// Requests deferred once by the load shedder (they complete, but
    /// only after the defer delay).
    pub deferred: usize,
    /// Requests that ran to completion (`admitted + deferred`).
    pub completed: usize,
    /// Fraction of completions meeting the *class* SLO.
    pub slo_attainment: f64,
    /// Class-SLO-meeting completions per second of run makespan.
    pub goodput_rps: f64,
    /// Time-to-first-token summary over completions.
    pub ttft: LatencyStats,
    /// Time-per-output-token summary (multi-token completions).
    pub tpot: LatencyStats,
    /// End-to-end latency summary over completions.
    pub e2e: LatencyStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_config() -> TenancyConfig {
        TenancyConfig {
            classes: vec![
                TenantClass {
                    rate_rps: Some(100.0),
                    burst: 4,
                    ..TenantClass::named("premium")
                },
                TenantClass {
                    priority: 9,
                    sheddable: true,
                    ..TenantClass::named("best_effort")
                },
            ],
            tenants: vec![("acme".to_string(), "premium".to_string())],
            default_class: "best_effort".to_string(),
            shed_queue_depth: Some(4.0),
            shed_policy: ShedPolicy::Defer,
            defer_s: 0.1,
        }
    }

    #[test]
    fn default_config_is_valid_and_permissive() {
        let c = TenancyConfig::default();
        c.validate().unwrap();
        assert_eq!(c.class_of("anyone").name, "default");
        assert_eq!(c.class_of("anyone").priority, 0);
        assert!(c.class_of("anyone").rate_rps.is_none());
    }

    #[test]
    fn mapped_and_default_lookup() {
        let c = two_class_config();
        c.validate().unwrap();
        assert_eq!(c.class_of("acme").name, "premium");
        assert_eq!(c.class_index_of("acme"), 0);
        assert_eq!(c.class_of("strangers").name, "best_effort");
        assert_eq!(c.class_index_of("strangers"), 1);
    }

    #[test]
    fn validation_catches_each_violation() {
        let cases: Vec<(&str, TenancyConfig)> = vec![
            (
                "at least one class",
                TenancyConfig {
                    classes: vec![],
                    ..TenancyConfig::default()
                },
            ),
            (
                "duplicate class name",
                TenancyConfig {
                    classes: vec![TenantClass::named("a"), TenantClass::named("a")],
                    default_class: "a".to_string(),
                    ..TenancyConfig::default()
                },
            ),
            (
                "exceeds the max",
                TenancyConfig {
                    classes: vec![TenantClass {
                        priority: MAX_CLASS_PRIORITY + 1,
                        ..TenantClass::named("default")
                    }],
                    ..TenancyConfig::default()
                },
            ),
            (
                "rate_rps must be > 0",
                TenancyConfig {
                    classes: vec![TenantClass {
                        rate_rps: Some(0.0),
                        ..TenantClass::named("default")
                    }],
                    ..TenancyConfig::default()
                },
            ),
            (
                "burst must be >= 1",
                TenancyConfig {
                    classes: vec![TenantClass {
                        rate_rps: Some(1.0),
                        burst: 0,
                        ..TenantClass::named("default")
                    }],
                    ..TenancyConfig::default()
                },
            ),
            (
                "unknown default class",
                TenancyConfig {
                    default_class: "nope".to_string(),
                    ..TenancyConfig::default()
                },
            ),
            (
                "maps to unknown class",
                TenancyConfig {
                    tenants: vec![("t".to_string(), "nope".to_string())],
                    ..TenancyConfig::default()
                },
            ),
            (
                "mapped twice",
                TenancyConfig {
                    tenants: vec![
                        ("t".to_string(), "default".to_string()),
                        ("t".to_string(), "default".to_string()),
                    ],
                    ..TenancyConfig::default()
                },
            ),
            (
                "shed_queue_depth must be > 0",
                TenancyConfig {
                    shed_queue_depth: Some(0.0),
                    ..TenancyConfig::default()
                },
            ),
            (
                "defer_s must be > 0",
                TenancyConfig {
                    shed_queue_depth: Some(1.0),
                    shed_policy: ShedPolicy::Defer,
                    defer_s: 0.0,
                    ..TenancyConfig::default()
                },
            ),
        ];
        for (needle, cfg) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{needle:?} not in {err:?}");
        }
    }

    #[test]
    fn token_bucket_spends_burst_then_blocks() {
        let mut b = TokenBucket::new(10.0, 3);
        let t = Seconds::ZERO;
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(!b.try_take(t), "burst exhausted at the same instant");
        // 0.1 s at 10 rps refills exactly one token.
        assert!(b.try_take(Seconds::new(0.1)));
        assert!(!b.try_take(Seconds::new(0.1)));
    }

    #[test]
    fn token_bucket_refill_is_monotone_and_capped() {
        let mut b = TokenBucket::new(2.0, 5);
        for _ in 0..5 {
            assert!(b.try_take(Seconds::ZERO));
        }
        let mut last = b.tokens();
        // Without spends, credited tokens never decrease and never
        // exceed the burst capacity.
        for i in 1..=100u32 {
            let now = Seconds::new(f64::from(i) * 0.07);
            let credited = b.tokens + b.rate_rps * (now - b.last).as_secs();
            b.tokens = credited.min(b.capacity);
            b.last = now;
            assert!(b.tokens() >= last - 1e-12, "refill went backwards");
            assert!(b.tokens() <= 5.0 + 1e-12, "refill overflowed the burst");
            last = b.tokens();
        }
        assert!((b.tokens() - 5.0).abs() < 1e-9, "long idle refills to cap");
    }

    #[test]
    #[should_panic(expected = "clock ran backwards")]
    fn token_bucket_rejects_time_travel() {
        let mut b = TokenBucket::new(1.0, 1);
        let _ = b.try_take(Seconds::new(1.0));
        let _ = b.try_take(Seconds::new(0.5));
    }

    #[test]
    fn jain_index_known_values() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        assert!((jain_index(&[2.0, 2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        // Monotone: evening out shares raises the index.
        assert!(jain_index(&[3.0, 1.0]) < jain_index(&[2.5, 1.5]));
    }
}
