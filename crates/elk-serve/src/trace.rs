//! Request traces: synthetic arrival processes and length distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use elk_units::Seconds;

/// One inference request in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique identifier (assigned in arrival order).
    pub id: u64,
    /// Arrival timestamp relative to trace start.
    pub arrival: Seconds,
    /// Prompt (prefill) length in tokens.
    pub prompt_len: u64,
    /// Tokens to generate, counting the one the prefill step produces.
    pub output_len: u64,
}

/// When requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (requests/second).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// On/off-modulated Poisson: within each `period_s`-second window the
    /// first `duty` fraction runs at `burst_factor × rate_rps` and the
    /// remainder at a reduced rate so the long-run mean stays `rate_rps`.
    /// Models diurnal spikes and thundering herds.
    Bursty {
        /// Long-run mean arrival rate in requests per second.
        rate_rps: f64,
        /// Rate multiplier inside a burst (`>= 1`; `burst_factor * duty`
        /// must stay `< 1` so the off-phase rate is positive).
        burst_factor: f64,
        /// Burst cycle length in seconds.
        period_s: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate at time `t` (requests/second).
    #[must_use]
    pub fn rate_at(&self, t: Seconds) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_s,
                duty,
            } => {
                let phase = (t.as_secs() / period_s).fract();
                if phase < duty {
                    rate_rps * burst_factor
                } else {
                    // Balances the burst so the long-run mean is rate_rps.
                    rate_rps * (1.0 - burst_factor * duty) / (1.0 - duty)
                }
            }
        }
    }

    /// Upper bound on [`rate_at`](Self::rate_at) over all times — the
    /// proposal rate for thinning.
    fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                ..
            } => rate_rps * burst_factor,
        }
    }

    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "arrival rate must be > 0");
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_s,
                duty,
            } => {
                assert!(rate_rps > 0.0, "arrival rate must be > 0");
                assert!(burst_factor >= 1.0, "burst_factor must be >= 1");
                assert!(period_s > 0.0, "period must be > 0");
                assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
                assert!(
                    burst_factor * duty < 1.0,
                    "burst_factor * duty must be < 1 (off-phase rate would be <= 0)"
                );
            }
        }
    }
}

/// Distribution of a per-request token count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every request draws the same length.
    Fixed(u64),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest length.
        lo: u64,
        /// Largest length.
        hi: u64,
    },
    /// Two-population mix: chat-style short requests plus a long tail of
    /// document-scale ones.
    Bimodal {
        /// Short-population range, inclusive.
        short: (u64, u64),
        /// Long-population range, inclusive.
        long: (u64, u64),
        /// Probability of drawing from the long population.
        long_weight: f64,
    },
}

impl LengthDist {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            LengthDist::Fixed(n) => n,
            LengthDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LengthDist::Bimodal {
                short,
                long,
                long_weight,
            } => {
                if rng.gen_bool(long_weight) {
                    rng.gen_range(long.0..=long.1)
                } else {
                    rng.gen_range(short.0..=short.1)
                }
            }
        }
    }

    fn validate(&self, what: &str) {
        let ok = match *self {
            LengthDist::Fixed(n) => n > 0,
            LengthDist::Uniform { lo, hi } => lo > 0 && lo <= hi,
            LengthDist::Bimodal {
                short,
                long,
                long_weight,
            } => {
                short.0 > 0
                    && short.0 <= short.1
                    && long.0 > 0
                    && long.0 <= long.1
                    && (0.0..=1.0).contains(&long_weight)
            }
        };
        assert!(ok, "invalid {what} length distribution: {self:?}");
    }
}

/// Recipe for a synthetic trace; fully determined by its `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed — the same config and seed always produce the identical
    /// trace.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Prompt-length distribution.
    pub prompt_len: LengthDist,
    /// Output-length distribution.
    pub output_len: LengthDist,
}

impl TraceConfig {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the arrival process or a length distribution is
    /// ill-formed (zero lengths, non-positive rates, `burst_factor *
    /// duty >= 1`).
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        self.arrivals.validate();
        self.prompt_len.validate("prompt");
        self.output_len.validate("output");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = Seconds::ZERO;
        let mut requests = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            t = self.next_arrival(t, &mut rng);
            requests.push(Request {
                id,
                arrival: t,
                prompt_len: self.prompt_len.sample(&mut rng),
                output_len: self.output_len.sample(&mut rng),
            });
        }
        RequestTrace { requests }
    }

    /// Draws the first arrival after `t` by Lewis–Shedler thinning:
    /// propose from a homogeneous process at the peak rate, accept with
    /// probability `rate(t) / peak`. Exact for any bounded-rate process
    /// and free of boundary-stepping numerics (a homogeneous process
    /// accepts every proposal).
    fn next_arrival(&self, mut t: Seconds, rng: &mut StdRng) -> Seconds {
        let peak = self.arrivals.peak_rate();
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += Seconds::new(-(1.0 - u).ln() / peak);
            if rng.gen_bool(self.arrivals.rate_at(t) / peak) {
                return t;
            }
        }
    }
}

/// A time-ordered sequence of requests — the simulator's input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Wraps externally produced requests (e.g. parsed from a JSON
    /// trace file), sorting them by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if any request has a zero prompt or output length.
    #[must_use]
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        for r in &requests {
            assert!(
                r.prompt_len > 0 && r.output_len > 0,
                "request {} has a zero-length prompt or output",
                r.id
            );
        }
        requests.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
        RequestTrace { requests }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival time of the last request (`ZERO` for an empty trace).
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.requests.last().map_or(Seconds::ZERO, |r| r.arrival)
    }

    /// Total tokens the trace asks the system to generate.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            requests: 200,
            arrivals: ArrivalProcess::Poisson { rate_rps: 100.0 },
            prompt_len: LengthDist::Uniform { lo: 100, hi: 900 },
            output_len: LengthDist::Fixed(32),
        }
    }

    #[test]
    fn same_seed_same_trace() {
        assert_eq!(poisson_cfg(7).generate(), poisson_cfg(7).generate());
        assert_ne!(
            poisson_cfg(7).generate().requests,
            poisson_cfg(8).generate().requests
        );
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_plausible() {
        let t = poisson_cfg(42).generate();
        assert_eq!(t.len(), 200);
        for w in t.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // 200 requests at 100 rps: mean span 2 s, generous tolerance.
        let span = t.duration().as_secs();
        assert!((0.8..5.0).contains(&span), "span {span} implausible");
    }

    #[test]
    fn bursty_long_run_rate_matches_mean() {
        let cfg = TraceConfig {
            seed: 3,
            requests: 4000,
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 100.0,
                burst_factor: 4.0,
                period_s: 0.5,
                duty: 0.2,
            },
            prompt_len: LengthDist::Fixed(128),
            output_len: LengthDist::Fixed(8),
        };
        let t = cfg.generate();
        let rate = t.len() as f64 / t.duration().as_secs();
        assert!(
            (rate / 100.0 - 1.0).abs() < 0.15,
            "long-run rate {rate} too far from 100"
        );
    }

    #[test]
    fn bursty_rate_modulation() {
        let p = ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_factor: 4.0,
            period_s: 1.0,
            duty: 0.2,
        };
        assert!((p.rate_at(Seconds::new(0.1)) - 400.0).abs() < 1e-9);
        assert!((p.rate_at(Seconds::new(0.5)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bimodal_draws_both_modes() {
        let d = LengthDist::Bimodal {
            short: (10, 20),
            long: (1000, 2000),
            long_weight: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..200).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().any(|&s| s <= 20));
        assert!(samples.iter().any(|&s| s >= 1000));
    }

    #[test]
    fn from_requests_sorts() {
        let t = RequestTrace::from_requests(vec![
            Request {
                id: 1,
                arrival: Seconds::new(2.0),
                prompt_len: 10,
                output_len: 5,
            },
            Request {
                id: 0,
                arrival: Seconds::new(1.0),
                prompt_len: 10,
                output_len: 5,
            },
        ]);
        assert_eq!(t.requests[0].id, 0);
        assert_eq!(t.total_output_tokens(), 10);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_request_rejected() {
        let _ = RequestTrace::from_requests(vec![Request {
            id: 0,
            arrival: Seconds::ZERO,
            prompt_len: 0,
            output_len: 5,
        }]);
    }

    #[test]
    #[should_panic(expected = "burst_factor * duty")]
    fn overdriven_burst_rejected() {
        let cfg = TraceConfig {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 10.0,
                burst_factor: 5.0,
                period_s: 1.0,
                duty: 0.5,
            },
            ..poisson_cfg(0)
        };
        let _ = cfg.generate();
    }
}
