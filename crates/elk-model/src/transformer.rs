use serde::{Deserialize, Serialize};

use elk_units::Bytes;

use crate::{
    DType, LayerSpan, ModelGraph, OpId, OpKind, OpRole, OperandSource, Operator, Phase, ReduceKind,
    UnaryKind, Workload,
};

/// Normalization flavour of a transformer architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    /// RMSNorm (Llama, Gemma).
    Rms,
    /// LayerNorm (OPT, DiT).
    Layer,
}

impl NormKind {
    fn reduce_kind(self) -> ReduceKind {
        match self {
            NormKind::Rms => ReduceKind::RmsNorm,
            NormKind::Layer => ReduceKind::LayerNorm,
        }
    }
}

/// Architecture hyper-parameters of a decoder-only transformer.
///
/// `build` synthesizes the per-chip-shard operator graph the paper's ONNX
/// frontend would extract: heads and FFN columns are split `shards` ways
/// (Megatron-style tensor parallelism), and the row-parallel projections
/// record the all-reduce volume they trigger.
///
/// # Examples
///
/// ```
/// use elk_model::{TransformerConfig, NormKind, Workload};
///
/// let cfg = TransformerConfig {
///     name: "toy".into(),
///     layers: 2,
///     hidden: 256,
///     heads: 8,
///     kv_heads: 8,
///     head_dim: 32,
///     intermediate: 1024,
///     vocab: 1000,
///     glu: true,
///     norm: NormKind::Rms,
///     rope: true,
///     post_norms: false,
/// };
/// let g = cfg.build(Workload::decode(4, 128), 1);
/// assert_eq!(g.layer_spans().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Model name.
    pub name: String,
    /// Number of transformer layers.
    pub layers: u32,
    /// Model (embedding) dimension.
    pub hidden: u64,
    /// Query heads.
    pub heads: u64,
    /// Key/value heads (`< heads` for grouped-query attention).
    pub kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// FFN intermediate dimension.
    pub intermediate: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Gated FFN (SwiGLU) vs plain two-matrix FFN.
    pub glu: bool,
    /// Normalization flavour.
    pub norm: NormKind,
    /// Rotary positional embeddings.
    pub rope: bool,
    /// Post-attention / post-FFN norms (Gemma-2).
    pub post_norms: bool,
}

impl TransformerConfig {
    /// Approximate parameter count of the full (un-sharded) model.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = self.hidden;
        let qkv = h * (self.heads + 2 * self.kv_heads) * self.head_dim;
        let out = self.heads * self.head_dim * h;
        let ffn = if self.glu {
            3 * h * self.intermediate
        } else {
            2 * h * self.intermediate
        };
        let per_layer = qkv + out + ffn;
        self.layers as u64 * per_layer + 2 * self.vocab * h
    }

    /// Builds the per-shard operator graph for `workload` running
    /// tensor-parallel over `shards` chips.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or does not divide `heads`, `kv_heads`
    /// (unless `kv_heads < shards`, in which case KV is replicated), or
    /// `intermediate`.
    #[must_use]
    pub fn build(&self, workload: Workload, shards: u64) -> ModelGraph {
        assert!(shards > 0, "shard count must be > 0");
        assert!(
            self.heads.is_multiple_of(shards),
            "heads ({}) must divide by shards ({shards})",
            self.heads
        );
        assert!(
            self.intermediate.is_multiple_of(shards),
            "intermediate ({}) must divide by shards ({shards})",
            self.intermediate
        );

        let mut b = GraphBuilder::new(self, workload, shards);
        b.embed();
        for layer in 0..self.layers {
            b.layer(layer);
        }
        b.head();
        b.finish(self.name.clone())
    }

    /// Builds the operator graph of **one pipeline stage**: the layers in
    /// `layers` (absolute indices), tensor-parallel over `shards` chips,
    /// with the embedding prologue when `embed` is set and the final
    /// norm + LM head when `head` is set. Concatenating every stage of a
    /// partition reproduces [`build`](Self::build) operator for operator
    /// — the invariant the cluster planner's tests pin.
    ///
    /// # Panics
    ///
    /// Panics on the same shard-divisibility violations as
    /// [`build`](Self::build), on an out-of-range layer window, or on an
    /// empty stage (no layers, no embedding, no head).
    #[must_use]
    pub fn build_stage(
        &self,
        workload: Workload,
        shards: u64,
        layers: std::ops::Range<u32>,
        embed: bool,
        head: bool,
    ) -> ModelGraph {
        assert!(shards > 0, "shard count must be > 0");
        assert!(
            self.heads.is_multiple_of(shards),
            "heads ({}) must divide by shards ({shards})",
            self.heads
        );
        assert!(
            self.intermediate.is_multiple_of(shards),
            "intermediate ({}) must divide by shards ({shards})",
            self.intermediate
        );
        assert!(
            layers.end <= self.layers && layers.start <= layers.end,
            "stage layers {layers:?} out of range for a {}-layer model",
            self.layers
        );
        assert!(
            embed || head || !layers.is_empty(),
            "a pipeline stage must contain at least one operator"
        );

        let mut b = GraphBuilder::new(self, workload, shards);
        if embed {
            b.embed();
        }
        for layer in layers.clone() {
            b.layer(layer);
        }
        if head {
            b.head();
        }
        b.finish(format!(
            "{}[l{}..{}{}{}]",
            self.name,
            layers.start,
            layers.end,
            if embed { "+embed" } else { "" },
            if head { "+head" } else { "" },
        ))
    }
}

/// Incremental graph assembly shared by the LLM and DiT builders.
pub(crate) struct GraphBuilder<'a> {
    cfg: &'a TransformerConfig,
    wl: Workload,
    shards: u64,
    dtype: DType,
    ops: Vec<Operator>,
    layers: Vec<LayerSpan>,
}

impl<'a> GraphBuilder<'a> {
    fn new(cfg: &'a TransformerConfig, wl: Workload, shards: u64) -> Self {
        GraphBuilder {
            cfg,
            wl,
            shards,
            dtype: DType::F16,
            ops: Vec::new(),
            layers: Vec::new(),
        }
    }

    /// Tokens flowing through row dimensions this step.
    fn tokens(&self) -> u64 {
        self.wl.tokens_in_flight()
    }

    /// Query heads per shard.
    fn heads_s(&self) -> u64 {
        self.cfg.heads / self.shards
    }

    /// KV heads per shard (replicated when there are fewer KV heads than
    /// shards, as real GQA tensor-parallel deployments do).
    fn kv_heads_s(&self) -> u64 {
        (self.cfg.kv_heads / self.shards).max(1)
    }

    fn push(&mut self, op: Operator) {
        self.ops.push(op);
    }

    fn weight_matmul(
        &mut self,
        name: String,
        role: OpRole,
        layer: Option<u32>,
        m: u64,
        k: u64,
        n: u64,
    ) -> usize {
        let w = self.dtype.bytes_for(k * n);
        self.push(Operator::new(
            OpId(0),
            name,
            role,
            layer,
            OpKind::MatMul { m, k, n },
            self.dtype,
            OperandSource::HbmWeight,
            w,
        ));
        self.ops.len() - 1
    }

    fn norm(&mut self, name: String, role: OpRole, layer: Option<u32>, rows: u64, cols: u64) {
        self.push(Operator::new(
            OpId(0),
            name,
            role,
            layer,
            OpKind::RowReduce {
                rows,
                cols,
                kind: self.cfg.norm.reduce_kind(),
            },
            self.dtype,
            OperandSource::HbmWeight,
            self.dtype.bytes_for(cols), // scale (and shift) vector
        ));
    }

    fn elementwise(
        &mut self,
        name: String,
        role: OpRole,
        layer: Option<u32>,
        elems: u64,
        arity: u64,
        kind: UnaryKind,
    ) {
        self.push(Operator::new(
            OpId(0),
            name,
            role,
            layer,
            OpKind::Elementwise { elems, arity, kind },
            self.dtype,
            OperandSource::None,
            Bytes::ZERO,
        ));
    }

    fn embed(&mut self) {
        let h = self.cfg.hidden;
        self.push(Operator::new(
            OpId(0),
            "embed".to_string(),
            OpRole::Embed,
            None,
            OpKind::Gather {
                rows: self.tokens(),
                width: h,
                table_rows: self.cfg.vocab / self.shards,
            },
            self.dtype,
            OperandSource::HbmWeight,
            self.dtype.bytes_for(self.cfg.vocab / self.shards * h),
        ));
    }

    fn layer(&mut self, layer: u32) {
        let start = self.ops.len();
        let cfg = self.cfg;
        let t = self.tokens();
        let h = cfg.hidden;
        let d = cfg.head_dim;
        let hs = self.heads_s();
        let kvs = self.kv_heads_s();
        let s = self.wl.seq_len;
        let l = layer;
        let pfx = |op: &str| format!("l{l}.{op}");

        // --- attention ---
        self.norm(pfx("attn_norm"), OpRole::AttnNorm, Some(l), t, h);
        self.weight_matmul(
            pfx("attn_qkv"),
            OpRole::AttnQkv,
            Some(l),
            t,
            h,
            (hs + 2 * kvs) * d,
        );
        if cfg.rope {
            self.elementwise(
                pfx("rope"),
                OpRole::Rope,
                Some(l),
                t * (hs + kvs) * d,
                1,
                UnaryKind::Rope,
            );
        }

        if self.wl.phase.reads_kv_cache() {
            // Decode: append the new K/V token, then attend over the cached
            // sequence read from HBM.
            let kv_new = self.dtype.bytes_for(self.wl.batch * 2 * kvs * d);
            let append = Operator::new(
                OpId(0),
                pfx("kv_append"),
                OpRole::KvAppend,
                Some(l),
                OpKind::Elementwise {
                    elems: self.wl.batch * 2 * kvs * d,
                    arity: 1,
                    kind: UnaryKind::Copy,
                },
                self.dtype,
                OperandSource::None,
                Bytes::ZERO,
            )
            .with_hbm_store(kv_new);
            self.push(append);

            let kv_slice = self.dtype.bytes_for(self.wl.batch * kvs * d * s);
            self.push(Operator::new(
                OpId(0),
                pfx("attn_scores"),
                OpRole::AttnScores,
                Some(l),
                OpKind::BatchMatMul {
                    batch: self.wl.batch * hs,
                    m: 1,
                    k: d,
                    n: s,
                },
                self.dtype,
                OperandSource::HbmKvCache,
                kv_slice,
            ));
            self.push(Operator::new(
                OpId(0),
                pfx("attn_softmax"),
                OpRole::AttnSoftmax,
                Some(l),
                OpKind::RowReduce {
                    rows: self.wl.batch * hs,
                    cols: s,
                    kind: ReduceKind::Softmax,
                },
                self.dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            self.push(Operator::new(
                OpId(0),
                pfx("attn_context"),
                OpRole::AttnContext,
                Some(l),
                OpKind::BatchMatMul {
                    batch: self.wl.batch * hs,
                    m: 1,
                    k: s,
                    n: d,
                },
                self.dtype,
                OperandSource::HbmKvCache,
                kv_slice,
            ));
        } else {
            // Prefill / training: full self-attention over on-chip K/V.
            let store = if self.wl.phase == Phase::Prefill {
                self.dtype.bytes_for(self.wl.batch * 2 * kvs * d * s)
            } else {
                Bytes::ZERO
            };
            let scores_kv = self.dtype.bytes_for(self.wl.batch * kvs * d * s);
            let scores = Operator::new(
                OpId(0),
                pfx("attn_scores"),
                OpRole::AttnScores,
                Some(l),
                OpKind::BatchMatMul {
                    batch: self.wl.batch * hs,
                    m: s,
                    k: d,
                    n: s,
                },
                self.dtype,
                OperandSource::OnChip,
                scores_kv,
            )
            .with_hbm_store(store);
            self.push(scores);
            self.push(Operator::new(
                OpId(0),
                pfx("attn_softmax"),
                OpRole::AttnSoftmax,
                Some(l),
                OpKind::RowReduce {
                    rows: self.wl.batch * hs * s,
                    cols: s,
                    kind: ReduceKind::Softmax,
                },
                self.dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            self.push(Operator::new(
                OpId(0),
                pfx("attn_context"),
                OpRole::AttnContext,
                Some(l),
                OpKind::BatchMatMul {
                    batch: self.wl.batch * hs,
                    m: s,
                    k: s,
                    n: d,
                },
                self.dtype,
                OperandSource::OnChip,
                scores_kv,
            ));
        }

        let i = self.weight_matmul(pfx("attn_out"), OpRole::AttnOut, Some(l), t, hs * d, h);
        // Row-parallel projection: partial sums reduced across chips.
        let allreduce = self.dtype.bytes_for(t * h);
        self.ops[i] = self.ops[i].clone().with_allreduce(allreduce);

        if cfg.post_norms {
            self.norm(pfx("post_attn_norm"), OpRole::PostNorm, Some(l), t, h);
        }
        self.elementwise(
            pfx("attn_residual"),
            OpRole::Residual,
            Some(l),
            t * h,
            2,
            UnaryKind::Add,
        );

        // --- FFN ---
        self.norm(pfx("mlp_norm"), OpRole::MlpNorm, Some(l), t, h);
        let i_s = cfg.intermediate / self.shards;
        let up_cols = if cfg.glu { 2 * i_s } else { i_s };
        self.weight_matmul(pfx("mlp_up"), OpRole::MlpUp, Some(l), t, h, up_cols);
        self.elementwise(
            pfx("mlp_act"),
            OpRole::MlpAct,
            Some(l),
            t * i_s,
            if cfg.glu { 2 } else { 1 },
            if cfg.glu {
                UnaryKind::Silu
            } else {
                UnaryKind::Gelu
            },
        );
        let i = self.weight_matmul(pfx("mlp_down"), OpRole::MlpDown, Some(l), t, i_s, h);
        self.ops[i] = self.ops[i].clone().with_allreduce(allreduce);

        if cfg.post_norms {
            self.norm(pfx("post_mlp_norm"), OpRole::PostNorm, Some(l), t, h);
        }
        self.elementwise(
            pfx("mlp_residual"),
            OpRole::Residual,
            Some(l),
            t * h,
            2,
            UnaryKind::Add,
        );

        self.layers.push(LayerSpan {
            layer,
            ops: start..self.ops.len(),
        });
    }

    fn head(&mut self) {
        let t = self.tokens();
        let h = self.cfg.hidden;
        self.norm("final_norm".to_string(), OpRole::FinalNorm, None, t, h);
        self.weight_matmul(
            "lm_head".to_string(),
            OpRole::LmHead,
            None,
            t,
            h,
            self.cfg.vocab / self.shards,
        );
    }

    fn finish(self, name: String) -> ModelGraph {
        ModelGraph::new(name, self.wl, self.shards, self.ops, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn llama_layer_structure_repeats() {
        let g = zoo::llama2_13b().build(Workload::decode(8, 512), 4);
        let spans = g.layer_spans();
        assert_eq!(spans.len(), 40);
        let width = spans[0].ops.len();
        for s in spans {
            assert_eq!(s.ops.len(), width, "layer {} differs", s.layer);
        }
        // Identical layers: same kinds and sizes across layers 0 and 1.
        let (a, b) = (&spans[0], &spans[1]);
        for (x, y) in g.ops()[a.ops.clone()].iter().zip(&g.ops()[b.ops.clone()]) {
            assert_eq!(x.kind(), y.kind());
            assert_eq!(x.stationary_bytes(), y.stationary_bytes());
        }
    }

    #[test]
    fn parameter_count_matches_model_scale() {
        // Published sizes are approximate; accept ±15%.
        for (cfg, nominal) in [
            (zoo::llama2_13b(), 13e9),
            (zoo::llama2_70b(), 70e9),
            (zoo::opt_30b(), 30e9),
            (zoo::gemma2_27b(), 27e9),
        ] {
            let p = cfg.param_count() as f64;
            let ratio = p / nominal;
            assert!(
                (0.8..=1.2).contains(&ratio),
                "{}: {p:.3e} vs nominal {nominal:.1e}",
                cfg.name
            );
        }
    }

    #[test]
    fn sharded_weights_sum_to_full_model() {
        let cfg = zoo::llama2_13b();
        let wl = Workload::decode(4, 128);
        let w4 = cfg.build(wl, 4).weight_bytes();
        let w1 = cfg.build(wl, 1).weight_bytes();
        let ratio = w1.as_f64() / w4.as_f64();
        assert!(
            (3.8..=4.2).contains(&ratio),
            "4-way shard should hold ~1/4 of weights (ratio {ratio})"
        );
    }

    #[test]
    fn decode_reads_kv_cache_training_does_not() {
        let cfg = zoo::llama2_13b();
        let dec = cfg.build(Workload::decode(32, 2048), 4);
        let trn = cfg.build(Workload::training_forward(4, 2048), 4);
        let kv_dec: u64 = dec
            .iter()
            .filter(|o| o.stationary() == OperandSource::HbmKvCache)
            .map(|o| o.hbm_load().get())
            .sum();
        let kv_trn: u64 = trn
            .iter()
            .filter(|o| o.stationary() == OperandSource::HbmKvCache)
            .map(|o| o.hbm_load().get())
            .sum();
        assert!(kv_dec > 0);
        assert_eq!(kv_trn, 0);
        // KV cache K+V per shard: batch*seq*kv_heads_s*dim*2*2B per layer.
        let expect = 32 * 2048 * (40 / 4) * 128 * 2 * 2 * 40;
        assert_eq!(kv_dec, expect);
    }

    #[test]
    fn gqa_loads_less_kv_than_mha() {
        let wl = Workload::decode(32, 2048);
        let mha = zoo::llama2_13b().build(wl, 4); // 40 kv heads
        let gqa = zoo::llama2_70b().build(wl, 4); // 8 kv heads
        let kv = |g: &ModelGraph| {
            g.iter()
                .filter(|o| o.stationary() == OperandSource::HbmKvCache)
                .map(|o| o.hbm_load().get())
                .sum::<u64>() as f64
                / g.layer_spans().len() as f64
        };
        assert!(
            kv(&gqa) < kv(&mha) / 2.0,
            "GQA must load much less KV per layer"
        );
    }

    #[test]
    fn training_is_compute_intensive() {
        let cfg = zoo::llama2_13b();
        let dec = cfg.build(Workload::decode(32, 2048), 4);
        let trn = cfg.build(Workload::training_forward(4, 2048), 4);
        let intensity = |g: &ModelGraph| g.total_flops().get() / g.total_hbm_load().as_f64();
        assert!(intensity(&trn) > 20.0 * intensity(&dec));
    }

    #[test]
    fn stage_concatenation_reproduces_the_full_graph() {
        let cfg = {
            let mut c = zoo::llama2_13b();
            c.layers = 5;
            c
        };
        let wl = Workload::decode(8, 512);
        let full = cfg.build(wl, 4);
        // A 2-stage split: layers 0..3 with the embedding, 3..5 with the
        // head.
        let s0 = cfg.build_stage(wl, 4, 0..3, true, false);
        let s1 = cfg.build_stage(wl, 4, 3..5, false, true);
        assert_eq!(s0.len() + s1.len(), full.len());
        let concat: Vec<_> = s0.ops().iter().chain(s1.ops()).collect();
        for (a, b) in concat.iter().zip(full.ops()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.stationary_bytes(), b.stationary_bytes());
            assert_eq!(a.allreduce(), b.allreduce());
        }
        assert_eq!(s0.layer_spans().len(), 3);
        assert_eq!(s1.layer_spans().len(), 2);
        assert_eq!(s1.layer_spans()[0].layer, 3, "absolute layer indices");
        assert!(s0.name().contains("+embed"));
        assert!(s1.name().contains("+head"));
    }

    #[test]
    fn equal_shaped_interior_stages_are_identical_graphs_up_to_names() {
        let cfg = {
            let mut c = zoo::llama2_13b();
            c.layers = 6;
            c
        };
        let wl = Workload::decode(8, 512);
        let a = cfg.build_stage(wl, 4, 2..4, false, false);
        let b = cfg.build_stage(wl, 4, 2..4, false, false);
        assert_eq!(a, b, "stage building is deterministic");
        let c = cfg.build_stage(wl, 4, 4..6, false, false);
        assert_eq!(a.len(), c.len());
        assert_eq!(a.weight_bytes(), c.weight_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one operator")]
    fn empty_stage_rejected() {
        let cfg = zoo::llama2_13b();
        let _ = cfg.build_stage(Workload::decode(1, 16), 4, 2..2, false, false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stage_rejected() {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        let _ = cfg.build_stage(Workload::decode(1, 16), 4, 1..3, false, false);
    }

    #[test]
    fn allreduce_recorded_on_row_parallel_ops() {
        let g = zoo::llama2_13b().build(Workload::decode(8, 128), 4);
        let n = g.iter().filter(|o| !o.allreduce().is_zero()).count();
        assert_eq!(n, 2 * 40, "attn_out and mlp_down per layer");
    }
}
