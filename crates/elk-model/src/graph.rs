use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use elk_units::{Bytes, Flops};

use crate::{OpId, Operator, Workload};

/// The operator range of one repeated transformer layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpan {
    /// Layer index.
    pub layer: u32,
    /// Operator-index range (half-open) in execution order.
    pub ops: Range<usize>,
}

/// A model's operators in sequential execution order, per chip shard.
///
/// ICCA chips execute one partitioned operator at a time across all cores
/// (§2.2), so the graph is a sequence rather than a DAG: the builders
/// linearize the model in dependency order, exactly like the paper's ONNX
/// frontend does before scheduling.
///
/// # Examples
///
/// ```
/// use elk_model::{zoo, Workload};
///
/// let g = zoo::opt_30b().build(Workload::decode(32, 2048), 4);
/// assert!(g.len() > 500);
/// assert_eq!(g.layer_spans().len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    workload: Workload,
    shards: u64,
    ops: Vec<Operator>,
    layers: Vec<LayerSpan>,
}

impl ModelGraph {
    /// Assembles a graph, re-numbering operators to match execution order.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any layer span is out of bounds.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        workload: Workload,
        shards: u64,
        mut ops: Vec<Operator>,
        layers: Vec<LayerSpan>,
    ) -> Self {
        assert!(shards > 0, "shard count must be > 0");
        for (i, op) in ops.iter_mut().enumerate() {
            op.set_id(OpId(i));
        }
        for span in &layers {
            assert!(
                span.ops.end <= ops.len() && span.ops.start < span.ops.end,
                "layer {} span {:?} out of bounds (n={})",
                span.layer,
                span.ops,
                ops.len()
            );
        }
        ModelGraph {
            name: name.into(),
            workload,
            shards,
            ops,
            layers,
        }
    }

    /// Model name, e.g. `"Llama-2-13B"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload this graph was instantiated for.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Number of tensor-parallel shards (chips) the graph assumes.
    #[must_use]
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the graph has no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operators in execution order.
    #[must_use]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// The operator at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.index()]
    }

    /// Iterates over operators in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operator> {
        self.ops.iter()
    }

    /// Repeated-layer spans in execution order.
    #[must_use]
    pub fn layer_spans(&self) -> &[LayerSpan] {
        &self.layers
    }

    /// Total HBM read volume of one step (per shard).
    #[must_use]
    pub fn total_hbm_load(&self) -> Bytes {
        self.ops.iter().map(Operator::hbm_load).sum()
    }

    /// Total HBM write volume of one step (per shard).
    #[must_use]
    pub fn total_hbm_store(&self) -> Bytes {
        self.ops.iter().map(Operator::hbm_store).sum()
    }

    /// Total floating-point work of one step (per shard).
    #[must_use]
    pub fn total_flops(&self) -> Flops {
        self.ops.iter().map(Operator::flops).sum()
    }

    /// Total parameter bytes (per shard): HBM weights only, excluding
    /// KV cache.
    #[must_use]
    pub fn weight_bytes(&self) -> Bytes {
        self.ops
            .iter()
            .filter(|o| o.stationary() == crate::OperandSource::HbmWeight)
            .map(Operator::stationary_bytes)
            .sum()
    }

    /// The HBM-heavy threshold of §4.4: "for LLM decoding, the average size
    /// is model size divided by operator count" — i.e. weight bytes over
    /// `N`, not total HBM traffic over `N`.
    #[must_use]
    pub fn hbm_heavy_threshold(&self) -> Bytes {
        if self.ops.is_empty() {
            Bytes::ZERO
        } else {
            Bytes::new(self.weight_bytes().get() / self.ops.len() as u64)
        }
    }

    /// `true` if `op` is HBM-heavy (its load volume is above the mean),
    /// making it a preload-reordering candidate (§4.4).
    #[must_use]
    pub fn is_hbm_heavy(&self, id: OpId) -> bool {
        self.op(id).hbm_load() > self.hbm_heavy_threshold()
    }

    /// HBM-heavy operator ids in execution order.
    #[must_use]
    pub fn hbm_heavy_ops(&self) -> Vec<OpId> {
        let thr = self.hbm_heavy_threshold();
        self.ops
            .iter()
            .filter(|o| o.hbm_load() > thr)
            .map(Operator::id)
            .collect()
    }
}

impl<'a> IntoIterator for &'a ModelGraph {
    type Item = &'a Operator;
    type IntoIter = std::slice::Iter<'a, Operator>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({} ops, {} layers, {} weights/shard, {} HBM/step)",
            self.name,
            self.workload,
            self.ops.len(),
            self.layers.len(),
            self.weight_bytes(),
            self.total_hbm_load(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, OpKind, OpRole, OperandSource};

    fn tiny_graph() -> ModelGraph {
        let mk = |n: &str, hbm: u64| {
            Operator::new(
                OpId(0),
                n,
                OpRole::Other,
                Some(0),
                OpKind::MatMul { m: 4, k: 8, n: 8 },
                DType::F16,
                if hbm > 0 {
                    OperandSource::HbmWeight
                } else {
                    OperandSource::OnChip
                },
                Bytes::new(hbm.max(128)),
            )
        };
        ModelGraph::new(
            "tiny",
            Workload::decode(1, 16),
            1,
            vec![mk("a", 1000), mk("b", 0), mk("c", 4000)],
            vec![LayerSpan {
                layer: 0,
                ops: 0..3,
            }],
        )
    }

    #[test]
    fn renumbers_ids() {
        let g = tiny_graph();
        for (i, op) in g.iter().enumerate() {
            assert_eq!(op.id(), OpId(i));
        }
    }

    #[test]
    fn hbm_accounting_skips_onchip() {
        let g = tiny_graph();
        assert_eq!(g.total_hbm_load(), Bytes::new(5000));
        assert_eq!(g.weight_bytes(), Bytes::new(5000));
    }

    #[test]
    fn heavy_classification_uses_mean() {
        let g = tiny_graph();
        // mean = 5000/3 = 1666; only "c" (4000) is above.
        assert_eq!(g.hbm_heavy_ops(), vec![OpId(2)]);
        assert!(!g.is_hbm_heavy(OpId(1)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_layer_span_rejected() {
        let g = tiny_graph();
        let _ = ModelGraph::new(
            "bad",
            g.workload(),
            1,
            g.ops().to_vec(),
            vec![LayerSpan {
                layer: 0,
                ops: 0..9,
            }],
        );
    }
}
