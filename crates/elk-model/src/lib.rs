//! Deep-learning model graphs for the Elk compiler framework.
//!
//! The paper's Elk frontend ingests PyTorch models through ONNX (§5). This
//! workspace has no ONNX ecosystem, so the crate *synthesizes* operator
//! graphs directly from published architecture hyper-parameters — which is
//! exactly the information Elk extracts from an ONNX graph: operator types,
//! tensor shapes, HBM-resident operand sizes, and the sequential execution
//! order.
//!
//! Graphs are built **per chip shard**: a multi-chip ICCA system runs tensor
//! parallelism (heads and FFN columns split across chips, §5 emulation
//! framework), so the compiler plans one chip's shard and records the
//! all-reduce volume each row-parallel operator requires.
//!
//! ```
//! use elk_model::{zoo, Phase, Workload};
//!
//! let wl = Workload::decode(32, 2048);
//! let graph = zoo::llama2_13b().build(wl, 4); // 4-way tensor parallel
//! assert_eq!(graph.workload().phase, Phase::Decode);
//! assert!(graph.total_hbm_load().get() > 0);
//! ```

#![warn(missing_docs)]

mod bucket;
mod dtype;
mod graph;
mod op;
mod stats;
mod transformer;
mod workload;

pub mod dit;
pub mod moe;
pub mod zoo;

pub use bucket::{pow2_at_least, SeqBuckets};
pub use dtype::DType;
pub use graph::{LayerSpan, ModelGraph};
pub use op::{OpId, OpKind, OpRole, OperandSource, Operator, ReduceKind, UnaryKind};
pub use stats::GraphStats;
pub use transformer::{NormKind, TransformerConfig};
pub use workload::{Phase, Workload};
