//! Mixture-of-experts graphs (§7 "Apply Elk to MoE").
//!
//! At compile time all experts share one shape, so Elk plans a *generic
//! expert* (§7): each MoE layer emits a router operator followed by
//! `experts_per_token` expert-FFN instances, each loading one expert's
//! weights from HBM. At run time the chip binds the actual expert indices
//! when the preload is issued — which works precisely because Elk's
//! scheduler places preloads as late as the overlap windows allow (§4.2),
//! keeping expert preloads close to (and after) the routing decision.

use serde::{Deserialize, Serialize};

use elk_units::Bytes;

use crate::{
    DType, LayerSpan, ModelGraph, NormKind, OpId, OpKind, OpRole, OperandSource, Operator,
    ReduceKind, UnaryKind, Workload,
};

/// Architecture hyper-parameters of a decoder-only MoE transformer
/// (Mixtral-style: top-k routing over dense SwiGLU experts).
///
/// # Examples
///
/// ```
/// use elk_model::{zoo, Workload};
///
/// let g = zoo::mixtral_8x7b().build(Workload::decode(16, 1024), 4);
/// assert!(g.total_hbm_load().get() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Model name.
    pub name: String,
    /// Transformer layers.
    pub layers: u32,
    /// Model dimension.
    pub hidden: u64,
    /// Query heads.
    pub heads: u64,
    /// KV heads (GQA).
    pub kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Expert FFN intermediate dimension.
    pub expert_intermediate: u64,
    /// Experts per layer.
    pub experts: u64,
    /// Experts activated per token (top-k).
    pub experts_per_token: u64,
    /// Vocabulary size.
    pub vocab: u64,
}

impl MoeConfig {
    /// Total parameters (all experts included).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = self.hidden;
        let attn =
            h * (self.heads + 2 * self.kv_heads) * self.head_dim + self.heads * self.head_dim * h;
        let expert = 3 * h * self.expert_intermediate;
        let router = h * self.experts;
        self.layers as u64 * (attn + self.experts * expert + router) + 2 * self.vocab * h
    }

    /// Parameters touched per token (active experts only) — what one
    /// decode step actually loads from HBM.
    #[must_use]
    pub fn active_param_count(&self) -> u64 {
        let h = self.hidden;
        let attn =
            h * (self.heads + 2 * self.kv_heads) * self.head_dim + self.heads * self.head_dim * h;
        let expert = 3 * h * self.expert_intermediate;
        let router = h * self.experts;
        self.layers as u64 * (attn + self.experts_per_token * expert + router) + 2 * self.vocab * h
    }

    /// Builds the per-shard operator graph using the generic-expert plan.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or does not divide `heads` or
    /// `expert_intermediate`.
    #[must_use]
    pub fn build(&self, workload: Workload, shards: u64) -> ModelGraph {
        assert!(shards > 0, "shard count must be > 0");
        assert!(
            self.heads.is_multiple_of(shards),
            "heads must divide by shards"
        );
        assert!(
            self.expert_intermediate.is_multiple_of(shards),
            "expert intermediate must divide by shards"
        );
        // Reuse the dense-transformer builder for attention, then splice
        // the router + expert FFNs per layer.
        let dense = crate::TransformerConfig {
            name: self.name.clone(),
            layers: self.layers,
            hidden: self.hidden,
            heads: self.heads,
            kv_heads: self.kv_heads,
            head_dim: self.head_dim,
            intermediate: self.expert_intermediate,
            vocab: self.vocab,
            glu: true,
            norm: NormKind::Rms,
            rope: true,
            post_norms: false,
        };
        let base = dense.build(workload, shards);
        let dtype = DType::F16;
        let t = workload.tokens_in_flight();
        let h = self.hidden;
        let i_s = self.expert_intermediate / shards;

        let mut ops: Vec<Operator> = Vec::with_capacity(base.len() * 2);
        let mut layers: Vec<LayerSpan> = Vec::new();
        for span in base.layer_spans() {
            let start = ops.len();
            let l = span.layer;
            for op in &base.ops()[span.ops.clone()] {
                // Keep attention/norm ops; replace the dense FFN trio
                // (mlp_up, mlp_act, mlp_down) with router + experts.
                match op.role() {
                    OpRole::MlpUp => {
                        // Router: tiny matmul + top-k softmax.
                        ops.push(Operator::new(
                            OpId(0),
                            format!("l{l}.router"),
                            OpRole::Other,
                            Some(l),
                            OpKind::MatMul {
                                m: t,
                                k: h,
                                n: self.experts,
                            },
                            dtype,
                            OperandSource::HbmWeight,
                            dtype.bytes_for(h * self.experts),
                        ));
                        ops.push(Operator::new(
                            OpId(0),
                            format!("l{l}.router_softmax"),
                            OpRole::Other,
                            Some(l),
                            OpKind::RowReduce {
                                rows: t,
                                cols: self.experts,
                                kind: ReduceKind::Softmax,
                            },
                            dtype,
                            OperandSource::None,
                            Bytes::ZERO,
                        ));
                        // Generic experts (§7): one FFN instance per
                        // activated-expert slot, each processing the full
                        // token batch — total FLOPs equal `top-k × dense
                        // FFN` and HBM traffic equals `top-k` expert loads,
                        // regardless of which experts routing picks.
                        let te = t;
                        for e in 0..self.experts_per_token {
                            let allreduce = dtype.bytes_for(te * h);
                            ops.push(Operator::new(
                                OpId(0),
                                format!("l{l}.expert{e}.up"),
                                OpRole::MlpUp,
                                Some(l),
                                OpKind::MatMul {
                                    m: te,
                                    k: h,
                                    n: 2 * i_s,
                                },
                                dtype,
                                OperandSource::HbmWeight,
                                dtype.bytes_for(h * 2 * i_s),
                            ));
                            ops.push(Operator::new(
                                OpId(0),
                                format!("l{l}.expert{e}.act"),
                                OpRole::MlpAct,
                                Some(l),
                                OpKind::Elementwise {
                                    elems: te * i_s,
                                    arity: 2,
                                    kind: UnaryKind::Silu,
                                },
                                dtype,
                                OperandSource::None,
                                Bytes::ZERO,
                            ));
                            ops.push(
                                Operator::new(
                                    OpId(0),
                                    format!("l{l}.expert{e}.down"),
                                    OpRole::MlpDown,
                                    Some(l),
                                    OpKind::MatMul {
                                        m: te,
                                        k: i_s,
                                        n: h,
                                    },
                                    dtype,
                                    OperandSource::HbmWeight,
                                    dtype.bytes_for(i_s * h),
                                )
                                .with_allreduce(allreduce),
                            );
                        }
                        // Weighted combination of expert outputs.
                        ops.push(Operator::new(
                            OpId(0),
                            format!("l{l}.expert_combine"),
                            OpRole::Residual,
                            Some(l),
                            OpKind::Elementwise {
                                elems: t * h,
                                arity: self.experts_per_token,
                                kind: UnaryKind::Mul,
                            },
                            dtype,
                            OperandSource::None,
                            Bytes::ZERO,
                        ));
                    }
                    OpRole::MlpAct | OpRole::MlpDown => {} // replaced above
                    _ => ops.push(op.clone()),
                }
            }
            layers.push(LayerSpan {
                layer: l,
                ops: start..ops.len(),
            });
        }
        // Head ops (outside layers) from the dense graph.
        let tail_start = base.layer_spans().last().map_or(0, |s| s.ops.end);
        for op in &base.ops()[tail_start..] {
            ops.push(op.clone());
        }

        ModelGraph::new(self.name.clone(), workload, shards, ops, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn mixtral_parameter_scale() {
        let cfg = zoo::mixtral_8x7b();
        let total = cfg.param_count() as f64;
        let active = cfg.active_param_count() as f64;
        assert!((40e9..55e9).contains(&total), "total params {total:.3e}");
        assert!((11e9..16e9).contains(&active), "active params {active:.3e}");
    }

    #[test]
    fn decode_loads_only_active_experts() {
        let cfg = zoo::mixtral_8x7b();
        let g = cfg.build(Workload::decode(16, 1024), 4);
        // Per-shard weight bytes should track active params / shards, not
        // total params (idle experts stay in HBM).
        let per_shard = g.weight_bytes().as_f64();
        let active = cfg.active_param_count() as f64 * 2.0 / 4.0;
        let ratio = per_shard / active;
        assert!(
            (0.7..1.3).contains(&ratio),
            "per-shard weights {per_shard:.3e} vs active/shard {active:.3e}"
        );
    }

    #[test]
    fn layer_structure_replaces_dense_ffn() {
        let cfg = zoo::mixtral_8x7b();
        let g = cfg.build(Workload::decode(8, 512), 4);
        let span = &g.layer_spans()[1];
        let names: Vec<&str> = g.ops()[span.ops.clone()].iter().map(|o| o.name()).collect();
        assert!(names.iter().any(|n| n.contains("router")));
        assert!(names.iter().any(|n| n.contains("expert0.up")));
        assert!(names.iter().any(|n| n.contains("expert1.down")));
        assert!(names.iter().any(|n| n.contains("expert_combine")));
    }
}
