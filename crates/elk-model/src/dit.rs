//! Diffusion-transformer (DiT) graphs.
//!
//! DiT-XL (Fig. 23) is compute-intensive: every step processes all latent
//! tokens, attention operands are on-chip activations, and the only
//! HBM-resident tensors are layer weights — so preload efficiency matters
//! less than for LLM decoding, which is exactly the contrast the paper
//! draws.

use serde::{Deserialize, Serialize};

use elk_units::Bytes;

use crate::{
    DType, LayerSpan, ModelGraph, OpId, OpKind, OpRole, OperandSource, Operator, ReduceKind,
    UnaryKind, Workload,
};

/// Architecture hyper-parameters of a DiT (adaLN-zero) diffusion
/// transformer.
///
/// # Examples
///
/// ```
/// use elk_model::{zoo, Workload};
///
/// let g = zoo::dit_xl().build(Workload::decode(8, 256), 1);
/// assert!(g.total_flops().get() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DitConfig {
    /// Model name.
    pub name: String,
    /// Transformer blocks.
    pub layers: u32,
    /// Model dimension.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// FFN expansion ratio.
    pub mlp_ratio: u64,
    /// Latent tokens per image (latent size / patch size, squared).
    pub tokens: u64,
}

impl DitConfig {
    /// Approximate parameter count.
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = self.hidden;
        let per_layer = 4 * h * h            // qkv + out
            + 2 * h * (self.mlp_ratio * h)   // fc1 + fc2
            + 6 * h * h; // adaLN modulation
        self.layers as u64 * per_layer
    }

    /// Builds the operator graph for one denoising step over
    /// `workload.batch` images. The `seq_len` of the workload is ignored;
    /// the token count comes from the architecture.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or does not divide `heads`.
    #[must_use]
    pub fn build(&self, workload: Workload, shards: u64) -> ModelGraph {
        assert!(shards > 0, "shard count must be > 0");
        assert!(
            self.heads.is_multiple_of(shards),
            "heads ({}) must divide by shards ({shards})",
            self.heads
        );
        let dtype = DType::F16;
        let b = workload.batch;
        let t = b * self.tokens; // tokens in flight
        let h = self.hidden;
        let hs = self.heads / shards;
        let d = self.head_dim;
        let i_s = self.mlp_ratio * h / shards;
        let allreduce = dtype.bytes_for(t * h);

        let mut ops = Vec::new();
        let mut layers = Vec::new();

        // Patch + timestep/class conditioning embed.
        ops.push(Operator::new(
            OpId(0),
            "patch_embed".to_string(),
            OpRole::Embed,
            None,
            OpKind::MatMul { m: t, k: 16, n: h },
            dtype,
            OperandSource::HbmWeight,
            dtype.bytes_for(16 * h),
        ));

        for l in 0..self.layers {
            let start = ops.len();
            let pfx = |op: &str| format!("l{l}.{op}");
            let norm = |name: String, rows: u64| {
                Operator::new(
                    OpId(0),
                    name,
                    OpRole::AttnNorm,
                    Some(l),
                    OpKind::RowReduce {
                        rows,
                        cols: h,
                        kind: ReduceKind::LayerNorm,
                    },
                    dtype,
                    OperandSource::None,
                    Bytes::ZERO,
                )
            };

            // adaLN modulation: conditioning vector -> 6 (shift,scale,gate).
            ops.push(Operator::new(
                OpId(0),
                pfx("adaln"),
                OpRole::Modulation,
                Some(l),
                OpKind::MatMul {
                    m: b,
                    k: h,
                    n: 6 * h / shards,
                },
                dtype,
                OperandSource::HbmWeight,
                dtype.bytes_for(h * 6 * h / shards),
            ));
            ops.push(norm(pfx("norm1"), t));
            ops.push(Operator::new(
                OpId(0),
                pfx("modulate1"),
                OpRole::Modulation,
                Some(l),
                OpKind::Elementwise {
                    elems: t * h,
                    arity: 3,
                    kind: UnaryKind::Modulate,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            ops.push(Operator::new(
                OpId(0),
                pfx("attn_qkv"),
                OpRole::AttnQkv,
                Some(l),
                OpKind::MatMul {
                    m: t,
                    k: h,
                    n: 3 * hs * d,
                },
                dtype,
                OperandSource::HbmWeight,
                dtype.bytes_for(h * 3 * hs * d),
            ));
            // Full self-attention over on-chip activations.
            let kv = dtype.bytes_for(b * hs * self.tokens * d);
            ops.push(Operator::new(
                OpId(0),
                pfx("attn_scores"),
                OpRole::AttnScores,
                Some(l),
                OpKind::BatchMatMul {
                    batch: b * hs,
                    m: self.tokens,
                    k: d,
                    n: self.tokens,
                },
                dtype,
                OperandSource::OnChip,
                kv,
            ));
            ops.push(Operator::new(
                OpId(0),
                pfx("attn_softmax"),
                OpRole::AttnSoftmax,
                Some(l),
                OpKind::RowReduce {
                    rows: b * hs * self.tokens,
                    cols: self.tokens,
                    kind: ReduceKind::Softmax,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            ops.push(Operator::new(
                OpId(0),
                pfx("attn_context"),
                OpRole::AttnContext,
                Some(l),
                OpKind::BatchMatMul {
                    batch: b * hs,
                    m: self.tokens,
                    k: self.tokens,
                    n: d,
                },
                dtype,
                OperandSource::OnChip,
                kv,
            ));
            ops.push(
                Operator::new(
                    OpId(0),
                    pfx("attn_out"),
                    OpRole::AttnOut,
                    Some(l),
                    OpKind::MatMul {
                        m: t,
                        k: hs * d,
                        n: h,
                    },
                    dtype,
                    OperandSource::HbmWeight,
                    dtype.bytes_for(hs * d * h),
                )
                .with_allreduce(allreduce),
            );
            ops.push(Operator::new(
                OpId(0),
                pfx("gate_residual1"),
                OpRole::Residual,
                Some(l),
                OpKind::Elementwise {
                    elems: t * h,
                    arity: 3,
                    kind: UnaryKind::Modulate,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));

            ops.push(norm(pfx("norm2"), t));
            ops.push(Operator::new(
                OpId(0),
                pfx("modulate2"),
                OpRole::Modulation,
                Some(l),
                OpKind::Elementwise {
                    elems: t * h,
                    arity: 3,
                    kind: UnaryKind::Modulate,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            ops.push(Operator::new(
                OpId(0),
                pfx("mlp_fc1"),
                OpRole::MlpUp,
                Some(l),
                OpKind::MatMul { m: t, k: h, n: i_s },
                dtype,
                OperandSource::HbmWeight,
                dtype.bytes_for(h * i_s),
            ));
            ops.push(Operator::new(
                OpId(0),
                pfx("mlp_gelu"),
                OpRole::MlpAct,
                Some(l),
                OpKind::Elementwise {
                    elems: t * i_s,
                    arity: 1,
                    kind: UnaryKind::Gelu,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));
            ops.push(
                Operator::new(
                    OpId(0),
                    pfx("mlp_fc2"),
                    OpRole::MlpDown,
                    Some(l),
                    OpKind::MatMul { m: t, k: i_s, n: h },
                    dtype,
                    OperandSource::HbmWeight,
                    dtype.bytes_for(i_s * h),
                )
                .with_allreduce(allreduce),
            );
            ops.push(Operator::new(
                OpId(0),
                pfx("gate_residual2"),
                OpRole::Residual,
                Some(l),
                OpKind::Elementwise {
                    elems: t * h,
                    arity: 3,
                    kind: UnaryKind::Modulate,
                },
                dtype,
                OperandSource::None,
                Bytes::ZERO,
            ));

            layers.push(LayerSpan {
                layer: l,
                ops: start..ops.len(),
            });
        }

        // Final adaLN + linear head back to patches.
        ops.push(Operator::new(
            OpId(0),
            "final_norm".to_string(),
            OpRole::FinalNorm,
            None,
            OpKind::RowReduce {
                rows: t,
                cols: h,
                kind: ReduceKind::LayerNorm,
            },
            dtype,
            OperandSource::None,
            Bytes::ZERO,
        ));
        ops.push(Operator::new(
            OpId(0),
            "final_linear".to_string(),
            OpRole::LmHead,
            None,
            OpKind::MatMul { m: t, k: h, n: 32 },
            dtype,
            OperandSource::HbmWeight,
            dtype.bytes_for(h * 32),
        ));

        ModelGraph::new(self.name.clone(), workload, shards, ops, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn param_count_near_675m() {
        let p = zoo::dit_xl().param_count() as f64;
        assert!((0.5e9..0.9e9).contains(&p), "DiT-XL params {p:.3e}");
    }

    #[test]
    fn compute_intensity_far_exceeds_llm_decode() {
        let dit = zoo::dit_xl().build(Workload::decode(8, 256), 1);
        let llm = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let intensity = |g: &ModelGraph| g.total_flops().get() / g.total_hbm_load().as_f64();
        assert!(intensity(&dit) > 10.0 * intensity(&llm));
    }

    #[test]
    fn no_kv_cache_traffic() {
        let g = zoo::dit_xl().build(Workload::decode(8, 256), 1);
        assert!(g
            .iter()
            .all(|o| o.stationary() != OperandSource::HbmKvCache));
    }
}
