use std::fmt;

use serde::{Deserialize, Serialize};

/// Which phase of model execution the graph describes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Autoregressive decoding: one new token per request, KV cache read
    /// from HBM. Bandwidth-bound — the paper's main evaluation (Fig. 17).
    #[default]
    Decode,
    /// Prompt processing: `seq_len` tokens per request, KV cache written.
    Prefill,
    /// Training forward pass over full sequences (Fig. 24). Compute-bound;
    /// attention inputs are on-chip activations, not HBM-resident caches.
    TrainingForward,
}

impl Phase {
    /// Tokens in flight per request for matrix-multiply row counts.
    #[must_use]
    pub const fn tokens_per_request(self, seq_len: u64) -> u64 {
        match self {
            Phase::Decode => 1,
            Phase::Prefill | Phase::TrainingForward => seq_len,
        }
    }

    /// `true` if attention reads the KV cache from HBM.
    #[must_use]
    pub const fn reads_kv_cache(self) -> bool {
        matches!(self, Phase::Decode)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Batch size, sequence length, and phase of one serving/training step.
///
/// # Examples
///
/// ```
/// use elk_model::Workload;
///
/// let wl = Workload::decode(32, 2048);
/// assert_eq!(wl.tokens_in_flight(), 32);
/// let train = Workload::training_forward(4, 2048);
/// assert_eq!(train.tokens_in_flight(), 4 * 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Requests per batch.
    pub batch: u64,
    /// Context length (KV-cache depth for decode; input length otherwise).
    pub seq_len: u64,
    /// Execution phase.
    pub phase: Phase,
}

impl Workload {
    /// A decode step: `batch` requests each generating one token against a
    /// `seq_len`-deep KV cache.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    #[must_use]
    pub fn decode(batch: u64, seq_len: u64) -> Self {
        assert!(batch > 0 && seq_len > 0, "workload dimensions must be > 0");
        Workload {
            batch,
            seq_len,
            phase: Phase::Decode,
        }
    }

    /// A prefill step over `batch` prompts of `seq_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    #[must_use]
    pub fn prefill(batch: u64, seq_len: u64) -> Self {
        assert!(batch > 0 && seq_len > 0, "workload dimensions must be > 0");
        Workload {
            batch,
            seq_len,
            phase: Phase::Prefill,
        }
    }

    /// A training forward pass over `batch` sequences of `seq_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    #[must_use]
    pub fn training_forward(batch: u64, seq_len: u64) -> Self {
        assert!(batch > 0 && seq_len > 0, "workload dimensions must be > 0");
        Workload {
            batch,
            seq_len,
            phase: Phase::TrainingForward,
        }
    }

    /// Total tokens flowing through matrix multiplies this step.
    #[must_use]
    pub const fn tokens_in_flight(&self) -> u64 {
        self.batch * self.phase.tokens_per_request(self.seq_len)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} b{} s{}", self.phase, self.batch, self.seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_tokens() {
        assert_eq!(Workload::decode(16, 4096).tokens_in_flight(), 16);
    }

    #[test]
    fn prefill_tokens() {
        assert_eq!(Workload::prefill(2, 1024).tokens_in_flight(), 2048);
    }

    #[test]
    fn kv_cache_only_in_decode() {
        assert!(Phase::Decode.reads_kv_cache());
        assert!(!Phase::TrainingForward.reads_kv_cache());
        assert!(!Phase::Prefill.reads_kv_cache());
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn zero_batch_rejected() {
        let _ = Workload::decode(0, 128);
    }
}
