use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{Bytes, Flops};

use crate::ModelGraph;

/// Summary statistics of a model graph, in the vocabulary of the paper's
/// Table 2. `C`, `K`, and `P` additionally depend on the chip and the
/// partitioner, so they are computed by higher layers; this captures the
/// graph-only columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Model name.
    pub name: String,
    /// Total operator count (`N` in Table 2, counted per chip shard).
    pub n_ops: usize,
    /// HBM-heavy operators per repeated layer (`H` in Table 2).
    pub heavy_per_layer: usize,
    /// Total HBM-heavy operators.
    pub heavy_total: usize,
    /// Repeated-layer count.
    pub layers: usize,
    /// HBM bytes read per step (per shard).
    pub hbm_load: Bytes,
    /// Weight bytes resident in HBM (per shard).
    pub weight_bytes: Bytes,
    /// Floating-point work per step (per shard).
    pub flops: Flops,
    /// Share of total HBM volume contributed by heavy operators.
    pub heavy_hbm_share: f64,
}

impl GraphStats {
    /// Computes graph statistics.
    #[must_use]
    pub fn of(graph: &ModelGraph) -> Self {
        let heavy = graph.hbm_heavy_ops();
        let heavy_hbm: Bytes = heavy.iter().map(|&id| graph.op(id).hbm_load()).sum();
        let total = graph.total_hbm_load();
        let heavy_per_layer = graph
            .layer_spans()
            .get(1)
            .or_else(|| graph.layer_spans().first())
            .map(|span| {
                heavy
                    .iter()
                    .filter(|id| span.ops.contains(&id.index()))
                    .count()
            })
            .unwrap_or(0);
        GraphStats {
            name: graph.name().to_string(),
            n_ops: graph.len(),
            heavy_per_layer,
            heavy_total: heavy.len(),
            layers: graph.layer_spans().len(),
            hbm_load: total,
            weight_bytes: graph.weight_bytes(),
            flops: graph.total_flops(),
            heavy_hbm_share: if total.is_zero() {
                0.0
            } else {
                heavy_hbm.as_f64() / total.as_f64()
            },
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: N={} H={} layers={} hbm={} weights={} heavy-share={:.1}%",
            self.name,
            self.n_ops,
            self.heavy_per_layer,
            self.layers,
            self.hbm_load,
            self.weight_bytes,
            self.heavy_hbm_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Workload};

    #[test]
    fn heavy_ops_dominate_hbm_volume() {
        // §4.4: "289 of 2,269 operators contribute 99.8% of HBM volume" for
        // OPT-30B — heavy operators must carry nearly all traffic.
        let g = zoo::opt_30b().build(Workload::decode(32, 2048), 4);
        let s = GraphStats::of(&g);
        assert!(
            s.heavy_hbm_share > 0.99,
            "heavy share {:.4} too low",
            s.heavy_hbm_share
        );
        assert!(s.heavy_total < s.n_ops / 2);
    }

    #[test]
    fn stats_are_consistent_with_graph() {
        let g = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let s = GraphStats::of(&g);
        assert_eq!(s.n_ops, g.len());
        assert_eq!(s.layers, 40);
        assert_eq!(s.hbm_load, g.total_hbm_load());
    }
}
