use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{Bytes, Flops};

use crate::DType;

/// Index of an operator within a [`crate::ModelGraph`]'s execution order.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct OpId(pub usize);

impl OpId {
    /// The underlying index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Where an operator's *stationary* operand (weights, KV cache, embedding
/// table) resides before execution.
///
/// HBM-resident operands must be preloaded through the interconnect; on-chip
/// operands are activations produced by earlier operators and already live
/// in distributed SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandSource {
    /// Model parameters stored in HBM, reused across requests in a batch.
    HbmWeight,
    /// KV-cache entries stored in HBM, unique per request (no batch reuse).
    HbmKvCache,
    /// Activation output of an earlier operator, already in on-chip SRAM.
    OnChip,
    /// The operator has no stationary operand.
    None,
}

impl OperandSource {
    /// `true` if the operand must be loaded from off-chip memory.
    #[must_use]
    pub const fn is_hbm(self) -> bool {
        matches!(self, OperandSource::HbmWeight | OperandSource::HbmKvCache)
    }
}

/// Row-wise reduction flavour for [`OpKind::RowReduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Numerically-stable softmax (max, exp, sum, divide).
    Softmax,
    /// RMSNorm (square, mean, rsqrt, scale).
    RmsNorm,
    /// LayerNorm (mean, variance, normalize, scale+shift).
    LayerNorm,
    /// Plain sum/mean reduction.
    Sum,
}

impl ReduceKind {
    /// Approximate FLOPs per element for the reduction flavour.
    #[must_use]
    pub const fn flops_per_elem(self) -> u64 {
        match self {
            ReduceKind::Softmax => 5,
            ReduceKind::RmsNorm => 4,
            ReduceKind::LayerNorm => 6,
            ReduceKind::Sum => 1,
        }
    }
}

/// Element-wise operation flavour for [`OpKind::Elementwise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryKind {
    /// Addition (residual connections).
    Add,
    /// Pointwise multiply (gating).
    Mul,
    /// SiLU / SwiGLU activation (with gating multiply).
    Silu,
    /// GeLU activation.
    Gelu,
    /// Rotary positional embedding.
    Rope,
    /// Scale-and-shift modulation (DiT adaLN).
    Modulate,
    /// Memory-movement only (KV-cache append, reshape).
    Copy,
}

impl UnaryKind {
    /// Approximate FLOPs per element.
    #[must_use]
    pub const fn flops_per_elem(self) -> u64 {
        match self {
            UnaryKind::Add | UnaryKind::Mul => 1,
            UnaryKind::Silu => 5,
            UnaryKind::Gelu => 8,
            UnaryKind::Rope => 6,
            UnaryKind::Modulate => 2,
            UnaryKind::Copy => 0,
        }
    }
}

/// The computation performed by one operator, with its full (per-chip
/// shard) iteration space.
///
/// These are the operator classes the paper's evaluation exercises:
/// `MatMul` / `BatchMatMul` carry virtually all FLOPs and HBM traffic,
/// `RowReduce` covers softmax and normalization, `Elementwise` covers
/// activations / residuals / RoPE, and `Gather` covers embedding lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense `[m×k] · [k×n]` product. `A` is the moving operand
    /// (activations), `B` the stationary operand.
    MatMul {
        /// Rows of `A` (tokens in flight).
        m: u64,
        /// Contraction length.
        k: u64,
        /// Columns of `B`.
        n: u64,
    },
    /// `batch` independent `[m×k] · [k×n]` products (attention).
    BatchMatMul {
        /// Independent product count (batch × heads).
        batch: u64,
        /// Rows per product.
        m: u64,
        /// Contraction length per product.
        k: u64,
        /// Columns per product.
        n: u64,
    },
    /// Row-wise reduction over a `[rows × cols]` view.
    RowReduce {
        /// Independent rows.
        rows: u64,
        /// Reduced elements per row.
        cols: u64,
        /// Reduction flavour.
        kind: ReduceKind,
    },
    /// Element-wise map over `elems` elements with `arity` input tensors.
    Elementwise {
        /// Total elements.
        elems: u64,
        /// Number of input tensors.
        arity: u64,
        /// Operation flavour.
        kind: UnaryKind,
    },
    /// Row gather of `rows` rows of width `width` from a
    /// `[table_rows × width]` table.
    Gather {
        /// Rows gathered.
        rows: u64,
        /// Row width.
        width: u64,
        /// Table height.
        table_rows: u64,
    },
}

impl OpKind {
    /// Total floating-point operations of the full (un-tiled) computation.
    #[must_use]
    pub fn flops(&self) -> Flops {
        let f = match *self {
            OpKind::MatMul { m, k, n } => 2.0 * m as f64 * k as f64 * n as f64,
            OpKind::BatchMatMul { batch, m, k, n } => {
                2.0 * batch as f64 * m as f64 * k as f64 * n as f64
            }
            OpKind::RowReduce { rows, cols, kind } => (rows * cols * kind.flops_per_elem()) as f64,
            OpKind::Elementwise { elems, kind, .. } => (elems * kind.flops_per_elem()) as f64,
            OpKind::Gather { .. } => 0.0,
        };
        Flops::new(f)
    }

    /// Elements of the moving (activation) input.
    #[must_use]
    pub fn input_elems(&self) -> u64 {
        match *self {
            OpKind::MatMul { m, k, .. } => m * k,
            OpKind::BatchMatMul { batch, m, k, .. } => batch * m * k,
            OpKind::RowReduce { rows, cols, .. } => rows * cols,
            OpKind::Elementwise { elems, arity, .. } => elems * arity,
            OpKind::Gather { rows, .. } => rows,
        }
    }

    /// Elements of the stationary input (`0` when there is none).
    #[must_use]
    pub fn stationary_elems(&self) -> u64 {
        match *self {
            OpKind::MatMul { k, n, .. } => k * n,
            OpKind::BatchMatMul { batch, k, n, .. } => batch * k * n,
            OpKind::RowReduce { cols, .. } => cols,
            OpKind::Elementwise { .. } => 0,
            OpKind::Gather {
                table_rows, width, ..
            } => table_rows * width,
        }
    }

    /// Elements of the output.
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        match *self {
            OpKind::MatMul { m, n, .. } => m * n,
            OpKind::BatchMatMul { batch, m, n, .. } => batch * m * n,
            OpKind::RowReduce { rows, cols, kind } => match kind {
                ReduceKind::Sum => rows,
                _ => rows * cols,
            },
            OpKind::Elementwise { elems, .. } => elems,
            OpKind::Gather { rows, width, .. } => rows * width,
        }
    }

    /// Short operator-class name (used by the cost model and reports).
    #[must_use]
    pub fn class_name(&self) -> &'static str {
        match self {
            OpKind::MatMul { .. } => "MatMul",
            OpKind::BatchMatMul { .. } => "BatchMatMul",
            OpKind::RowReduce { .. } => "RowReduce",
            OpKind::Elementwise { .. } => "Elementwise",
            OpKind::Gather { .. } => "Gather",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpKind::MatMul { m, k, n } => write!(f, "MatMul[{m}x{k}x{n}]"),
            OpKind::BatchMatMul { batch, m, k, n } => {
                write!(f, "BatchMatMul[{batch}:{m}x{k}x{n}]")
            }
            OpKind::RowReduce { rows, cols, kind } => {
                write!(f, "RowReduce[{rows}x{cols}:{kind:?}]")
            }
            OpKind::Elementwise { elems, kind, .. } => write!(f, "Elementwise[{elems}:{kind:?}]"),
            OpKind::Gather { rows, width, .. } => write!(f, "Gather[{rows}x{width}]"),
        }
    }
}

/// Semantic role of an operator within a transformer block, used to select
/// representative operators (Fig. 5) and to label reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpRole {
    Embed,
    AttnNorm,
    AttnQkv,
    Rope,
    KvAppend,
    AttnScores,
    AttnSoftmax,
    AttnContext,
    AttnOut,
    Residual,
    MlpNorm,
    MlpUp,
    MlpAct,
    MlpDown,
    PostNorm,
    FinalNorm,
    LmHead,
    Modulation,
    Other,
}

impl fmt::Display for OpRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One tensor operator in a model's sequential execution order.
///
/// All sizes are **per chip shard** — a graph built with `shards = 4`
/// describes the work one of four tensor-parallel chips performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    id: OpId,
    name: String,
    role: OpRole,
    layer: Option<u32>,
    kind: OpKind,
    dtype: DType,
    stationary: OperandSource,
    stationary_bytes: Bytes,
    hbm_store: Bytes,
    allreduce: Bytes,
}

impl Operator {
    /// Creates an operator. `stationary_bytes` may differ from
    /// `kind.stationary_elems()` (for example GQA attention reads one KV head
    /// per query-head group, so the loaded volume is smaller than the
    /// logical operand).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        id: OpId,
        name: impl Into<String>,
        role: OpRole,
        layer: Option<u32>,
        kind: OpKind,
        dtype: DType,
        stationary: OperandSource,
        stationary_bytes: Bytes,
    ) -> Self {
        Operator {
            id,
            name: name.into(),
            role,
            layer,
            kind,
            dtype,
            stationary,
            stationary_bytes,
            hbm_store: Bytes::ZERO,
            allreduce: Bytes::ZERO,
        }
    }

    /// Sets the HBM write-back volume (KV-cache append).
    #[must_use]
    pub fn with_hbm_store(mut self, bytes: Bytes) -> Self {
        self.hbm_store = bytes;
        self
    }

    /// Sets the inter-chip all-reduce volume required after this operator.
    #[must_use]
    pub fn with_allreduce(mut self, bytes: Bytes) -> Self {
        self.allreduce = bytes;
        self
    }

    /// Position in the execution order.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// Re-numbers the operator (used when graphs are assembled).
    pub(crate) fn set_id(&mut self, id: OpId) {
        self.id = id;
    }

    /// Human-readable name, e.g. `"l12.attn_qkv"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Semantic role.
    #[must_use]
    pub fn role(&self) -> OpRole {
        self.role
    }

    /// Transformer layer index, if the operator belongs to a repeated layer.
    #[must_use]
    pub fn layer(&self) -> Option<u32> {
        self.layer
    }

    /// The computation.
    #[must_use]
    pub fn kind(&self) -> &OpKind {
        &self.kind
    }

    /// Element datatype.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Stationary-operand source.
    #[must_use]
    pub fn stationary(&self) -> OperandSource {
        self.stationary
    }

    /// Stationary-operand size (what preloading must deliver on-chip).
    #[must_use]
    pub fn stationary_bytes(&self) -> Bytes {
        self.stationary_bytes
    }

    /// Total floating-point work.
    #[must_use]
    pub fn flops(&self) -> Flops {
        self.kind.flops()
    }

    /// Bytes that must be loaded from HBM before execution.
    #[must_use]
    pub fn hbm_load(&self) -> Bytes {
        if self.stationary.is_hbm() {
            self.stationary_bytes
        } else {
            Bytes::ZERO
        }
    }

    /// Bytes written back to HBM by this operator.
    #[must_use]
    pub fn hbm_store(&self) -> Bytes {
        self.hbm_store
    }

    /// Inter-chip all-reduce volume after this operator.
    #[must_use]
    pub fn allreduce(&self) -> Bytes {
        self.allreduce
    }

    /// Moving-input (activation) footprint.
    #[must_use]
    pub fn input_bytes(&self) -> Bytes {
        self.dtype.bytes_for(self.kind.input_elems())
    }

    /// Output footprint.
    #[must_use]
    pub fn output_bytes(&self) -> Bytes {
        self.dtype.bytes_for(self.kind.output_elems())
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.id, self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(m: u64, k: u64, n: u64) -> Operator {
        Operator::new(
            OpId(0),
            "mm",
            OpRole::AttnQkv,
            Some(0),
            OpKind::MatMul { m, k, n },
            DType::F16,
            OperandSource::HbmWeight,
            DType::F16.bytes_for(k * n),
        )
    }

    #[test]
    fn matmul_accounting() {
        let op = matmul(32, 5120, 15360);
        assert_eq!(op.flops().get(), 2.0 * 32.0 * 5120.0 * 15360.0);
        assert_eq!(op.hbm_load(), Bytes::new(5120 * 15360 * 2));
        assert_eq!(op.input_bytes(), Bytes::new(32 * 5120 * 2));
        assert_eq!(op.output_bytes(), Bytes::new(32 * 15360 * 2));
    }

    #[test]
    fn onchip_stationary_loads_nothing() {
        let op = Operator::new(
            OpId(1),
            "scores",
            OpRole::AttnScores,
            Some(0),
            OpKind::BatchMatMul {
                batch: 64,
                m: 1,
                k: 128,
                n: 2048,
            },
            DType::F16,
            OperandSource::OnChip,
            DType::F16.bytes_for(64 * 128 * 2048),
        );
        assert_eq!(op.hbm_load(), Bytes::ZERO);
    }

    #[test]
    fn kv_cache_volume_can_differ_from_logical_operand() {
        // GQA: 8 query heads share 1 KV head; loaded bytes < logical elems.
        let kind = OpKind::BatchMatMul {
            batch: 32 * 8,
            m: 1,
            k: 128,
            n: 2048,
        };
        let loaded = DType::F16.bytes_for(32 * 128 * 2048); // one KV head
        let op = Operator::new(
            OpId(2),
            "scores",
            OpRole::AttnScores,
            Some(0),
            kind,
            DType::F16,
            OperandSource::HbmKvCache,
            loaded,
        );
        assert!(op.hbm_load() < DType::F16.bytes_for(kind.stationary_elems()));
    }

    #[test]
    fn softmax_output_keeps_shape_sum_reduces() {
        let soft = OpKind::RowReduce {
            rows: 10,
            cols: 7,
            kind: ReduceKind::Softmax,
        };
        assert_eq!(soft.output_elems(), 70);
        let sum = OpKind::RowReduce {
            rows: 10,
            cols: 7,
            kind: ReduceKind::Sum,
        };
        assert_eq!(sum.output_elems(), 10);
    }

    #[test]
    fn builder_extras() {
        let op = matmul(1, 2, 3)
            .with_hbm_store(Bytes::new(64))
            .with_allreduce(Bytes::new(128));
        assert_eq!(op.hbm_store(), Bytes::new(64));
        assert_eq!(op.allreduce(), Bytes::new(128));
    }
}
