//! The evaluation models of the paper (Table 2), instantiated from their
//! published architecture hyper-parameters.

use crate::dit::DitConfig;
use crate::moe::MoeConfig;
use crate::{NormKind, TransformerConfig};

/// A model alias paired with its constructor.
pub type LlmAlias = (&'static str, fn() -> TransformerConfig);

/// CLI aliases of the evaluation LLMs, in Table 2 order, paired with
/// their constructors — the single source of truth for name-based
/// lookups.
pub const LLM_ALIASES: [LlmAlias; 4] = [
    ("llama13", llama2_13b),
    ("gemma27", gemma2_27b),
    ("opt30", opt_30b),
    ("llama70", llama2_70b),
];

/// Resolves a CLI model alias (e.g. `"llama13"`).
///
/// # Errors
///
/// Returns a message listing the valid aliases when `name` is unknown.
///
/// # Examples
///
/// ```
/// assert_eq!(elk_model::zoo::by_name("opt30").unwrap().name, "OPT-30B");
/// assert!(elk_model::zoo::by_name("gpt5").is_err());
/// ```
pub fn by_name(name: &str) -> Result<TransformerConfig, String> {
    LLM_ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map(|(_, build)| build())
        .ok_or_else(|| {
            let valid: Vec<&str> = LLM_ALIASES.iter().map(|(a, _)| *a).collect();
            format!(
                "unknown model '{name}': expected one of {}",
                valid.join(", ")
            )
        })
}

/// Llama-2-13B: 40 layers, hidden 5120, 40 heads (MHA), SwiGLU FFN.
#[must_use]
pub fn llama2_13b() -> TransformerConfig {
    TransformerConfig {
        name: "Llama-2-13B".into(),
        layers: 40,
        hidden: 5120,
        heads: 40,
        kv_heads: 40,
        head_dim: 128,
        intermediate: 13824,
        vocab: 32000,
        glu: true,
        norm: NormKind::Rms,
        rope: true,
        post_norms: false,
    }
}

/// Llama-2-70B: 80 layers, hidden 8192, 64 heads with 8 KV heads (GQA).
#[must_use]
pub fn llama2_70b() -> TransformerConfig {
    TransformerConfig {
        name: "Llama-2-70B".into(),
        layers: 80,
        hidden: 8192,
        heads: 64,
        kv_heads: 8,
        head_dim: 128,
        intermediate: 28672,
        vocab: 32000,
        glu: true,
        norm: NormKind::Rms,
        rope: true,
        post_norms: false,
    }
}

/// Gemma-2-27B: 46 layers, hidden 4608, 32 heads with 16 KV heads (GQA),
/// post-attention and post-FFN norms.
#[must_use]
pub fn gemma2_27b() -> TransformerConfig {
    TransformerConfig {
        name: "Gemma-2-27B".into(),
        layers: 46,
        hidden: 4608,
        heads: 32,
        kv_heads: 16,
        head_dim: 128,
        intermediate: 36864,
        vocab: 256128,
        glu: true,
        norm: NormKind::Rms,
        rope: true,
        post_norms: true,
    }
}

/// OPT-30B: 48 layers, hidden 7168, 56 heads (MHA), plain GeLU FFN,
/// LayerNorm.
#[must_use]
pub fn opt_30b() -> TransformerConfig {
    TransformerConfig {
        name: "OPT-30B".into(),
        layers: 48,
        hidden: 7168,
        heads: 56,
        kv_heads: 56,
        head_dim: 128,
        intermediate: 28672,
        vocab: 50272,
        glu: false,
        norm: NormKind::Layer,
        rope: false,
        post_norms: false,
    }
}

/// Mixtral-8x7B-style MoE: 32 layers, hidden 4096, 8 experts with top-2
/// routing, GQA with 8 KV heads (§7's MoE discussion).
#[must_use]
pub fn mixtral_8x7b() -> MoeConfig {
    MoeConfig {
        name: "Mixtral-8x7B".into(),
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 8,
        head_dim: 128,
        expert_intermediate: 14336,
        experts: 8,
        experts_per_token: 2,
        vocab: 32000,
    }
}

/// DiT-XL/2: 28 blocks, hidden 1152, 16 heads, adaLN-zero conditioning,
/// 32×32 latent with patch size 2 (256 tokens).
#[must_use]
pub fn dit_xl() -> DitConfig {
    DitConfig {
        name: "DiT-XL".into(),
        layers: 28,
        hidden: 1152,
        heads: 16,
        head_dim: 72,
        mlp_ratio: 4,
        tokens: 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn all_llms_build() {
        let wl = Workload::decode(16, 2048);
        for cfg in [llama2_13b(), llama2_70b(), gemma2_27b(), opt_30b()] {
            let g = cfg.build(wl, 4);
            assert_eq!(g.layer_spans().len() as u32, cfg.layers);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn dit_builds() {
        let g = dit_xl().build(Workload::decode(8, 256), 1);
        assert_eq!(g.layer_spans().len(), 28);
    }

    #[test]
    fn heavy_ops_per_layer_matches_paper_h() {
        // Table 2 reports H = 6 HBM-heavy operators per layer for the MHA
        // LLMs (qkv, out, up, down + K and V cache reads) and H <= 6 for
        // GQA models.
        let wl = Workload::decode(32, 2048);
        for (cfg, lo, hi) in [
            (llama2_13b(), 6, 6),
            (opt_30b(), 6, 6),
            (llama2_70b(), 4, 6),
            (gemma2_27b(), 4, 6),
        ] {
            let g = cfg.build(wl, 4);
            let heavy = g.hbm_heavy_ops();
            let span = &g.layer_spans()[1];
            let in_layer = heavy
                .iter()
                .filter(|id| span.ops.contains(&id.index()))
                .count();
            assert!(
                (lo..=hi).contains(&in_layer),
                "{}: H={} not in [{lo},{hi}]",
                cfg.name,
                in_layer
            );
        }
    }

    #[test]
    fn decode_hbm_volume_is_weights_plus_kv() {
        // Llama-2-13B b32 s2048 per shard: ~6.5GB weights + ~13.4GB KV.
        let g = llama2_13b().build(Workload::decode(32, 2048), 4);
        let total = g.total_hbm_load().as_f64();
        assert!(
            (15e9..25e9).contains(&total),
            "unexpected per-shard HBM volume {total:.3e}"
        );
    }
}
