use serde::{Deserialize, Serialize};

use crate::Workload;

/// Power-of-two bucketing of sequence lengths and batch sizes.
///
/// A serving system sees a continuum of context lengths, but every
/// distinct [`Workload`] shape costs one compiler invocation. Rounding
/// lengths **up** to the next power of two inside `[min, max]` collapses
/// the continuum onto a handful of shapes so a plan cache keyed on the
/// bucketed workload converges after a few compilations, at the cost of
/// a conservative (never optimistic) latency estimate for lengths that
/// land mid-bucket.
///
/// # Examples
///
/// ```
/// use elk_model::SeqBuckets;
///
/// let buckets = SeqBuckets::new(256, 8192);
/// assert_eq!(buckets.bucket(1), 256);    // clamped up to min
/// assert_eq!(buckets.bucket(300), 512);  // next power of two
/// assert_eq!(buckets.bucket(512), 512);  // exact powers stay put
/// assert_eq!(buckets.bucket(60_000), 8192); // clamped down to max
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeqBuckets {
    /// Smallest bucket; shorter sequences round up to it.
    pub min: u64,
    /// Largest bucket; longer sequences clamp down to it (the serving
    /// layer is expected to reject or truncate such requests).
    pub max: u64,
}

impl SeqBuckets {
    /// Creates a bucket ladder spanning `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, not a power of two, or exceeds `max`.
    #[must_use]
    pub fn new(min: u64, max: u64) -> Self {
        assert!(
            min > 0 && min.is_power_of_two(),
            "min must be a power of two"
        );
        assert!(max >= min, "max ({max}) must be >= min ({min})");
        SeqBuckets { min, max }
    }

    /// Rounds `seq_len` up to the next power of two, clamped to
    /// `[min, max]`.
    #[must_use]
    pub fn bucket(&self, seq_len: u64) -> u64 {
        pow2_at_least(seq_len).clamp(self.min, self.max)
    }

    /// Every bucket value this ladder can produce, ascending.
    #[must_use]
    pub fn ladder(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut b = self.min;
        while b < self.max {
            out.push(b);
            b *= 2;
        }
        out.push(self.max);
        out
    }
}

impl Default for SeqBuckets {
    /// `[256, 8192]` — covers the paper's serving sequence range
    /// (Fig. 17 evaluates 2048–4096).
    fn default() -> Self {
        SeqBuckets::new(256, 8192)
    }
}

/// The smallest power of two `>= x` (`1` for `x == 0`).
#[must_use]
pub fn pow2_at_least(x: u64) -> u64 {
    x.max(1).next_power_of_two()
}

impl Workload {
    /// This workload with `seq_len` rounded up onto `buckets` — the
    /// canonical plan-cache key shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use elk_model::{SeqBuckets, Workload};
    ///
    /// let wl = Workload::decode(32, 1500).bucketed(&SeqBuckets::default());
    /// assert_eq!(wl.seq_len, 2048);
    /// assert_eq!(wl.batch, 32);
    /// ```
    #[must_use]
    pub fn bucketed(mut self, buckets: &SeqBuckets) -> Self {
        self.seq_len = buckets.bucket(self.seq_len);
        self
    }

    /// This workload with `batch` rounded up to a power of two, capped
    /// at `max_batch` **rounded up to a power of two itself** (so a
    /// non-power-of-two cap like 48 yields batches up to 64 — every
    /// shape stays a power of two). Bounds the number of distinct batch
    /// shapes a continuous-batching scheduler can generate.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn with_bucketed_batch(mut self, max_batch: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be > 0");
        self.batch = pow2_at_least(self.batch).min(pow2_at_least(max_batch));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rounds_up_and_clamps() {
        let b = SeqBuckets::new(128, 4096);
        assert_eq!(b.bucket(0), 128);
        assert_eq!(b.bucket(128), 128);
        assert_eq!(b.bucket(129), 256);
        assert_eq!(b.bucket(4095), 4096);
        assert_eq!(b.bucket(9999), 4096);
    }

    #[test]
    fn ladder_is_complete() {
        assert_eq!(
            SeqBuckets::new(256, 2048).ladder(),
            vec![256, 512, 1024, 2048]
        );
        assert_eq!(SeqBuckets::new(512, 512).ladder(), vec![512]);
    }

    #[test]
    fn workload_bucketing_preserves_phase() {
        let wl = Workload::prefill(3, 777).bucketed(&SeqBuckets::default());
        assert_eq!(wl.seq_len, 1024);
        assert_eq!(wl.phase, crate::Phase::Prefill);
        let wl = wl.with_bucketed_batch(64);
        assert_eq!(wl.batch, 4);
    }

    #[test]
    fn batch_bucket_caps_at_max() {
        let wl = Workload::decode(50, 1024).with_bucketed_batch(64);
        assert_eq!(wl.batch, 64);
        let wl = Workload::decode(100, 1024).with_bucketed_batch(48);
        assert_eq!(wl.batch, 64); // cap itself rounds to pow2
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_min_rejected() {
        let _ = SeqBuckets::new(100, 4096);
    }
}
