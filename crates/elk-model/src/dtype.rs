use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::Bytes;

/// Element datatype of a tensor.
///
/// # Examples
///
/// ```
/// use elk_model::DType;
///
/// assert_eq!(DType::F16.size_bytes(), 2);
/// assert_eq!(DType::F16.bytes_for(1024).get(), 2048);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE-754 half precision (the paper's serving configuration).
    #[default]
    F16,
    /// bfloat16.
    BF16,
    /// IEEE-754 single precision.
    F32,
    /// 8-bit integer (quantized serving).
    I8,
}

impl DType {
    /// Size of one element, in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }

    /// Total size of `elems` elements of this type.
    #[must_use]
    pub const fn bytes_for(self, elems: u64) -> Bytes {
        Bytes::new(elems * self.size_bytes())
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F32 => "f32",
            DType::I8 => "i8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I8.size_bytes(), 1);
    }

    #[test]
    fn bytes_for_counts_elements() {
        assert_eq!(DType::F32.bytes_for(10), Bytes::new(40));
        assert_eq!(DType::I8.bytes_for(10), Bytes::new(10));
    }
}
