//! Single-flight keyed exclusive sections for concurrent caches.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::{Condvar, Mutex, PoisonError};

/// A keyed exclusive section: at most one thread runs inside
/// [`with`](SingleFlight::with) for a given key at a time; late arrivals
/// block until the in-flight holder finishes.
///
/// This is the standard *single-flight* idiom for demand-filled caches:
/// the closure re-checks the cache first, so of N concurrent misses on
/// one key exactly one performs the expensive compute and the other
/// N−1 find the freshly-inserted value —
///
/// ```
/// use std::collections::HashMap;
/// use std::sync::Mutex;
///
/// let cache: Mutex<HashMap<u32, u64>> = Mutex::new(HashMap::new());
/// let flight: elk_par::SingleFlight<u32> = elk_par::SingleFlight::new();
/// let computes = std::sync::atomic::AtomicU32::new(0);
///
/// std::thread::scope(|s| {
///     for _ in 0..8 {
///         s.spawn(|| {
///             flight.with(&42, || {
///                 if !cache.lock().unwrap().contains_key(&42) {
///                     computes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
///                     let value = 42 * 42; // the "expensive compile"
///                     cache.lock().unwrap().insert(42, value);
///                 }
///             });
///         });
///     }
/// });
/// assert_eq!(computes.load(std::sync::atomic::Ordering::Relaxed), 1);
/// ```
///
/// Distinct keys never block each other. The key slot is released even
/// if the closure panics, so waiters cannot deadlock on a dead holder.
#[derive(Debug, Default)]
pub struct SingleFlight<K> {
    inflight: Mutex<HashSet<K>>,
    done: Condvar,
}

impl<K: Eq + Hash + Clone> SingleFlight<K> {
    /// Creates an empty flight table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashSet::new()),
            done: Condvar::new(),
        }
    }

    /// Runs `f` while exclusively holding `key`; blocks while another
    /// thread holds the same key. Returns `f`'s output.
    pub fn with<R>(&self, key: &K, f: impl FnOnce() -> R) -> R {
        let mut set = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        while set.contains(key) {
            set = self.done.wait(set).unwrap_or_else(PoisonError::into_inner);
        }
        set.insert(key.clone());
        drop(set);
        let _release = Release { flight: self, key };
        f()
    }
}

/// Releases the key slot (and wakes waiters) on scope exit, including
/// unwinds out of the closure.
struct Release<'a, K: Eq + Hash + Clone> {
    flight: &'a SingleFlight<K>,
    key: &'a K,
}

impl<K: Eq + Hash + Clone> Drop for Release<'_, K> {
    fn drop(&mut self) {
        self.flight
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(self.key);
        self.flight.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn serializes_same_key_work() {
        let flight: SingleFlight<u8> = SingleFlight::new();
        let inside = AtomicU32::new(0);
        let peak = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    flight.with(&1, || {
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1, "two holders of one key");
    }

    #[test]
    fn distinct_keys_do_not_block() {
        let flight: SingleFlight<u8> = SingleFlight::new();
        // Nested holds of different keys on one thread must not deadlock.
        let r = flight.with(&1, || flight.with(&2, || 7));
        assert_eq!(r, 7);
    }

    #[test]
    fn panicking_holder_releases_the_key() {
        let flight: SingleFlight<u8> = SingleFlight::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            flight.with(&1, || panic!("holder died"));
        }));
        assert!(caught.is_err());
        // Slot must be free again.
        assert_eq!(flight.with(&1, || 3), 3);
    }
}
