//! Uniform `--threads` CLI parsing for examples and bench binaries.

use crate::resolve_threads;

/// Result of [`parse_threads`]: the resolved worker count plus every
/// argument that was not part of a `--threads` flag, in original order
/// (so positional arguments keep their positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedThreads {
    /// Worker count: the `--threads` value, else the `ELK_THREADS`
    /// environment variable, else the machine's available parallelism.
    pub threads: usize,
    /// The remaining (non-`--threads`) arguments.
    pub rest: Vec<String>,
}

/// Extracts `--threads N` (or `--threads=N`) from an argument stream.
///
/// The flag may appear anywhere among positional arguments. When absent,
/// the `ELK_THREADS` environment variable is consulted, and failing
/// that the default is [`std::thread::available_parallelism`]. A count
/// of `0` or a non-integer is rejected with an actionable message (the
/// examples and bench bins print it and exit 2, mirroring their
/// model-name handling).
///
/// # Errors
///
/// Returns a human-readable message when the value is missing,
/// non-numeric, or zero.
///
/// # Examples
///
/// ```
/// let p = elk_par::parse_threads(
///     ["llama13", "--threads", "4", "2048"].map(String::from),
/// )
/// .unwrap();
/// assert_eq!(p.threads, 4);
/// assert_eq!(p.rest, vec!["llama13".to_string(), "2048".to_string()]);
///
/// let err = elk_par::parse_threads(["--threads", "0"].map(String::from));
/// assert!(err.unwrap_err().contains("positive"));
/// ```
pub fn parse_threads(args: impl IntoIterator<Item = String>) -> Result<ParsedThreads, String> {
    let mut rest = Vec::new();
    let mut threads: Option<usize> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            args.next()
                .ok_or_else(|| missing_value("--threads requires a value"))?
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        threads = Some(validate(&value)?);
    }
    let threads = match threads {
        Some(t) => t,
        None => match std::env::var("ELK_THREADS") {
            Ok(v) => validate(&v).map_err(|e| format!("ELK_THREADS: {e}"))?,
            Err(_) => resolve_threads(0),
        },
    };
    Ok(ParsedThreads { threads, rest })
}

fn validate(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err(missing_value(
            "invalid thread count '0': must be a positive integer",
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(missing_value(&format!(
            "invalid thread count '{value}': expected a positive integer"
        ))),
    }
}

fn missing_value(what: &str) -> String {
    format!(
        "{what}; omit --threads to use all available cores ({})",
        resolve_threads(0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedThreads, String> {
        parse_threads(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_flag_in_any_position() {
        for args in [
            &["--threads", "3", "llama13"][..],
            &["llama13", "--threads", "3"],
            &["llama13", "--threads=3"],
        ] {
            let p = parse(args).unwrap();
            assert_eq!(p.threads, 3);
            assert_eq!(p.rest, vec!["llama13".to_string()]);
        }
    }

    #[test]
    fn rejects_zero_and_garbage() {
        assert!(parse(&["--threads", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--threads=x"]).unwrap_err().contains("'x'"));
        assert!(parse(&["--threads"]).unwrap_err().contains("value"));
    }

    #[test]
    fn defaults_to_available_parallelism() {
        // The test environment may set ELK_THREADS; both branches are
        // deterministic, so just assert the invariant.
        let p = parse(&["positional"]).unwrap();
        assert!(p.threads >= 1);
        assert_eq!(p.rest, vec!["positional".to_string()]);
    }

    #[test]
    fn last_flag_wins() {
        let p = parse(&["--threads", "2", "--threads", "5"]).unwrap();
        assert_eq!(p.threads, 5);
        assert!(p.rest.is_empty());
    }
}
