//! Uniform `--threads` CLI parsing for examples and bench binaries.

use crate::resolve_threads;

/// Result of [`parse_threads`]: the resolved worker count plus every
/// argument that was not part of a `--threads` flag, in original order
/// (so positional arguments keep their positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedThreads {
    /// Worker count: the `--threads` value, else the `ELK_THREADS`
    /// environment variable, else the machine's available parallelism.
    pub threads: usize,
    /// The remaining (non-`--threads`) arguments.
    pub rest: Vec<String>,
}

/// Extracts `--threads N` (or `--threads=N`) from an argument stream.
///
/// The flag may appear anywhere among positional arguments. When absent,
/// the `ELK_THREADS` environment variable is consulted, and failing
/// that the default is [`std::thread::available_parallelism`]. A count
/// of `0` or a non-integer is rejected with an actionable message (the
/// examples and bench bins print it and exit 2, mirroring their
/// model-name handling).
///
/// # Errors
///
/// Returns a human-readable message when the value is missing,
/// non-numeric, or zero.
///
/// # Examples
///
/// ```
/// let p = elk_par::parse_threads(
///     ["llama13", "--threads", "4", "2048"].map(String::from),
/// )
/// .unwrap();
/// assert_eq!(p.threads, 4);
/// assert_eq!(p.rest, vec!["llama13".to_string(), "2048".to_string()]);
///
/// let err = elk_par::parse_threads(["--threads", "0"].map(String::from));
/// assert!(err.unwrap_err().contains("positive"));
/// ```
pub fn parse_threads(args: impl IntoIterator<Item = String>) -> Result<ParsedThreads, String> {
    let (values, rest) =
        extract_flag("--threads", args).map_err(|_| missing_value("--threads requires a value"))?;
    // Validate every occurrence (a bad value is a bad value even when a
    // later flag overrides it); the last one wins.
    let mut threads = None;
    for value in &values {
        threads = Some(validate_threads(value)?);
    }
    let threads = match threads {
        Some(t) => t,
        None => match std::env::var("ELK_THREADS") {
            Ok(v) => validate_threads(&v).map_err(|e| format!("ELK_THREADS: {e}"))?,
            Err(_) => resolve_threads(0),
        },
    };
    Ok(ParsedThreads { threads, rest })
}

/// Extracts `<flag> VALUE` (or `<flag>=VALUE`) from an argument
/// stream, returning every occurrence's value in order (callers
/// typically let the last win, after validating all) and every other
/// argument in original order. The single token walk behind every flag
/// the workspace's binaries accept ([`parse_threads`], `elk-bench`'s
/// `--out`, the `elk` CLI), so the `--flag=` edge cases cannot drift
/// between them.
///
/// # Errors
///
/// Returns `"<flag> requires a value"` when the flag is last with no
/// value token, or given an empty `<flag>=`.
///
/// # Examples
///
/// ```
/// let (v, rest) =
///     elk_par::extract_flag("--out", ["a", "--out", "dir", "b"].map(String::from)).unwrap();
/// assert_eq!(v, vec!["dir".to_string()]);
/// assert_eq!(rest, vec!["a".to_string(), "b".to_string()]);
/// assert!(elk_par::extract_flag("--out", ["--out=".to_string()]).is_err());
/// ```
pub fn extract_flag(
    flag: &str,
    args: impl IntoIterator<Item = String>,
) -> Result<(Vec<String>, Vec<String>), String> {
    let prefix = format!("{flag}=");
    let mut rest = Vec::new();
    let mut values = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let v = if arg == flag {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))?
        } else if let Some(v) = arg.strip_prefix(&prefix) {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        if v.is_empty() {
            return Err(format!("{flag} requires a value"));
        }
        values.push(v);
    }
    Ok((values, rest))
}

/// Validates a `--threads` value: a positive integer, with the same
/// actionable message everywhere the flag exists ([`parse_threads`],
/// `ELK_THREADS`, the `elk` CLI).
///
/// # Errors
///
/// Returns a human-readable message for `0` or a non-integer.
pub fn validate_threads(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err(missing_value(
            "invalid thread count '0': must be a positive integer",
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(missing_value(&format!(
            "invalid thread count '{value}': expected a positive integer"
        ))),
    }
}

fn missing_value(what: &str) -> String {
    format!(
        "{what}; omit --threads to use all available cores ({})",
        resolve_threads(0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedThreads, String> {
        parse_threads(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_flag_in_any_position() {
        for args in [
            &["--threads", "3", "llama13"][..],
            &["llama13", "--threads", "3"],
            &["llama13", "--threads=3"],
        ] {
            let p = parse(args).unwrap();
            assert_eq!(p.threads, 3);
            assert_eq!(p.rest, vec!["llama13".to_string()]);
        }
    }

    #[test]
    fn rejects_zero_and_garbage() {
        assert!(parse(&["--threads", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--threads=x"]).unwrap_err().contains("'x'"));
        assert!(parse(&["--threads"]).unwrap_err().contains("value"));
    }

    #[test]
    fn defaults_to_available_parallelism() {
        // The test environment may set ELK_THREADS; both branches are
        // deterministic, so just assert the invariant.
        let p = parse(&["positional"]).unwrap();
        assert!(p.threads >= 1);
        assert_eq!(p.rest, vec!["positional".to_string()]);
    }

    #[test]
    fn last_flag_wins_but_every_occurrence_is_validated() {
        let p = parse(&["--threads", "2", "--threads", "5"]).unwrap();
        assert_eq!(p.threads, 5);
        assert!(p.rest.is_empty());
        // An invalid earlier value is still an error even though a
        // later flag would override it.
        assert!(parse(&["--threads", "0", "--threads", "4"])
            .unwrap_err()
            .contains("positive"));
    }
}
