//! # elk-par — minimal scoped work-pool with deterministic merging
//!
//! The Elk compile pipeline — per-operator plan enumeration, per-design
//! catalog compilation, preload-order evaluation — is embarrassingly
//! parallel, but the build environment vendors no external crates, so
//! this crate provides the few primitives the workspace needs on top of
//! [`std::thread::scope`] alone:
//!
//! * [`par_map`] / [`try_par_map`] — fan a slice across a bounded pool
//!   of scoped worker threads. Results are merged **by input index**, so
//!   the output is byte-identical at any thread count; a work item only
//!   ever observes its own index and element. This is the determinism
//!   contract every caller (partitioner, compiler, serving cache) relies
//!   on: *parallelism never changes what is computed, only when.*
//! * [`SingleFlight`] — a keyed exclusive section for concurrent caches:
//!   at most one thread computes a given key at a time, so two in-flight
//!   requests never duplicate a compile.
//! * [`resolve_threads`] / [`parse_threads`] — the shared `threads` knob:
//!   `0` means "use [`std::thread::available_parallelism`]", and the CLI
//!   helper parses `--threads N` uniformly across examples and bench
//!   binaries (rejecting `0` with an actionable error).
//!
//! ```
//! let squares = elk_par::par_map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! // Identical at any thread count — including sequential.
//! assert_eq!(squares, elk_par::par_map(1, &[1, 2, 3, 4, 5], |_, &x| x * x));
//! ```

#![warn(missing_docs)]

mod args;
mod flight;
mod pool;

pub use args::{extract_flag, parse_threads, validate_threads, ParsedThreads};
pub use flight::SingleFlight;
pub use pool::{par_map, resolve_threads, try_par_map};
