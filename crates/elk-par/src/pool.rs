//! The scoped work pool: index-ordered parallel map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Resolves a `threads` knob to a concrete worker count: `0` means
/// [`std::thread::available_parallelism`] (falling back to 1 if the
/// platform cannot report it), anything else is taken verbatim.
///
/// # Examples
///
/// ```
/// assert_eq!(elk_par::resolve_threads(3), 3);
/// assert!(elk_par::resolve_threads(0) >= 1);
/// ```
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads
/// (`0` = all available), returning results **in input order**.
///
/// Work is claimed item-by-item from a shared atomic counter, so uneven
/// item costs balance across workers; each result is written to its
/// input's slot, so the output is byte-identical at any thread count.
/// `f` receives `(index, &item)` and must not rely on call order.
///
/// With one worker (or fewer than two items) no threads are spawned and
/// the map runs inline — the sequential and parallel paths compute the
/// same values by construction.
///
/// # Panics
///
/// Panics if any invocation of `f` panicked (the scope joins all
/// workers first, then re-raises).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Per-item result slots: each index is claimed exactly once via the
    // atomic counter, so the slot locks never contend (`Mutex` rather
    // than `OnceLock` keeps the bound at `R: Send`).
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Fallible [`par_map`]: maps `f` over `items` in parallel and returns
/// either every success in input order or the error of the
/// **lowest-indexed** failing item — the same error a sequential loop
/// would surface, regardless of which worker hit it first.
///
/// All items are evaluated even when an early one fails (the pool has
/// no cancellation); callers that need short-circuiting should keep
/// their loop sequential.
///
/// # Errors
///
/// The first error by input index, if any item fails.
///
/// # Examples
///
/// ```
/// let r: Result<Vec<u32>, String> =
///     elk_par::try_par_map(4, &[2u32, 0, 4, 0], |i, &x| {
///         if x == 0 { Err(format!("item {i} is zero")) } else { Ok(x / 2) }
///     });
/// assert_eq!(r, Err("item 1 is zero".to_string()));
/// ```
pub fn try_par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map(threads, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolves_zero_to_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn output_order_is_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(threads, &items, |i, &x| x * 3 + i as u64), seq);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        par_map(8, &(0..100).collect::<Vec<usize>>(), |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed)
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let r: Result<Vec<u32>, usize> =
            try_par_map(8, &items, |i, &x| if x % 10 == 3 { Err(i) } else { Ok(x) });
        assert_eq!(r, Err(3));
        let ok: Result<Vec<u32>, usize> = try_par_map(8, &items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        par_map(4, &[1, 2, 3, 4], |i, _| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
