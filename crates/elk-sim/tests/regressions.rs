//! Regression tests for simulator bugs found during bring-up.

use elk_core::Compiler;
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_sim::{simulate, SimOptions};

/// The event loop once started new work only at the *next* event
/// boundary after a completion, idling the exec engine for the tail of
/// every in-flight preload (≈45% lost overlap). Guard: on a full
/// bandwidth-balanced model, Elk must overlap the large majority of the
/// makespan.
#[test]
fn exec_engine_does_not_idle_behind_preloads() {
    let system = presets::ipu_pod4();
    let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &system, &SimOptions::default());
    assert!(
        report.overlap_fraction() > 0.6,
        "overlap fraction {:.2} — the settle loop regressed",
        report.overlap_fraction()
    );
    // And the run must be near the HBM roofline, not 2x above it.
    let roofline = system
        .hbm
        .total_bandwidth()
        .transfer_time(graph.total_hbm_load());
    assert!(
        report.total < roofline * 1.25,
        "total {} vs roofline {}",
        report.total,
        roofline
    );
}

/// Trace rasterization once looped forever when a segment boundary fell
/// exactly on a bucket edge. Guard: tracing terminates and conserves the
/// traffic integral for many bucket counts (different boundary
/// alignments).
#[test]
fn trace_rasterization_terminates_and_conserves() {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 4;
    let graph = cfg.build(Workload::decode(32, 2048), 4);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    for samples in [7usize, 32, 48, 100, 255] {
        let report = simulate(
            &plan.program,
            &system,
            &SimOptions::default().with_trace(samples),
        );
        let trace = report.trace.expect("trace");
        assert_eq!(trace.hbm.len(), samples);
        let integral: f64 = trace.hbm.iter().sum::<f64>() * trace.dt.as_secs();
        let expect = report.hbm_bytes.as_f64();
        assert!(
            (integral - expect).abs() < 0.03 * expect,
            "samples {samples}: integral {integral:.3e} vs {expect:.3e}"
        );
    }
}

/// Zero-HBM operators (softmax, residuals) produce zero-length preloads
/// that must retire instantly without stalling the pipeline, in any
/// quantity.
#[test]
fn chains_of_instant_preloads_make_progress() {
    let system = presets::ipu_pod4();
    // DiT has long runs of on-chip-only operators between weight loads.
    let mut dit = zoo::dit_xl();
    dit.layers = 6;
    let graph = dit.build(Workload::decode(2, 256), 1);
    let single = presets::single_chip();
    let plan = Compiler::new(single.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &single, &SimOptions::default());
    assert!(report.total.as_secs() > 0.0);
    assert_eq!(report.capacity_violations, 0);
    let _ = system;
}

/// Different noise seeds produce different (but close) measurements —
/// the noise path is alive and bounded.
#[test]
fn noise_seed_perturbs_measurements_boundedly() {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::opt_30b();
    cfg.layers = 3;
    let graph = cfg.build(Workload::decode(16, 1024), 4);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let a = simulate(
        &plan.program,
        &system,
        &SimOptions {
            noise_seed: 1,
            ..SimOptions::default()
        },
    );
    let b = simulate(
        &plan.program,
        &system,
        &SimOptions {
            noise_seed: 2,
            ..SimOptions::default()
        },
    );
    assert_ne!(a.total, b.total);
    let ratio = a.total / b.total;
    assert!((0.9..1.1).contains(&ratio), "seed ratio {ratio}");
}
