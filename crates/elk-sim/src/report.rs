use serde::{Deserialize, Serialize};

use elk_units::{Bytes, FlopRate, Seconds};

/// Decomposition of the makespan into the paper's Fig. 18(a)/20
/// categories.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBuckets {
    /// Only the HBM/preload path is busy.
    pub preload: Seconds,
    /// Only the cores are busy.
    pub execute: Seconds,
    /// Preload and execution proceed simultaneously.
    pub overlapped: Seconds,
    /// Preload or execution are throttled by interconnect contention.
    pub interconnect: Seconds,
    /// Nothing in flight (sync gaps).
    pub idle: Seconds,
}

impl TimeBuckets {
    /// Sum of all buckets (equals the makespan).
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.preload + self.execute + self.overlapped + self.interconnect + self.idle
    }
}

/// Piecewise-constant bandwidth time series (Figs. 6–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Sample spacing.
    pub dt: Seconds,
    /// HBM read bandwidth per sample (bytes/s).
    pub hbm: Vec<f64>,
    /// Inter-core (core-to-core) bandwidth per sample (bytes/s,
    /// chip-wide).
    pub intercore: Vec<f64>,
    /// Total fabric bandwidth per sample including controller-to-core
    /// delivery (bytes/s, chip-wide).
    pub noc_total: Vec<f64>,
}

/// Measured outcome of one simulated model step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end makespan.
    pub total: Seconds,
    /// Makespan decomposition.
    pub buckets: TimeBuckets,
    /// DRAM bytes read.
    pub hbm_bytes: Bytes,
    /// Mean HBM bandwidth utilization over the makespan.
    pub hbm_util: f64,
    /// Mean interconnect utilization over the makespan (link-level, i.e.
    /// weighted by hop count).
    pub noc_util: f64,
    /// Portion of `noc_util` from operator preload (controller-to-core).
    pub noc_util_preload: f64,
    /// Portion of `noc_util` from inter-core sharing (distribution +
    /// compute-shift).
    pub noc_util_intercore: f64,
    /// Achieved compute throughput (total FLOPs / makespan), per chip.
    pub achieved: FlopRate,
    /// Per-operator execution spans.
    pub exec_spans: Vec<(Seconds, Seconds)>,
    /// Per-operator preload spans.
    pub preload_spans: Vec<(Seconds, Seconds)>,
    /// Peak per-core SRAM residency.
    pub peak_resident: Bytes,
    /// Residency events exceeding per-core SRAM (0 for sound plans).
    pub capacity_violations: usize,
    /// Optional bandwidth time series.
    pub trace: Option<Trace>,
}

impl SimReport {
    /// Fraction of the makespan with preload/execute overlapped.
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            (self.buckets.overlapped + self.buckets.interconnect) / self.total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_total() {
        let b = TimeBuckets {
            preload: Seconds::new(1.0),
            execute: Seconds::new(2.0),
            overlapped: Seconds::new(3.0),
            interconnect: Seconds::new(0.5),
            idle: Seconds::new(0.25),
        };
        assert!((b.total().as_secs() - 6.75).abs() < 1e-12);
    }
}
