//! Event-driven simulator for ICCA chips with HBM (paper §5, "Simulation
//! framework").
//!
//! The simulator executes a lowered [`elk_core::DeviceProgram`] under the
//! §4.5 hardware rules on a configurable system: per-core compute rates
//! from an [`elk_cost::AnalyticDevice`] (with measurement noise — the
//! simulator's timings deliberately differ from the compiler's learned
//! cost model, as real hardware differs from compile-time predictions),
//! an interconnect whose capacity is shared between HBM-controller
//! delivery and inter-core exchange, HBM channels, and inter-chip links.
//!
//! It is *flow-level* event-driven: each preload and each execution phase
//! (data distribution, compute-shift rotation, all-reduce) is a fluid flow
//! claiming fabric/HBM capacity; on every flow arrival or completion the
//! engine recomputes max-min fair rates. Sequential per-link packet
//! service and fair sharing are equivalent for bulk-transfer completion
//! times, which is all the §6 metrics consume.
//!
//! ```
//! use elk_core::Compiler;
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//! use elk_sim::{simulate, SimOptions};
//!
//! # fn main() -> Result<(), elk_core::CompileError> {
//! let mut cfg = zoo::llama2_13b();
//! cfg.layers = 2; // doctest-sized
//! let graph = cfg.build(Workload::decode(16, 512), 4);
//! let system = presets::ipu_pod4();
//! let plan = Compiler::new(system.clone()).compile(&graph)?;
//! let report = simulate(&plan.program, &system, &SimOptions::default());
//! assert!(report.total.as_secs() > 0.0);
//! assert_eq!(report.capacity_violations, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod options;
mod report;

pub use engine::simulate;
pub use options::SimOptions;
pub use report::{SimReport, TimeBuckets, Trace};
