use elk_core::{DeviceInstr, DeviceProgram};
use elk_cost::{AnalyticDevice, CostModel};
use elk_hw::{SramContention, SystemConfig};
use elk_units::{Bytes, FlopRate, Seconds};

use crate::{SimOptions, SimReport, TimeBuckets, Trace};

const EPS: f64 = 1e-15;

/// Simulates `program` on `system`.
///
/// Per-core compute times come from an [`AnalyticDevice`] with the
/// options' measurement noise; interconnect and HBM capacity are shared
/// between the active preload flow and the active execution phase with
/// max-min fairness (dedicated fabrics under
/// [`SimOptions::dedicated_interconnects`]).
///
/// # Panics
///
/// Panics if `program` is malformed (fails
/// [`DeviceProgram::validate`]) — compiled plans are always well-formed.
#[must_use]
pub fn simulate(program: &DeviceProgram, system: &SystemConfig, opts: &SimOptions) -> SimReport {
    program
        .validate()
        .expect("device program must be well-formed");
    Engine::new(program, system, opts).run()
}

/// Static per-operator quantities derived once.
struct OpCosts {
    compute_secs: f64,
    dist_bytes: f64,
    shift_bytes: f64,
    exec_noc_cap: f64,
    allreduce_secs: f64,
    pre_noc_bytes: f64,
    pre_cap: f64,
    dram_per_noc: f64,
    pre_latency: f64,
}

struct PreJob {
    op: usize,
    /// Execute index that must complete before this preload may start
    /// (§4.5 rule 1).
    barrier: Option<usize>,
}

enum ExecPhase {
    /// Gather the preload-state remainder from peers.
    Distribute {
        noc: f64,
    },
    /// Compute-shift rounds with SRAM blocking: traffic first, then
    /// compute (serialization order does not affect totals).
    Shift {
        noc: f64,
    },
    /// Concurrent SRAM: traffic and compute drain together.
    ShiftCompute {
        noc: f64,
        compute: f64,
    },
    Compute {
        secs: f64,
    },
    Allreduce {
        secs: f64,
    },
}

struct ActiveExec {
    op: usize,
    phase: ExecPhase,
}

struct ActivePre {
    op: usize,
    latency: f64,
    noc: f64,
}

struct Engine<'a> {
    program: &'a DeviceProgram,
    system: &'a SystemConfig,
    opts: &'a SimOptions,
    costs: Vec<OpCosts>,
    pre_jobs: Vec<PreJob>,
    fabric: f64,
    mean_hops: f64,
    blocking: bool,

    t: f64,
    next_pre: usize,
    next_exec: usize,
    active_pre: Option<ActivePre>,
    active_exec: Option<ActiveExec>,
    done_pre: Vec<bool>,
    done_exec: Vec<bool>,
    pre_span: Vec<(f64, f64)>,
    exec_span: Vec<(f64, f64)>,

    resident: Bytes,
    peak_resident: Bytes,
    violations: usize,

    buckets: TimeBuckets,
    hbm_bytes: f64,
    link_bytes_pre: f64,
    link_bytes_exec: f64,
    segments: Vec<Segment>,
}

#[derive(Clone, Copy)]
struct Segment {
    t0: f64,
    dt: f64,
    hbm_rate: f64,
    intercore_rate: f64,
    pre_noc_rate: f64,
}

impl<'a> Engine<'a> {
    fn new(program: &'a DeviceProgram, system: &'a SystemConfig, opts: &'a SimOptions) -> Self {
        let chip = &system.chip;
        let device = AnalyticDevice::of_chip(chip)
            .with_noise(opts.noise_sigma)
            .with_seed(opts.noise_seed);
        let fabric = chip
            .topology
            .effective_bulk_bandwidth(chip.cores)
            .bytes_per_sec();
        let mean_hops = chip.topology.mean_hops();
        let hbm_bw = system.hbm.total_bandwidth().bytes_per_sec();
        let injection = chip
            .topology
            .hbm_injection_bandwidth(chip.cores)
            .bytes_per_sec();
        let shift_bw = chip.topology.shift_bandwidth().bytes_per_sec();

        let costs = program
            .specs
            .iter()
            .map(|s| {
                let compute_secs = (device.tile_time(&s.tile) * s.chunks as f64).as_secs();
                let dist_bytes = s.distribute_traffic.as_f64() * s.cores_used as f64;
                let shift_bytes = s.shift_traffic.as_f64() * s.cores_used as f64;
                let exec_noc_cap = (shift_bw * s.cores_used as f64).min(fabric);
                let allreduce_secs = system.allreduce_time(s.allreduce).as_secs();
                let pre_noc_bytes = s.noc_preload_bytes.as_f64();
                let dram = s.hbm_load.as_f64();
                let (pre_cap, dram_per_noc, pre_latency) = if dram <= 0.0 {
                    (fabric, 0.0, 0.0)
                } else {
                    let ratio = pre_noc_bytes / dram; // replication >= 1
                    (
                        injection.min(hbm_bw * ratio).min(fabric),
                        1.0 / ratio,
                        system.hbm.access_latency.as_secs(),
                    )
                };
                OpCosts {
                    compute_secs,
                    dist_bytes,
                    shift_bytes,
                    exec_noc_cap,
                    allreduce_secs,
                    pre_noc_bytes,
                    pre_cap,
                    dram_per_noc,
                    pre_latency,
                }
            })
            .collect();

        let mut pre_jobs = Vec::new();
        let mut last_exec: Option<usize> = None;
        for instr in &program.instrs {
            match *instr {
                DeviceInstr::PreloadAsync { op } => pre_jobs.push(PreJob {
                    op: op.index(),
                    barrier: last_exec,
                }),
                DeviceInstr::Execute { op } => last_exec = Some(op.index()),
            }
        }

        let n = program.op_count();
        Engine {
            program,
            system,
            opts,
            costs,
            pre_jobs,
            fabric,
            mean_hops,
            blocking: chip.sram_contention == SramContention::Blocking,
            t: 0.0,
            next_pre: 0,
            next_exec: 0,
            active_pre: None,
            active_exec: None,
            done_pre: vec![false; n],
            done_exec: vec![false; n],
            pre_span: vec![(0.0, 0.0); n],
            exec_span: vec![(0.0, 0.0); n],
            resident: Bytes::ZERO,
            peak_resident: Bytes::ZERO,
            violations: 0,
            buckets: TimeBuckets::default(),
            hbm_bytes: 0.0,
            link_bytes_pre: 0.0,
            link_bytes_exec: 0.0,
            segments: Vec::new(),
        }
    }

    fn audit(&mut self) {
        if self.resident > self.peak_resident {
            self.peak_resident = self.resident;
        }
        if !self.opts.dedicated_interconnects
            && self.resident > self.system.chip.usable_sram_per_core()
        {
            self.violations += 1;
        }
    }

    fn try_start(&mut self) {
        if self.active_pre.is_none() && self.next_pre < self.pre_jobs.len() {
            let job = &self.pre_jobs[self.next_pre];
            if job.barrier.is_none_or(|e| self.done_exec[e]) {
                let op = job.op;
                self.pre_span[op].0 = self.t;
                self.resident += self.program.specs[op].preload_space;
                self.audit();
                self.active_pre = Some(ActivePre {
                    op,
                    latency: self.costs[op].pre_latency,
                    noc: self.costs[op].pre_noc_bytes,
                });
                self.next_pre += 1;
            }
        }
        if self.active_exec.is_none()
            && self.next_exec < self.done_exec.len()
            && self.done_pre[self.next_exec]
        {
            let op = self.next_exec;
            self.exec_span[op].0 = self.t;
            let spec = &self.program.specs[op];
            self.resident = self.resident.saturating_sub(spec.preload_space) + spec.exec_space;
            self.audit();
            self.active_exec = Some(ActiveExec {
                op,
                phase: self.first_phase(op),
            });
        }
    }

    fn first_phase(&self, op: usize) -> ExecPhase {
        let c = &self.costs[op];
        if c.dist_bytes > 0.0 {
            ExecPhase::Distribute { noc: c.dist_bytes }
        } else {
            self.after_distribute(op)
        }
    }

    fn after_distribute(&self, op: usize) -> ExecPhase {
        let c = &self.costs[op];
        if self.blocking {
            if c.shift_bytes > 0.0 {
                ExecPhase::Shift { noc: c.shift_bytes }
            } else {
                ExecPhase::Compute {
                    secs: c.compute_secs,
                }
            }
        } else {
            ExecPhase::ShiftCompute {
                noc: c.shift_bytes,
                compute: c.compute_secs,
            }
        }
    }

    /// Max-min fair fabric split between the preload flow and the
    /// execution phase. Returns `(pre_rate, exec_rate, contended)`.
    fn rates(&self) -> (f64, f64, bool) {
        let cap_pre = match &self.active_pre {
            Some(p) if p.latency <= EPS && p.noc > EPS => self.costs[p.op].pre_cap,
            _ => 0.0,
        };
        let cap_exec = match &self.active_exec {
            Some(e) => match &e.phase {
                ExecPhase::Distribute { noc }
                | ExecPhase::Shift { noc }
                | ExecPhase::ShiftCompute { noc, .. }
                    if *noc > EPS =>
                {
                    self.costs[e.op].exec_noc_cap
                }
                _ => 0.0,
            },
            None => 0.0,
        };
        if self.opts.dedicated_interconnects {
            return (cap_pre.min(self.fabric), cap_exec.min(self.fabric), false);
        }
        if cap_pre + cap_exec <= self.fabric {
            return (cap_pre, cap_exec, false);
        }
        let half = self.fabric / 2.0;
        let (pre, exec) = if cap_pre <= half {
            (cap_pre, self.fabric - cap_pre)
        } else if cap_exec <= half {
            (self.fabric - cap_exec, cap_exec)
        } else {
            (half, half)
        };
        (pre, exec, true)
    }

    /// Earliest completion among active flow components.
    fn next_event(&self, pre_rate: f64, exec_rate: f64) -> f64 {
        let mut dt = f64::INFINITY;
        if let Some(p) = &self.active_pre {
            if p.latency > EPS {
                dt = dt.min(p.latency);
            } else if p.noc > EPS && pre_rate > 0.0 {
                dt = dt.min(p.noc / pre_rate);
            }
        }
        if let Some(e) = &self.active_exec {
            match &e.phase {
                ExecPhase::Distribute { noc } | ExecPhase::Shift { noc } => {
                    if exec_rate > 0.0 {
                        dt = dt.min(noc / exec_rate);
                    }
                }
                ExecPhase::ShiftCompute { noc, compute } => {
                    if *noc > EPS && exec_rate > 0.0 {
                        dt = dt.min(noc / exec_rate);
                    }
                    if *compute > EPS {
                        dt = dt.min(*compute);
                    }
                }
                ExecPhase::Compute { secs } | ExecPhase::Allreduce { secs } => {
                    dt = dt.min(*secs);
                }
            }
        }
        dt
    }

    fn advance(&mut self, dt: f64, pre_rate: f64, exec_rate: f64, contended: bool) {
        // Accounting first (rates constant over dt).
        let mut hbm_rate = 0.0;
        if let Some(p) = &self.active_pre {
            if p.latency <= EPS {
                hbm_rate = pre_rate * self.costs[p.op].dram_per_noc;
            }
        }
        self.hbm_bytes += hbm_rate * dt;
        self.link_bytes_pre += pre_rate * dt * self.mean_hops;
        self.link_bytes_exec += exec_rate * dt;
        let pre_active = self.active_pre.is_some();
        let exec_active = self.active_exec.is_some();
        let d = Seconds::new(dt);
        if contended && (pre_active || exec_active) {
            self.buckets.interconnect += d;
        } else if pre_active && exec_active {
            self.buckets.overlapped += d;
        } else if exec_active {
            self.buckets.execute += d;
        } else if pre_active {
            self.buckets.preload += d;
        } else {
            self.buckets.idle += d;
        }
        if self.opts.trace_samples > 0 && dt > 0.0 {
            self.segments.push(Segment {
                t0: self.t,
                dt,
                hbm_rate,
                intercore_rate: exec_rate,
                pre_noc_rate: pre_rate,
            });
        }

        // Drain.
        if let Some(p) = &mut self.active_pre {
            if p.latency > EPS {
                p.latency -= dt;
            } else {
                p.noc -= pre_rate * dt;
            }
        }
        if let Some(e) = &mut self.active_exec {
            match &mut e.phase {
                ExecPhase::Distribute { noc } | ExecPhase::Shift { noc } => {
                    *noc -= exec_rate * dt;
                }
                ExecPhase::ShiftCompute { noc, compute } => {
                    *noc -= exec_rate * dt;
                    *compute -= dt;
                }
                ExecPhase::Compute { secs } | ExecPhase::Allreduce { secs } => *secs -= dt,
            }
        }
        self.t += dt;
    }

    /// Retires finished flows and advances execution phases.
    fn complete(&mut self) {
        if let Some(p) = &self.active_pre {
            if p.latency <= EPS && p.noc <= EPS {
                let op = p.op;
                self.done_pre[op] = true;
                self.pre_span[op].1 = self.t;
                self.active_pre = None;
            }
        }
        while let Some(e) = &self.active_exec {
            let op = e.op;
            let next = match &e.phase {
                ExecPhase::Distribute { noc } if *noc <= EPS => Some(self.after_distribute(op)),
                ExecPhase::Shift { noc } if *noc <= EPS => Some(ExecPhase::Compute {
                    secs: self.costs[op].compute_secs,
                }),
                ExecPhase::ShiftCompute { noc, compute } if *noc <= EPS && *compute <= EPS => {
                    Some(ExecPhase::Allreduce {
                        secs: self.costs[op].allreduce_secs,
                    })
                }
                ExecPhase::Compute { secs } if *secs <= EPS => Some(ExecPhase::Allreduce {
                    secs: self.costs[op].allreduce_secs,
                }),
                ExecPhase::Allreduce { secs } if *secs <= EPS => None,
                _ => break,
            };
            match next {
                Some(phase) => {
                    self.active_exec = Some(ActiveExec { op, phase });
                }
                None => {
                    self.done_exec[op] = true;
                    self.exec_span[op].1 = self.t;
                    self.resident = self
                        .resident
                        .saturating_sub(self.program.specs[op].exec_space);
                    self.active_exec = None;
                    self.next_exec = op + 1;
                }
            }
        }
    }

    /// Retires and starts work until the instant is stable: completions
    /// unblock starts, zero-length preloads retire immediately, and
    /// freshly-started flows may themselves be empty.
    fn settle(&mut self) {
        loop {
            self.complete();
            let before = (
                self.active_pre.is_some(),
                self.active_exec.is_some(),
                self.next_pre,
                self.next_exec,
            );
            self.try_start();
            self.complete();
            let after = (
                self.active_pre.is_some(),
                self.active_exec.is_some(),
                self.next_pre,
                self.next_exec,
            );
            if before == after {
                break;
            }
        }
    }

    fn run(mut self) -> SimReport {
        let n = self.done_exec.len();
        let limit = 60 * n + 10_000;
        let mut iter = 0usize;
        loop {
            iter += 1;
            assert!(iter < limit, "simulator exceeded event budget (bug)");
            self.settle();
            if self.next_exec >= n && self.active_exec.is_none() {
                break;
            }
            // Progress must be possible: program validity guarantees the
            // next preload's barrier is satisfied eventually.
            assert!(
                self.active_pre.is_some() || self.active_exec.is_some(),
                "simulator deadlock at t={} (op {})",
                self.t,
                self.next_exec
            );
            let (pre_rate, exec_rate, contended) = self.rates();
            let dt = self.next_event(pre_rate, exec_rate);
            assert!(
                dt.is_finite() && dt > 0.0,
                "stalled event loop at t={} (dt={dt})",
                self.t
            );
            self.advance(dt, pre_rate, exec_rate, contended);
        }
        self.finish()
    }

    fn finish(self) -> SimReport {
        let total = Seconds::new(self.t.max(0.0));
        let chip = &self.system.chip;
        let raw_noc = chip.topology.total_bandwidth(chip.cores).bytes_per_sec();
        let hbm_bw = self.system.hbm.total_bandwidth().bytes_per_sec();
        let denom = (self.t.max(1e-30)) * raw_noc;
        let noc_util_preload = self.link_bytes_pre / denom;
        let noc_util_intercore = self.link_bytes_exec / denom;
        let flops: f64 = self.program.specs.iter().map(|s| s.flops.get()).sum();

        let trace = if self.opts.trace_samples > 0 {
            Some(rasterize(&self.segments, self.t, self.opts.trace_samples))
        } else {
            None
        };

        SimReport {
            total,
            buckets: self.buckets,
            hbm_bytes: Bytes::new(self.hbm_bytes as u64),
            hbm_util: self.hbm_bytes / (self.t.max(1e-30) * hbm_bw),
            noc_util: noc_util_preload + noc_util_intercore,
            noc_util_preload,
            noc_util_intercore,
            achieved: FlopRate::new(flops / self.t.max(1e-30)),
            exec_spans: to_spans(&self.exec_span),
            preload_spans: to_spans(&self.pre_span),
            peak_resident: self.peak_resident,
            capacity_violations: self.violations,
            trace,
        }
    }
}

fn to_spans(raw: &[(f64, f64)]) -> Vec<(Seconds, Seconds)> {
    raw.iter()
        .map(|&(s, e)| (Seconds::new(s.max(0.0)), Seconds::new(e.max(0.0))))
        .collect()
}

fn rasterize(segments: &[Segment], total: f64, samples: usize) -> Trace {
    let dt = (total / samples as f64).max(1e-30);
    let mut hbm = vec![0.0; samples];
    let mut intercore = vec![0.0; samples];
    let mut noc = vec![0.0; samples];
    for seg in segments {
        let (mut t, end) = (seg.t0, seg.t0 + seg.dt);
        while t < end {
            let idx = ((t / dt) as usize).min(samples - 1);
            let mut bucket_end = ((idx + 1) as f64 * dt).min(end);
            if bucket_end <= t {
                // Floating-point boundary: force progress by at least one
                // bucket width.
                bucket_end = (t + dt).min(end).max(t * (1.0 + 1e-12) + 1e-300);
            }
            let w = (bucket_end - t) / dt;
            hbm[idx] += seg.hbm_rate * w;
            intercore[idx] += seg.intercore_rate * w;
            noc[idx] += (seg.intercore_rate + seg.pre_noc_rate) * w;
            t = bucket_end;
        }
    }
    Trace {
        dt: Seconds::new(dt),
        hbm,
        intercore,
        noc_total: noc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_core::Compiler;
    use elk_hw::presets;
    use elk_model::{zoo, ModelGraph, Workload};

    fn small_graph() -> ModelGraph {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 3;
        cfg.build(Workload::decode(16, 1024), 4)
    }

    fn compiled() -> (SystemConfig, DeviceProgram) {
        let system = presets::ipu_pod4();
        let plan = Compiler::new(system.clone())
            .compile(&small_graph())
            .expect("compile");
        (system, plan.program)
    }

    #[test]
    fn simulation_terminates_and_accounts_time() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default());
        assert!(rep.total > Seconds::ZERO);
        let sum = rep.buckets.total().as_secs();
        assert!(
            (sum - rep.total.as_secs()).abs() < 1e-9 * rep.total.as_secs().max(1.0),
            "buckets {sum} vs total {}",
            rep.total.as_secs()
        );
    }

    #[test]
    fn utilizations_are_fractions() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default());
        assert!(
            (0.0..=1.0 + 1e-9).contains(&rep.hbm_util),
            "{}",
            rep.hbm_util
        );
        assert!(
            rep.noc_util >= 0.0 && rep.noc_util <= 1.0 + 1e-9,
            "{}",
            rep.noc_util
        );
        assert!(rep.hbm_util > 0.05, "HBM should be meaningfully used");
    }

    #[test]
    fn hbm_bytes_match_program() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default());
        let expect: u64 = program.specs.iter().map(|s| s.hbm_load.get()).sum();
        let got = rep.hbm_bytes.get();
        let err = (got as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.01, "dram bytes {got} vs {expect}");
    }

    #[test]
    fn elk_plan_has_no_capacity_violations() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default());
        assert_eq!(rep.capacity_violations, 0);
        assert!(rep.peak_resident <= system.chip.usable_sram_per_core());
    }

    #[test]
    fn ideal_fabric_is_no_slower() {
        let (system, program) = compiled();
        let shared = simulate(&program, &system, &SimOptions::default());
        let ideal = simulate(&program, &system, &SimOptions::ideal());
        assert!(ideal.total <= shared.total + Seconds::from_micros(1.0));
        assert_eq!(ideal.buckets.interconnect, Seconds::ZERO);
    }

    #[test]
    fn spans_respect_program_rules() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default());
        // Done-tag rule.
        for (e, p) in rep.exec_spans.iter().zip(&rep.preload_spans) {
            assert!(e.0 >= p.1);
        }
        // Sequential executes.
        for w in rep.exec_spans.windows(2) {
            assert!(w[1].0 >= w[0].1);
        }
        // Sequential preloads in issue order.
        let order = program.preload_order();
        for w in order.windows(2) {
            let a = rep.preload_spans[w[0].index()];
            let b = rep.preload_spans[w[1].index()];
            assert!(b.0 >= a.1);
        }
    }

    #[test]
    fn trace_covers_makespan() {
        let (system, program) = compiled();
        let rep = simulate(&program, &system, &SimOptions::default().with_trace(64));
        let trace = rep.trace.expect("trace requested");
        assert_eq!(trace.hbm.len(), 64);
        // Mean traced HBM rate must reproduce total bytes.
        let traced: f64 = trace.hbm.iter().sum::<f64>() * trace.dt.as_secs();
        let err = (traced - rep.hbm_bytes.as_f64()).abs() / rep.hbm_bytes.as_f64();
        assert!(err < 0.02, "traced {traced} vs {}", rep.hbm_bytes);
    }

    #[test]
    fn mesh_suffers_more_contention_than_all_to_all() {
        let graph = small_graph();
        let a2a_sys = presets::ipu_pod4();
        let mesh_sys = presets::ipu_pod4_mesh();
        let a2a = Compiler::new(a2a_sys.clone()).compile(&graph).unwrap();
        let mesh = Compiler::new(mesh_sys.clone()).compile(&graph).unwrap();
        let ra = simulate(&a2a.program, &a2a_sys, &SimOptions::default());
        let rm = simulate(&mesh.program, &mesh_sys, &SimOptions::default());
        // Fig. 21: mesh chips show higher link-level utilization because
        // every transfer pays multiple hops.
        assert!(
            rm.noc_util > ra.noc_util,
            "mesh {:.3} vs a2a {:.3}",
            rm.noc_util,
            ra.noc_util
        );
    }
}
