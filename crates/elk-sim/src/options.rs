use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Relative magnitude of the deterministic per-tile timing noise
    /// (models hardware variance the compiler did not see).
    pub noise_sigma: f64,
    /// Seed of the timing noise.
    pub noise_seed: u64,
    /// Give preload and execution dedicated interconnects and skip the
    /// capacity audit — the §6.1 *Ideal* roofline assumption.
    pub dedicated_interconnects: bool,
    /// Number of samples in the bandwidth-demand time series (0 = no
    /// trace).
    pub trace_samples: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            noise_sigma: 0.05,
            noise_seed: 0x5eed,
            dedicated_interconnects: false,
            trace_samples: 0,
        }
    }
}

impl SimOptions {
    /// Options for the Ideal roofline run.
    #[must_use]
    pub fn ideal() -> Self {
        SimOptions {
            dedicated_interconnects: true,
            ..SimOptions::default()
        }
    }

    /// Enables bandwidth tracing with `samples` buckets.
    #[must_use]
    pub fn with_trace(mut self, samples: usize) -> Self {
        self.trace_samples = samples;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_has_dedicated_fabric() {
        assert!(SimOptions::ideal().dedicated_interconnects);
        assert!(!SimOptions::default().dedicated_interconnects);
    }
}
