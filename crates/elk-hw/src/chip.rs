use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, FlopRate};

use crate::Topology;

/// How a core's local SRAM arbitrates between the compute pipeline and
/// remote (inter-core) accesses.
///
/// On IPU-like chips the local pipeline reads SRAM at full width and *any*
/// other access pauses execution (paper §2.3 "memory access contention",
/// footnote 2), so remote service time adds to compute time. Other designs
/// dual-port the SRAM, letting remote traffic overlap with compute.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SramContention {
    /// Remote accesses block the compute pipeline (IPU behaviour).
    #[default]
    Blocking,
    /// Remote accesses proceed concurrently with compute.
    Concurrent,
}

/// One ICCA chip: parallel cores with private SRAM joined by an on-chip
/// interconnect.
///
/// # Examples
///
/// ```
/// use elk_hw::presets;
/// use elk_units::Bytes;
///
/// let chip = presets::ipu_pod4().chip;
/// assert_eq!(chip.sram_per_core, Bytes::kib(624));
/// assert_eq!(chip.total_sram(), Bytes::kib(624 * 1472));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Chip name for reports.
    pub name: String,
    /// Number of cores.
    pub cores: u64,
    /// Scratchpad SRAM per core.
    pub sram_per_core: Bytes,
    /// SRAM reserved per core for the inter-core transfer buffer (the
    /// paper's Elk reserves 8 KB, §5).
    pub io_buffer_per_core: Bytes,
    /// Peak MatMul throughput per core (systolic/AMP units).
    pub matmul_rate_per_core: FlopRate,
    /// Peak vector/elementwise throughput per core.
    pub vector_rate_per_core: FlopRate,
    /// Local SRAM port bandwidth per core.
    pub sram_bw_per_core: ByteRate,
    /// SRAM arbitration behaviour.
    pub sram_contention: SramContention,
    /// On-chip interconnect.
    pub topology: Topology,
}

impl ChipConfig {
    /// Total on-chip SRAM.
    #[must_use]
    pub fn total_sram(&self) -> Bytes {
        self.sram_per_core * self.cores
    }

    /// Per-core SRAM available to the compiler after the reserved transfer
    /// buffer.
    #[must_use]
    pub fn usable_sram_per_core(&self) -> Bytes {
        self.sram_per_core.saturating_sub(self.io_buffer_per_core)
    }

    /// Peak MatMul throughput of the whole chip.
    #[must_use]
    pub fn matmul_rate(&self) -> FlopRate {
        self.matmul_rate_per_core * self.cores
    }

    /// Peak vector throughput of the whole chip.
    #[must_use]
    pub fn vector_rate(&self) -> FlopRate {
        self.vector_rate_per_core * self.cores
    }

    /// Aggregate interconnect bandwidth.
    #[must_use]
    pub fn noc_bandwidth(&self) -> ByteRate {
        self.topology.total_bandwidth(self.cores)
    }

    /// Re-sizes the chip to `cores`, preserving per-core resources and the
    /// aggregate-per-core interconnect provisioning (Fig. 23's core-count
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn with_cores(&self, cores: u64) -> ChipConfig {
        assert!(cores > 0, "chip needs at least one core");
        let per_core_total = self.noc_bandwidth() / self.cores;
        let topology = match self.topology {
            Topology::AllToAll { .. } => {
                Topology::all_to_all_with_total(per_core_total * cores, cores)
            }
            Topology::Mesh2d { .. } => Topology::mesh_with_total(per_core_total * cores, cores),
        };
        ChipConfig {
            cores,
            topology,
            ..self.clone()
        }
    }

    /// Re-provisions the interconnect to `total` aggregate bandwidth,
    /// keeping the topology family (Fig. 22's NoC sweep).
    #[must_use]
    pub fn with_noc_bandwidth(&self, total: ByteRate) -> ChipConfig {
        let topology = match self.topology {
            Topology::AllToAll { .. } => Topology::all_to_all_with_total(total, self.cores),
            Topology::Mesh2d { .. } => Topology::mesh_with_total(total, self.cores),
        };
        ChipConfig {
            topology,
            ..self.clone()
        }
    }

    /// Scales per-core compute rates by `factor` (Fig. 24's FLOPS sweep).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn with_compute_scale(&self, factor: f64) -> ChipConfig {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compute scale must be positive, got {factor}"
        );
        ChipConfig {
            matmul_rate_per_core: self.matmul_rate_per_core * factor,
            vector_rate_per_core: self.vector_rate_per_core * factor,
            ..self.clone()
        }
    }
}

impl fmt::Display for ChipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cores x {} SRAM, {} matmul, {}",
            self.name,
            self.cores,
            self.sram_per_core,
            self.matmul_rate(),
            self.topology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn usable_sram_excludes_io_buffer() {
        let chip = presets::ipu_pod4().chip;
        assert_eq!(chip.usable_sram_per_core(), Bytes::kib(624) - Bytes::kib(8));
    }

    #[test]
    fn with_cores_preserves_per_core_noc() {
        let chip = presets::ipu_pod4().chip;
        let big = chip.with_cores(2944);
        let per_core_before = chip.noc_bandwidth().bytes_per_sec() / chip.cores as f64;
        let per_core_after = big.noc_bandwidth().bytes_per_sec() / big.cores as f64;
        assert!((per_core_before - per_core_after).abs() / per_core_before < 1e-9);
    }

    #[test]
    fn with_noc_bandwidth_hits_target() {
        let chip = presets::ipu_pod4().chip;
        let target = elk_units::ByteRate::tib_per_sec(12.0);
        let re = chip.with_noc_bandwidth(target);
        let got = re.noc_bandwidth().bytes_per_sec();
        assert!((got - target.bytes_per_sec()).abs() / got < 0.01);
    }

    #[test]
    fn compute_scale() {
        let chip = presets::ipu_pod4().chip;
        let fast = chip.with_compute_scale(2.0);
        assert!(
            (fast.matmul_rate().get() - 2.0 * chip.matmul_rate().get()).abs()
                / fast.matmul_rate().get()
                < 1e-12
        );
    }
}
