use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, FlopRate, Seconds};

use crate::{ChipConfig, CollectiveModel, HbmConfig, InterChipTopology};

/// A pod of identical ICCA chips with per-chip HBM and inter-chip links,
/// running tensor-parallel model execution (§5 emulation framework).
///
/// # Examples
///
/// ```
/// use elk_hw::presets;
/// use elk_units::ByteRate;
///
/// let sys = presets::ipu_pod4();
/// // 4 chips x 4 TiB/s HBM each = 16 TiB/s pod bandwidth.
/// assert!(sys.total_hbm_bandwidth().bytes_per_sec()
///     > ByteRate::tib_per_sec(15.9).bytes_per_sec());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The (identical) chip description.
    pub chip: ChipConfig,
    /// HBM attached to each chip.
    pub hbm: HbmConfig,
    /// Number of chips.
    pub chips: u64,
    /// Aggregate inter-chip bandwidth of the pod.
    pub inter_chip_bw: ByteRate,
    /// Inter-chip link arrangement the collectives are priced on
    /// (ring by default — the historical behaviour).
    pub inter_chip_topology: InterChipTopology,
}

impl SystemConfig {
    /// Pod-wide HBM bandwidth.
    #[must_use]
    pub fn total_hbm_bandwidth(&self) -> ByteRate {
        self.hbm.total_bandwidth() * self.chips
    }

    /// Pod-wide peak MatMul throughput.
    #[must_use]
    pub fn total_matmul_rate(&self) -> FlopRate {
        self.chip.matmul_rate() * self.chips
    }

    /// Pod-wide peak vector throughput.
    #[must_use]
    pub fn total_vector_rate(&self) -> FlopRate {
        self.chip.vector_rate() * self.chips
    }

    /// Pod-wide on-chip SRAM.
    #[must_use]
    pub fn total_sram(&self) -> Bytes {
        self.chip.total_sram() * self.chips
    }

    /// The collective cost model for this pod on its own link
    /// arrangement: each chip gets an even share of the aggregate
    /// inter-chip bandwidth.
    #[must_use]
    pub fn collective(&self) -> CollectiveModel {
        self.collective_on(self.inter_chip_topology)
    }

    /// The collective cost model for this pod under an explicit
    /// `topology` (what-if pricing without rebuilding the system).
    #[must_use]
    pub fn collective_on(&self, topology: InterChipTopology) -> CollectiveModel {
        CollectiveModel::new(self.chips, self.inter_chip_bw / self.chips, topology)
    }

    /// Time for one all-reduce of `volume` (already per-chip sharded)
    /// across the pod. With model parallelism the reduced activations
    /// are small, so a bandwidth term with a per-step latency suffices
    /// (§5: "little inter-chip communication overhead"). Delegates to
    /// [`CollectiveModel`] so the compiler, simulator, and cluster
    /// planner always agree on collective cost.
    #[must_use]
    pub fn allreduce_time(&self, volume: Bytes) -> Seconds {
        self.collective().all_reduce(volume)
    }

    /// This pod rewired with `topology` inter-chip links (same chips
    /// and bandwidth).
    #[must_use]
    pub fn with_inter_chip_topology(&self, topology: InterChipTopology) -> SystemConfig {
        SystemConfig {
            inter_chip_topology: topology,
            ..self.clone()
        }
    }

    /// A chip group carved out of this pod: `chips` of the same chips
    /// with a proportional share of the aggregate inter-chip bandwidth.
    /// Carving the whole pod returns it unchanged (bit-identical
    /// bandwidth, no rescaling round-trip).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or exceeds the pod size.
    #[must_use]
    pub fn subpod(&self, chips: u64) -> SystemConfig {
        assert!(
            chips >= 1 && chips <= self.chips,
            "subpod of {chips} chips from a {}-chip pod",
            self.chips
        );
        if chips == self.chips {
            return self.clone();
        }
        SystemConfig {
            chips,
            inter_chip_bw: self.inter_chip_bw / self.chips * chips,
            ..self.clone()
        }
    }

    /// Re-provisions pod HBM to `total` aggregate bandwidth split evenly
    /// across chips (the "HBM BW" axes of Figs. 19–22).
    #[must_use]
    pub fn with_total_hbm_bandwidth(&self, total: ByteRate) -> SystemConfig {
        SystemConfig {
            hbm: self.hbm.with_total_bandwidth(total / self.chips),
            ..self.clone()
        }
    }

    /// Re-provisions the pod-wide interconnect (sum over chips) to
    /// `total` (the "NoC BW" axis of Fig. 22).
    #[must_use]
    pub fn with_total_noc_bandwidth(&self, total: ByteRate) -> SystemConfig {
        SystemConfig {
            chip: self.chip.with_noc_bandwidth(total / self.chips),
            ..self.clone()
        }
    }

    /// Re-sizes every chip to `cores` and scales HBM to keep
    /// `hbm_per_core` (Fig. 23 uses 2.7 GB/s per core).
    #[must_use]
    pub fn with_cores_and_hbm_per_core(&self, cores: u64, hbm_per_core: ByteRate) -> SystemConfig {
        SystemConfig {
            chip: self.chip.with_cores(cores),
            hbm: self.hbm.with_total_bandwidth(hbm_per_core * cores),
            ..self.clone()
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x [{} | {}] inter-chip {}",
            self.chips, self.chip, self.hbm, self.inter_chip_bw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn allreduce_zero_for_single_chip() {
        let mut sys = presets::ipu_pod4();
        sys.chips = 1;
        assert_eq!(sys.allreduce_time(Bytes::mib(1)), Seconds::ZERO);
    }

    #[test]
    fn allreduce_scales_with_volume() {
        let sys = presets::ipu_pod4();
        let small = sys.allreduce_time(Bytes::kib(64));
        let large = sys.allreduce_time(Bytes::mib(64));
        assert!(large > small);
        // Decode activations (~320 KB) must reduce in well under 100 us.
        assert!(sys.allreduce_time(Bytes::kib(320)) < Seconds::from_micros(100.0));
    }

    #[test]
    fn subpod_shares_bandwidth_proportionally() {
        let sys = presets::ipu_pod4();
        let half = sys.subpod(2);
        assert_eq!(half.chips, 2);
        assert_eq!(half.chip, sys.chip);
        let per_chip = sys.inter_chip_bw / sys.chips;
        assert_eq!(half.inter_chip_bw, per_chip * 2u64);
        // Whole-pod carve is the pod, bit for bit.
        assert_eq!(sys.subpod(4), sys);
    }

    #[test]
    #[should_panic(expected = "subpod")]
    fn oversized_subpod_rejected() {
        let _ = presets::ipu_pod4().subpod(5);
    }

    #[test]
    fn hbm_sweep_splits_across_chips() {
        let sys = presets::ipu_pod4();
        let swept = sys.with_total_hbm_bandwidth(ByteRate::tib_per_sec(8.0));
        let got = swept.total_hbm_bandwidth() / ByteRate::tib_per_sec(8.0);
        assert!((got - 1.0).abs() < 1e-9);
        assert_eq!(swept.hbm.channels, sys.hbm.channels);
    }

    #[test]
    fn core_sweep_keeps_hbm_per_core() {
        let sys = presets::ipu_pod4();
        let per_core = ByteRate::new(2.7e9);
        for cores in [1000u64, 1472, 2944] {
            let s = sys.with_cores_and_hbm_per_core(cores, per_core);
            let got = s.hbm.total_bandwidth().bytes_per_sec() / cores as f64;
            assert!((got - 2.7e9).abs() / 2.7e9 < 1e-9);
        }
    }
}
