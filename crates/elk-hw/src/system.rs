use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, FlopRate, Seconds};

use crate::{ChipConfig, HbmConfig};

/// A pod of identical ICCA chips with per-chip HBM and inter-chip links,
/// running tensor-parallel model execution (§5 emulation framework).
///
/// # Examples
///
/// ```
/// use elk_hw::presets;
/// use elk_units::ByteRate;
///
/// let sys = presets::ipu_pod4();
/// // 4 chips x 4 TiB/s HBM each = 16 TiB/s pod bandwidth.
/// assert!(sys.total_hbm_bandwidth().bytes_per_sec()
///     > ByteRate::tib_per_sec(15.9).bytes_per_sec());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The (identical) chip description.
    pub chip: ChipConfig,
    /// HBM attached to each chip.
    pub hbm: HbmConfig,
    /// Number of chips.
    pub chips: u64,
    /// Aggregate inter-chip bandwidth of the pod.
    pub inter_chip_bw: ByteRate,
}

impl SystemConfig {
    /// Pod-wide HBM bandwidth.
    #[must_use]
    pub fn total_hbm_bandwidth(&self) -> ByteRate {
        self.hbm.total_bandwidth() * self.chips
    }

    /// Pod-wide peak MatMul throughput.
    #[must_use]
    pub fn total_matmul_rate(&self) -> FlopRate {
        self.chip.matmul_rate() * self.chips
    }

    /// Pod-wide peak vector throughput.
    #[must_use]
    pub fn total_vector_rate(&self) -> FlopRate {
        self.chip.vector_rate() * self.chips
    }

    /// Pod-wide on-chip SRAM.
    #[must_use]
    pub fn total_sram(&self) -> Bytes {
        self.chip.total_sram() * self.chips
    }

    /// Time for one ring all-reduce of `volume` (already per-chip sharded)
    /// across the pod. With model parallelism the reduced activations are
    /// small, so a bandwidth term with a per-step latency suffices
    /// (§5: "little inter-chip communication overhead").
    #[must_use]
    pub fn allreduce_time(&self, volume: Bytes) -> Seconds {
        if self.chips <= 1 || volume.is_zero() {
            return Seconds::ZERO;
        }
        // Ring all-reduce moves 2·(chips-1)/chips of the volume per chip
        // over its share of the inter-chip links.
        let per_chip_bw = self.inter_chip_bw / self.chips;
        let factor = 2.0 * (self.chips - 1) as f64 / self.chips as f64;
        let hop_latency = Seconds::new(1e-6) * (self.chips - 1) as f64;
        per_chip_bw.transfer_time(volume.scale(factor)) + hop_latency
    }

    /// Re-provisions pod HBM to `total` aggregate bandwidth split evenly
    /// across chips (the "HBM BW" axes of Figs. 19–22).
    #[must_use]
    pub fn with_total_hbm_bandwidth(&self, total: ByteRate) -> SystemConfig {
        SystemConfig {
            hbm: self.hbm.with_total_bandwidth(total / self.chips),
            ..self.clone()
        }
    }

    /// Re-provisions the pod-wide interconnect (sum over chips) to
    /// `total` (the "NoC BW" axis of Fig. 22).
    #[must_use]
    pub fn with_total_noc_bandwidth(&self, total: ByteRate) -> SystemConfig {
        SystemConfig {
            chip: self.chip.with_noc_bandwidth(total / self.chips),
            ..self.clone()
        }
    }

    /// Re-sizes every chip to `cores` and scales HBM to keep
    /// `hbm_per_core` (Fig. 23 uses 2.7 GB/s per core).
    #[must_use]
    pub fn with_cores_and_hbm_per_core(&self, cores: u64, hbm_per_core: ByteRate) -> SystemConfig {
        SystemConfig {
            chip: self.chip.with_cores(cores),
            hbm: self.hbm.with_total_bandwidth(hbm_per_core * cores),
            ..self.clone()
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x [{} | {}] inter-chip {}",
            self.chips, self.chip, self.hbm, self.inter_chip_bw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn allreduce_zero_for_single_chip() {
        let mut sys = presets::ipu_pod4();
        sys.chips = 1;
        assert_eq!(sys.allreduce_time(Bytes::mib(1)), Seconds::ZERO);
    }

    #[test]
    fn allreduce_scales_with_volume() {
        let sys = presets::ipu_pod4();
        let small = sys.allreduce_time(Bytes::kib(64));
        let large = sys.allreduce_time(Bytes::mib(64));
        assert!(large > small);
        // Decode activations (~320 KB) must reduce in well under 100 us.
        assert!(sys.allreduce_time(Bytes::kib(320)) < Seconds::from_micros(100.0));
    }

    #[test]
    fn hbm_sweep_splits_across_chips() {
        let sys = presets::ipu_pod4();
        let swept = sys.with_total_hbm_bandwidth(ByteRate::tib_per_sec(8.0));
        let got = swept.total_hbm_bandwidth() / ByteRate::tib_per_sec(8.0);
        assert!((got - 1.0).abs() < 1e-9);
        assert_eq!(swept.hbm.channels, sys.hbm.channels);
    }

    #[test]
    fn core_sweep_keeps_hbm_per_core() {
        let sys = presets::ipu_pod4();
        let per_core = ByteRate::new(2.7e9);
        for cores in [1000u64, 1472, 2944] {
            let s = sys.with_cores_and_hbm_per_core(cores, per_core);
            let got = s.hbm.total_bandwidth().bytes_per_sec() / cores as f64;
            assert!((got - 2.7e9).abs() / 2.7e9 < 1e-9);
        }
    }
}
