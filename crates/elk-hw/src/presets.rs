//! Hardware presets matching the paper's evaluation platforms (§6.1).

use elk_units::{ByteRate, Bytes, FlopRate};

use crate::{ChipConfig, HbmConfig, SramContention, SystemConfig, Topology};

/// One IPU MK2-class chip: 1472 cores, 624 KB SRAM per core, all-to-all
/// exchange at 5.5 GB/s per core (≈8 TB/s aggregate), 250 TFLOPS MatMul
/// (1000 TFLOPS per 4-chip pod), 7.8 TFLOPS vector.
#[must_use]
pub fn ipu_mk2_chip() -> ChipConfig {
    let cores = 1472;
    ChipConfig {
        name: "IPU-MK2".into(),
        cores,
        sram_per_core: Bytes::kib(624),
        io_buffer_per_core: Bytes::kib(8),
        matmul_rate_per_core: FlopRate::new(250e12 / cores as f64),
        vector_rate_per_core: FlopRate::new(7.8e12 / cores as f64),
        // 128 bits/cycle at ~1.33 GHz (§2.3).
        sram_bw_per_core: ByteRate::new(21.3e9),
        sram_contention: SramContention::Blocking,
        topology: Topology::AllToAll {
            core_link: ByteRate::gib_per_sec(5.5),
        },
    }
}

/// The paper's emulated platform: an IPU-POD4 (4 MK2 chips) with 4 HBM3E
/// channels per chip — 16 TB/s pod HBM bandwidth — and 640 GB/s inter-chip
/// bandwidth (§5, §6.1).
#[must_use]
pub fn ipu_pod4() -> SystemConfig {
    SystemConfig {
        chip: ipu_mk2_chip(),
        hbm: HbmConfig::new(4, ByteRate::tib_per_sec(1.0)),
        chips: 4,
        inter_chip_bw: ByteRate::gib_per_sec(640.0),
        inter_chip_topology: crate::InterChipTopology::Ring,
    }
}

/// The simulator's mesh variant: identical per-chip resources but a 2D
/// mesh interconnect with the same aggregate bandwidth (§6.1 simulator
/// setup), so topology comparisons hold bandwidth constant.
#[must_use]
pub fn ipu_pod4_mesh() -> SystemConfig {
    let mut sys = ipu_pod4();
    let total = sys.chip.noc_bandwidth();
    sys.chip.topology = Topology::mesh_with_total(total, sys.chip.cores);
    sys.chip.name = "IPU-MK2-mesh".into();
    sys
}

/// A single-chip system (Fig. 23 evaluates DiT-XL on one chip).
#[must_use]
pub fn single_chip() -> SystemConfig {
    let mut sys = ipu_pod4();
    sys.chips = 1;
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod4_matches_paper_numbers() {
        let sys = ipu_pod4();
        assert_eq!(sys.chips, 4);
        assert_eq!(sys.chip.cores, 1472);
        // 3.5 GB on-chip memory across the pod (paper: "IPU-POD4 (3.5GB
        // on-chip memory)").
        let total = sys.total_sram().as_f64() / 1e9;
        assert!((3.4..3.9).contains(&total), "pod SRAM {total} GB");
        // 1000 TFLOPS MatMul across the pod.
        assert!((sys.total_matmul_rate().as_tera() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn mesh_preset_preserves_aggregate_noc() {
        let a2a = ipu_pod4();
        let mesh = ipu_pod4_mesh();
        let a = a2a.chip.noc_bandwidth().bytes_per_sec();
        let m = mesh.chip.noc_bandwidth().bytes_per_sec();
        assert!((a - m).abs() / a < 0.01);
        assert!(matches!(mesh.chip.topology, Topology::Mesh2d { .. }));
    }
}
