use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, Seconds};

/// Off-chip HBM attached to one chip through controller nodes on the
/// interconnect (§2.1).
///
/// Elk's compiler consumes per-tensor load latencies; tensors are tens to
/// hundreds of megabytes and are striped across all channels (§5), so the
/// dominant term is channel-bandwidth serialization plus a fixed access
/// latency — the behaviour this model reproduces in place of the paper's
/// DRAMsim3 traces.
///
/// # Examples
///
/// ```
/// use elk_hw::HbmConfig;
/// use elk_units::{ByteRate, Bytes};
///
/// let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
/// let t = hbm.load_time(Bytes::mib(168));
/// assert!(t.as_micros() > 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of HBM channels (controller nodes) per chip.
    pub channels: u64,
    /// Sustained bandwidth per channel.
    pub channel_bw: ByteRate,
    /// First-word access latency (row activation + controller queueing).
    pub access_latency: Seconds,
}

impl HbmConfig {
    /// Creates an HBM configuration with the default 120 ns access latency.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: u64, channel_bw: ByteRate) -> Self {
        assert!(channels > 0, "HBM needs at least one channel");
        HbmConfig {
            channels,
            channel_bw,
            access_latency: Seconds::new(120e-9),
        }
    }

    /// Total sustained bandwidth of the stack.
    #[must_use]
    pub fn total_bandwidth(&self) -> ByteRate {
        self.channel_bw * self.channels
    }

    /// Time to stream `volume` striped evenly across all channels.
    #[must_use]
    pub fn load_time(&self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            Seconds::ZERO
        } else {
            self.access_latency + self.total_bandwidth().transfer_time(volume)
        }
    }

    /// Re-provisions the stack to `total` aggregate bandwidth, keeping the
    /// channel count (the HBM-bandwidth sweeps of Figs. 19–22).
    #[must_use]
    pub fn with_total_bandwidth(&self, total: ByteRate) -> HbmConfig {
        HbmConfig {
            channel_bw: total / self.channels,
            ..*self
        }
    }
}

impl fmt::Display for HbmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} HBM channels x {} ({} total)",
            self.channels,
            self.channel_bw,
            self.total_bandwidth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bandwidth() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        assert!((hbm.total_bandwidth() / ByteRate::tib_per_sec(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_time_includes_latency() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        assert_eq!(hbm.load_time(Bytes::ZERO), Seconds::ZERO);
        let t = hbm.load_time(Bytes::new(1));
        assert!(t >= hbm.access_latency);
    }

    #[test]
    fn resize_keeps_channels() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        let big = hbm.with_total_bandwidth(ByteRate::tib_per_sec(8.0));
        assert_eq!(big.channels, 4);
        assert!((big.total_bandwidth() / ByteRate::tib_per_sec(8.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = HbmConfig::new(0, ByteRate::tib_per_sec(1.0));
    }
}
