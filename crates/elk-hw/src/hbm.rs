use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, Seconds};

/// Off-chip HBM attached to one chip through controller nodes on the
/// interconnect (§2.1).
///
/// Elk's compiler consumes per-tensor load latencies; tensors are tens to
/// hundreds of megabytes and are striped across all channels (§5), so the
/// dominant term is channel-bandwidth serialization plus a fixed access
/// latency — the behaviour this model reproduces in place of the paper's
/// DRAMsim3 traces.
///
/// # Examples
///
/// ```
/// use elk_hw::HbmConfig;
/// use elk_units::{ByteRate, Bytes};
///
/// let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
/// let t = hbm.load_time(Bytes::mib(168));
/// assert!(t.as_micros() > 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of HBM channels (controller nodes) per chip.
    pub channels: u64,
    /// Sustained bandwidth per channel.
    pub channel_bw: ByteRate,
    /// First-word access latency (row activation + controller queueing).
    pub access_latency: Seconds,
    /// Total per-chip HBM capacity (weights + KV cache must fit; the
    /// cluster planner's HBM-feasibility check). Defaults to 96 GiB —
    /// an eight-high HBM3E stack per channel group.
    pub capacity: Bytes,
}

impl HbmConfig {
    /// Creates an HBM configuration with the default 120 ns access
    /// latency and 96 GiB capacity.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: u64, channel_bw: ByteRate) -> Self {
        assert!(channels > 0, "HBM needs at least one channel");
        HbmConfig {
            channels,
            channel_bw,
            access_latency: Seconds::new(120e-9),
            capacity: Bytes::gib(96),
        }
    }

    /// Re-provisions the per-chip capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: Bytes) -> Self {
        self.capacity = capacity;
        self
    }

    /// Total sustained bandwidth of the stack.
    #[must_use]
    pub fn total_bandwidth(&self) -> ByteRate {
        self.channel_bw * self.channels
    }

    /// Time to stream `volume` striped evenly across all channels.
    #[must_use]
    pub fn load_time(&self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            Seconds::ZERO
        } else {
            self.access_latency + self.total_bandwidth().transfer_time(volume)
        }
    }

    /// Re-provisions the stack to `total` aggregate bandwidth, keeping the
    /// channel count (the HBM-bandwidth sweeps of Figs. 19–22).
    #[must_use]
    pub fn with_total_bandwidth(&self, total: ByteRate) -> HbmConfig {
        HbmConfig {
            channel_bw: total / self.channels,
            ..*self
        }
    }
}

impl fmt::Display for HbmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} HBM channels x {} ({} total)",
            self.channels,
            self.channel_bw,
            self.total_bandwidth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bandwidth() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        assert!((hbm.total_bandwidth() / ByteRate::tib_per_sec(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_time_includes_latency() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        assert_eq!(hbm.load_time(Bytes::ZERO), Seconds::ZERO);
        let t = hbm.load_time(Bytes::new(1));
        assert!(t >= hbm.access_latency);
    }

    #[test]
    fn resize_keeps_channels() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        let big = hbm.with_total_bandwidth(ByteRate::tib_per_sec(8.0));
        assert_eq!(big.channels, 4);
        assert!((big.total_bandwidth() / ByteRate::tib_per_sec(8.0) - 1.0).abs() < 1e-12);
        assert_eq!(big.capacity, hbm.capacity, "resize keeps capacity");
    }

    #[test]
    fn capacity_defaults_and_overrides() {
        let hbm = HbmConfig::new(4, ByteRate::tib_per_sec(1.0));
        assert_eq!(hbm.capacity, Bytes::gib(96));
        let small = hbm.with_capacity(Bytes::gib(16));
        assert_eq!(small.capacity, Bytes::gib(16));
        assert_eq!(small.channels, hbm.channels);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = HbmConfig::new(0, ByteRate::tib_per_sec(1.0));
    }
}
