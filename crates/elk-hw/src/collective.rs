//! Topology-aware inter-chip collective cost model.
//!
//! Multi-chip plans pay for three kinds of communication: tensor-parallel
//! reductions (all-reduce / reduce-scatter / all-gather) and pipeline
//! stage-to-stage activations (point-to-point). This module prices all of
//! them on either of the pod-level link arrangements the emulated systems
//! support, replacing the lone ring formula that used to live inside
//! [`SystemConfig::allreduce_time`](crate::SystemConfig::allreduce_time) —
//! every caller (the scheduler, the simulator, the cluster planner) now
//! shares one model, so they can never disagree on collective cost.
//!
//! The ring all-reduce is **bit-identical** to the historical formula:
//! `2·(n-1)/n` of the volume over each chip's share of the links plus a
//! `(n-1)`-hop pipeline-fill latency. The fully-connected arrangement
//! moves the same bytes but pays only constant hop latency.
//!
//! # Examples
//!
//! ```
//! use elk_hw::{presets, CollectiveModel, InterChipTopology};
//! use elk_units::Bytes;
//!
//! let sys = presets::ipu_pod4();
//! let ring = sys.collective_on(InterChipTopology::Ring);
//! let fc = sys.collective_on(InterChipTopology::FullyConnected);
//! let v = Bytes::mib(4);
//! // Same bytes on the wire, fewer serialized hops.
//! assert!(fc.all_reduce(v) <= ring.all_reduce(v));
//! // The ring model is exactly the legacy SystemConfig formula.
//! assert_eq!(ring.all_reduce(v), sys.allreduce_time(v));
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::{ByteRate, Bytes, Seconds};

/// Per-hop serialization latency of the inter-chip links (switch +
/// SerDes traversal; the constant the legacy ring formula used).
#[must_use]
pub fn inter_chip_hop() -> Seconds {
    Seconds::new(1e-6)
}

/// How the pod's chips are wired together.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterChipTopology {
    /// Chips form a ring (IPU-Link style); collectives pay one hop of
    /// latency per participant they pipeline through.
    #[default]
    Ring,
    /// Every chip pair has a direct link; collectives pay a constant
    /// number of hops regardless of pod size.
    FullyConnected,
}

impl InterChipTopology {
    /// Canonical lowercase name (`ring`, `fully_connected`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InterChipTopology::Ring => "ring",
            InterChipTopology::FullyConnected => "fully_connected",
        }
    }
}

impl fmt::Display for InterChipTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Prices inter-chip collectives for one group of `participants` chips.
///
/// Volumes are **per-chip** (each participant holds `volume` bytes of
/// the tensor being reduced or gathered), matching how the model
/// builders record all-reduce volumes on row-parallel operators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveModel {
    /// Chips taking part in the collective.
    pub participants: u64,
    /// Link bandwidth available to each participant.
    pub per_chip_bw: ByteRate,
    /// Serialization latency per link hop.
    pub hop_latency: Seconds,
    /// Link arrangement.
    pub topology: InterChipTopology,
}

impl CollectiveModel {
    /// A model for `participants` chips with `per_chip_bw` of link
    /// bandwidth each, using the default [`inter_chip_hop`] latency.
    #[must_use]
    pub fn new(participants: u64, per_chip_bw: ByteRate, topology: InterChipTopology) -> Self {
        CollectiveModel {
            participants,
            per_chip_bw,
            hop_latency: inter_chip_hop(),
            topology,
        }
    }

    /// `true` when the group is trivial (one chip): every collective is
    /// free.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.participants <= 1
    }

    /// Hop count a collective serializes through: `steps` ring hops, or
    /// `flat` direct hops on a fully-connected pod.
    fn hops(&self, steps: u64, flat: u64) -> Seconds {
        let hops = match self.topology {
            InterChipTopology::Ring => steps,
            InterChipTopology::FullyConnected => flat,
        };
        self.hop_latency * hops as f64
    }

    /// Time to all-reduce `volume` bytes held by every participant.
    ///
    /// Both topologies move `2·(n-1)/n` of the volume through each
    /// chip's links (the bandwidth-optimal schedule); the ring
    /// additionally serializes `n-1` hops of latency where the
    /// fully-connected pod pays two (reduce-scatter + all-gather
    /// phases). The ring path reproduces the historical
    /// `SystemConfig::allreduce_time` bit for bit.
    #[must_use]
    pub fn all_reduce(&self, volume: Bytes) -> Seconds {
        if self.is_trivial() || volume.is_zero() {
            return Seconds::ZERO;
        }
        let n = self.participants;
        let factor = 2.0 * (n - 1) as f64 / n as f64;
        self.per_chip_bw.transfer_time(volume.scale(factor)) + self.hops(n - 1, 2)
    }

    /// Time to reduce-scatter `volume` bytes: afterwards each chip holds
    /// its `1/n` reduced shard.
    #[must_use]
    pub fn reduce_scatter(&self, volume: Bytes) -> Seconds {
        self.half_collective(volume)
    }

    /// Time to all-gather shards totalling `volume` bytes onto every
    /// chip.
    #[must_use]
    pub fn all_gather(&self, volume: Bytes) -> Seconds {
        self.half_collective(volume)
    }

    /// Shared cost of the two all-reduce halves: `(n-1)/n` of the volume
    /// per chip, one latency phase.
    fn half_collective(&self, volume: Bytes) -> Seconds {
        if self.is_trivial() || volume.is_zero() {
            return Seconds::ZERO;
        }
        let n = self.participants;
        let factor = (n - 1) as f64 / n as f64;
        self.per_chip_bw.transfer_time(volume.scale(factor)) + self.hops(n - 1, 1)
    }

    /// Time for one chip to send `volume` bytes to a peer (pipeline
    /// stage-to-stage activations). Adjacent placement is assumed, so
    /// both topologies pay a single hop.
    #[must_use]
    pub fn p2p(&self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            return Seconds::ZERO;
        }
        self.per_chip_bw.transfer_time(volume) + self.hop_latency
    }
}

impl fmt::Display for CollectiveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x {} ({})",
            self.participants, self.per_chip_bw, self.topology
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn pod_model(topology: InterChipTopology) -> CollectiveModel {
        presets::ipu_pod4().collective_on(topology)
    }

    #[test]
    fn ring_all_reduce_is_bit_identical_to_the_legacy_formula() {
        let sys = presets::ipu_pod4();
        let model = pod_model(InterChipTopology::Ring);
        for volume in [Bytes::new(1), Bytes::kib(320), Bytes::mib(64)] {
            // The legacy arithmetic, written out verbatim.
            let per_chip_bw = sys.inter_chip_bw / sys.chips;
            let factor = 2.0 * (sys.chips - 1) as f64 / sys.chips as f64;
            let hop_latency = Seconds::new(1e-6) * (sys.chips - 1) as f64;
            let legacy = per_chip_bw.transfer_time(volume.scale(factor)) + hop_latency;
            assert_eq!(model.all_reduce(volume), legacy, "{volume}");
        }
    }

    #[test]
    fn trivial_group_is_free() {
        let m = CollectiveModel::new(1, ByteRate::gib_per_sec(100.0), InterChipTopology::Ring);
        assert_eq!(m.all_reduce(Bytes::mib(1)), Seconds::ZERO);
        assert_eq!(m.all_gather(Bytes::mib(1)), Seconds::ZERO);
        assert_eq!(m.reduce_scatter(Bytes::mib(1)), Seconds::ZERO);
        let p = pod_model(InterChipTopology::Ring);
        assert_eq!(p.all_reduce(Bytes::ZERO), Seconds::ZERO);
    }

    #[test]
    fn fully_connected_beats_ring_on_latency_only() {
        let ring = pod_model(InterChipTopology::Ring);
        let fc = pod_model(InterChipTopology::FullyConnected);
        let v = Bytes::kib(320);
        // Same bandwidth term; 2 hops vs n-1 = 3 hops.
        let diff = ring.all_reduce(v) - fc.all_reduce(v);
        assert!((diff.as_secs() - 1e-6).abs() < 1e-12, "{diff:?}");
    }

    #[test]
    fn halves_compose_to_at_least_the_all_reduce_bandwidth_term() {
        let m = pod_model(InterChipTopology::FullyConnected);
        let v = Bytes::mib(8);
        let halves = m.reduce_scatter(v) + m.all_gather(v);
        // Two half-collectives move the same bytes as one all-reduce and
        // pay the same number of fully-connected hops.
        assert!((halves.as_secs() - m.all_reduce(v).as_secs()).abs() < 1e-9);
    }

    #[test]
    fn p2p_is_one_hop_plus_serialization() {
        let m = pod_model(InterChipTopology::Ring);
        let v = Bytes::mib(1);
        let expect = m.per_chip_bw.transfer_time(v) + inter_chip_hop();
        assert_eq!(m.p2p(v), expect);
        assert_eq!(m.p2p(Bytes::ZERO), Seconds::ZERO);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(InterChipTopology::Ring.name(), "ring");
        assert_eq!(InterChipTopology::FullyConnected.name(), "fully_connected");
        assert_eq!(InterChipTopology::default(), InterChipTopology::Ring);
    }
}
