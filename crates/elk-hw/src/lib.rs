//! Hardware descriptions of inter-core connected AI (ICCA) chips.
//!
//! An ICCA chip (§2.1 of the paper) couples many independent cores — each
//! with private scratchpad SRAM — through a high-bandwidth low-latency
//! interconnect that also carries traffic from off-chip HBM controllers.
//! This crate describes that hardware to the compiler and the simulator:
//!
//! * [`ChipConfig`] — cores, per-core SRAM, compute rates, SRAM port
//!   behaviour, and the interconnect [`Topology`] (all-to-all or 2D mesh);
//! * [`HbmConfig`] — off-chip memory channels and capacity;
//! * [`SystemConfig`] — a multi-chip pod with inter-chip links, plus the
//!   sweep helpers the design-space-exploration figures (Figs. 19–24) use;
//! * [`CollectiveModel`] — topology-aware inter-chip collective costs
//!   (all-reduce / all-gather / reduce-scatter / p2p on ring or
//!   fully-connected links), shared by the compiler, the simulator, and
//!   the cluster planner.
//!
//! ```
//! use elk_hw::presets;
//!
//! let sys = presets::ipu_pod4();
//! assert_eq!(sys.chips, 4);
//! assert_eq!(sys.chip.cores, 1472);
//! // ~8 TiB/s aggregate inter-core bandwidth per chip:
//! let noc = sys.chip.topology.total_bandwidth(sys.chip.cores);
//! assert!(noc.bytes_per_sec() > 7.5e12);
//! ```

#![warn(missing_docs)]

mod chip;
mod collective;
mod hbm;
mod system;
mod topology;

pub mod presets;

pub use chip::{ChipConfig, SramContention};
pub use collective::{inter_chip_hop, CollectiveModel, InterChipTopology};
pub use hbm::HbmConfig;
pub use system::SystemConfig;
pub use topology::Topology;
