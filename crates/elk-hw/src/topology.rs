use std::fmt;

use serde::{Deserialize, Serialize};

use elk_units::ByteRate;

/// The on-chip interconnect joining cores and HBM controllers.
///
/// The paper targets the two topologies used by today's ICCA chips (§5):
/// the IPU-style **all-to-all** exchange, where any core reaches any other
/// at full link bandwidth, and the SambaNova/Tenstorrent-style **2D mesh**,
/// where packets take XY dimension-order routes over per-hop links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Non-blocking all-to-all exchange. Each core sends and receives at
    /// `core_link`; transfers sharing an endpoint serialize.
    AllToAll {
        /// Per-core link bandwidth (5.5 GB/s on IPU MK2).
        core_link: ByteRate,
    },
    /// `rows × cols` 2D mesh with XY dimension-order routing. Each core
    /// talks to up to four neighbours simultaneously, each over `link`.
    Mesh2d {
        /// Grid height.
        rows: u32,
        /// Grid width.
        cols: u32,
        /// Per-direction link bandwidth.
        link: ByteRate,
    },
}

impl Topology {
    /// An all-to-all fabric sized so its aggregate bandwidth is
    /// `total / cores` per core.
    #[must_use]
    pub fn all_to_all_with_total(total: ByteRate, cores: u64) -> Self {
        Topology::AllToAll {
            core_link: total / cores,
        }
    }

    /// A mesh over `cores` cores, shaped as close to square as the core
    /// count allows, with per-hop links sized so the aggregate fabric
    /// bandwidth matches `total` (making all-to-all vs mesh sweeps compare
    /// equal-bisection designs, as Figs. 19–22 do).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn mesh_with_total(total: ByteRate, cores: u64) -> Self {
        let (rows, cols) = mesh_dims(cores);
        let links = mesh_link_count(rows, cols);
        Topology::Mesh2d {
            rows,
            cols,
            link: total / links,
        }
    }

    /// Number of cores the topology assumes, if it constrains one
    /// (`None` for all-to-all, which scales to any core count).
    #[must_use]
    pub fn core_capacity(&self) -> Option<u64> {
        match *self {
            Topology::AllToAll { .. } => None,
            Topology::Mesh2d { rows, cols, .. } => Some(rows as u64 * cols as u64),
        }
    }

    /// Aggregate fabric bandwidth: the sum of all link capacities, the
    /// figure the paper reports as "total interconnect bandwidth".
    #[must_use]
    pub fn total_bandwidth(&self, cores: u64) -> ByteRate {
        match *self {
            Topology::AllToAll { core_link } => core_link * cores,
            Topology::Mesh2d { rows, cols, link } => link * mesh_link_count(rows, cols),
        }
    }

    /// Bandwidth at which one core can ingest data from the fabric.
    #[must_use]
    pub fn per_core_ingress(&self) -> ByteRate {
        match *self {
            Topology::AllToAll { core_link } => core_link,
            // Up to 4 neighbours feed a mesh core simultaneously.
            Topology::Mesh2d { link, .. } => link * 4u64,
        }
    }

    /// Average route length in hops for the compiler's traffic. 1 for
    /// all-to-all. For a 2D mesh we charge a constant locality factor of
    /// 4 rather than the uniform-random `(rows+cols)/3`: the compiler's
    /// tile mapping keeps compute-shift exchange nearest-neighbour and
    /// XY dimension-order routing streams HBM rows across the grid with
    /// drop-off, so sustained routes average a few hops (§5 "uses
    /// dimension-order routing to maximize the all-reduce bandwidth").
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        match *self {
            Topology::AllToAll { .. } => 1.0,
            Topology::Mesh2d { .. } => 4.0,
        }
    }

    /// Effective fabric throughput for bulk many-to-many traffic: the
    /// aggregate capacity derated by the mean hop count, since every hop
    /// of a mesh route consumes link capacity.
    #[must_use]
    pub fn effective_bulk_bandwidth(&self, cores: u64) -> ByteRate {
        self.total_bandwidth(cores) / self.mean_hops()
    }

    /// Effective per-core bandwidth for neighbour-structured exchange
    /// (compute-shift rotations): the full link rate on a mesh (shifts are
    /// nearest-neighbour), the core link on all-to-all.
    #[must_use]
    pub fn shift_bandwidth(&self) -> ByteRate {
        match *self {
            Topology::AllToAll { core_link } => core_link,
            Topology::Mesh2d { link, .. } => link,
        }
    }

    /// Bandwidth at which HBM controllers can inject into the fabric,
    /// before HBM channel limits. All-to-all attaches controllers as
    /// first-class nodes whose fan-out saturates receiver ingress, so
    /// injection is fabric-limited; a mesh distributes controllers along
    /// the grid edges with channel-matched ports, but edge fan-in bounds
    /// sustained injection to about half the fabric (the multi-hop
    /// distribution cost itself is charged via [`Topology::mean_hops`]).
    #[must_use]
    pub fn hbm_injection_bandwidth(&self, cores: u64) -> ByteRate {
        match *self {
            Topology::AllToAll { core_link } => core_link * cores,
            Topology::Mesh2d { rows, cols, link } => link * mesh_link_count(rows, cols) / 2u64,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::AllToAll { core_link } => write!(f, "all-to-all ({core_link}/core)"),
            Topology::Mesh2d { rows, cols, link } => {
                write!(f, "{rows}x{cols} mesh ({link}/link)")
            }
        }
    }
}

/// Near-square grid covering `cores`.
fn mesh_dims(cores: u64) -> (u32, u32) {
    assert!(cores > 0, "mesh needs at least one core");
    let mut rows = (cores as f64).sqrt().floor() as u64;
    while rows > 1 && !cores.is_multiple_of(rows) {
        rows -= 1;
    }
    let cols = cores / rows;
    (rows as u32, cols as u32)
}

/// Directed link count of a `rows × cols` mesh (each undirected neighbour
/// pair carries one link per direction).
fn mesh_link_count(rows: u32, cols: u32) -> u64 {
    let r = rows as u64;
    let c = cols as u64;
    2 * (r * (c - 1) + c * (r - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipu_aggregate_bandwidth_is_about_8_tbps() {
        let t = Topology::AllToAll {
            core_link: ByteRate::gib_per_sec(5.5),
        };
        let total = t.total_bandwidth(1472);
        // 1472 * 5.5 GiB/s ≈ 7.9 TiB/s (the paper rounds to 8 TB/s).
        assert!((7.5e12..8.9e12).contains(&total.bytes_per_sec()));
    }

    #[test]
    fn mesh_dims_cover_exactly() {
        for cores in [1472u64, 1024, 5888, 736, 100] {
            let (r, c) = mesh_dims(cores);
            assert_eq!(r as u64 * c as u64, cores);
        }
        assert_eq!(mesh_dims(1472), (32, 46));
    }

    #[test]
    fn equal_total_bandwidth_construction() {
        let total = ByteRate::tib_per_sec(8.0);
        let a2a = Topology::all_to_all_with_total(total, 1472);
        let mesh = Topology::mesh_with_total(total, 1472);
        let ta = a2a.total_bandwidth(1472).bytes_per_sec();
        let tm = mesh.total_bandwidth(1472).bytes_per_sec();
        assert!((ta - tm).abs() / ta < 0.01);
    }

    #[test]
    fn mesh_pays_multiple_hops() {
        let total = ByteRate::tib_per_sec(8.0);
        let a2a = Topology::all_to_all_with_total(total, 1472);
        let mesh = Topology::mesh_with_total(total, 1472);
        assert_eq!(a2a.mean_hops(), 1.0);
        assert!(mesh.mean_hops() > 1.0);
        assert!(
            mesh.effective_bulk_bandwidth(1472).bytes_per_sec()
                < a2a.effective_bulk_bandwidth(1472).bytes_per_sec() / 2.0
        );
    }

    #[test]
    fn link_count_small_mesh() {
        // 2x2 mesh: 4 undirected edges -> 8 directed links.
        assert_eq!(mesh_link_count(2, 2), 8);
        // 1xN degenerates to a chain.
        assert_eq!(mesh_link_count(1, 4), 6);
    }

    #[test]
    fn capacity_only_bounds_meshes() {
        assert_eq!(
            Topology::AllToAll {
                core_link: ByteRate::gib_per_sec(5.5)
            }
            .core_capacity(),
            None
        );
        assert_eq!(
            Topology::Mesh2d {
                rows: 4,
                cols: 8,
                link: ByteRate::gib_per_sec(10.0)
            }
            .core_capacity(),
            Some(32)
        );
    }
}
