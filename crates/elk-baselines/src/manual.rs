//! Shared construction of hand-built (non-Elk) schedules.

use elk_hw::SystemConfig;
use elk_model::ModelGraph;
use elk_units::Seconds;

use elk_core::{identity_order, Catalog, DeviceProgram, OpSchedule, Schedule, Scheduler};

/// Per-operator choice of a hand-built design.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ManualChoice {
    /// Position on the execute-state Pareto frontier.
    pub exec_idx: usize,
    /// Preload-state plan index of that execute plan.
    pub preload_idx: usize,
    /// Preload-order cut: order positions `< cut` may be issued before
    /// this operator executes.
    pub cut: usize,
}

/// Assembles a [`Schedule`] (identity preload order) from per-operator
/// choices, deriving execution and preload lengths exactly like the Elk
/// scheduler does, then lowers it.
pub(crate) fn lower(
    graph: &ModelGraph,
    catalog: &Catalog,
    system: &SystemConfig,
    choices: &[ManualChoice],
) -> DeviceProgram {
    assert_eq!(choices.len(), graph.len(), "choice per operator required");
    let order = identity_order(graph.len());
    // A throwaway scheduler instance provides the preload-duration model.
    let scheduler = Scheduler::new(graph, catalog, system, elk_core::ScheduleOptions::default());

    let per_op: Vec<OpSchedule> = choices
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let op = graph.ops()[i].id();
            let plans = catalog.op(op);
            let plan = plans.plan_at(c.exec_idx);
            let pre = plans.preload_at(c.exec_idx, c.preload_idx);
            OpSchedule {
                op,
                exec_idx: c.exec_idx,
                preload_idx: c.preload_idx,
                preload_number: c.cut.saturating_sub(i + 1),
                cut: c.cut,
                exec_len: plan.exec_time
                    + pre.distribute_time
                    + system.allreduce_time(graph.ops()[i].allreduce()),
                preload_len: scheduler.preload_duration(pre),
                contention: Seconds::ZERO,
            }
        })
        .collect();

    let schedule = Schedule {
        per_op,
        order,
        est_total: Seconds::ZERO,
    };
    DeviceProgram::lower(graph, catalog, &schedule)
}
