//! The *Basic* baseline (§6.1): existing DL compilers tuned for on-chip
//! execution. Every operator takes its fastest execute-state plan
//! (maximum execution space); whatever SRAM remains is used to preload
//! the *next* operator only, with the largest preload-state plan that
//! fits — if even the smallest does not fit, the preload simply waits for
//! the execution to finish.

use elk_hw::SystemConfig;
use elk_model::ModelGraph;

use elk_core::{Catalog, CompileError, DeviceProgram};

use crate::manual::{lower, ManualChoice};

pub(crate) fn plan(
    graph: &ModelGraph,
    catalog: &Catalog,
    system: &SystemConfig,
) -> Result<DeviceProgram, CompileError> {
    if graph.is_empty() {
        return Err(CompileError::EmptyGraph);
    }
    let n = graph.len();
    let capacity = system.chip.usable_sram_per_core();

    // Fastest plan per operator; preload-state resolved in a second pass
    // because op i+1's footprint must fit beside op i's execution space.
    let exec_idx = vec![0usize; n];
    let mut choices: Vec<ManualChoice> = (0..n)
        .map(|i| ManualChoice {
            exec_idx: exec_idx[i],
            preload_idx: 0,
            cut: i + 1, // no overlap by default
        })
        .collect();

    for i in 0..n {
        let cur = catalog.op(graph.ops()[i].id());
        let remaining = capacity.saturating_sub(cur.plan_at(choices[i].exec_idx).exec_space);
        if i + 1 >= n {
            break;
        }
        let nxt = catalog.op(graph.ops()[i + 1].id());
        let points = nxt.preload_points(choices[i + 1].exec_idx);
        // Largest preload plan that fits the remaining space.
        if let Some(pick) = points.iter().position(|p| p.space <= remaining) {
            choices[i + 1].preload_idx = pick;
            choices[i].cut = i + 2; // overlap the next operator's preload
        } else {
            // Preload after exec(i) completes; use the smallest footprint.
            choices[i + 1].preload_idx = points.len() - 1;
        }
    }

    Ok(lower(graph, catalog, system, &choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignRunner;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};

    #[test]
    fn basic_overlaps_at_most_one_preload() {
        let system = presets::ipu_pod4();
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        let graph = cfg.build(Workload::decode(16, 1024), 4);
        let runner = DesignRunner::new(system.clone());
        let catalog = runner.catalog(&graph).unwrap();
        let prog = plan(&graph, &catalog, &system).unwrap();
        prog.validate().expect("valid");
        // Between consecutive executes at most one preload is issued.
        let mut pending = 0usize;
        for instr in &prog.instrs {
            match instr {
                elk_core::DeviceInstr::PreloadAsync { .. } => pending += 1,
                elk_core::DeviceInstr::Execute { .. } => pending = 0,
            }
            assert!(pending <= 2, "basic issued {pending} preloads in a row");
        }
    }
}
