//! The five designs of the paper's evaluation (§6.1), behind one API.
//!
//! * **Basic** — existing-DL-compiler behaviour: maximize the execution
//!   space, preload only the next operator into whatever space remains.
//! * **Static** — T10 extended with HBM: a statically-sized preload space
//!   (globally tuned), fastest execution plans within the remaining
//!   space, FIFO preloading, and a single global preload-state mode
//!   (all-max-broadcast or all-min-footprint, whichever is faster).
//! * **Elk-Dyn** — Elk without preload-order permutation (§4.2–4.3).
//! * **Elk-Full** — the complete Elk design (§4.2–4.4).
//! * **Ideal** — the roofline: dedicated interconnects for preload and
//!   execution, unconstrained memory, minimal preload footprints, free
//!   data distribution.
//!
//! ```
//! use elk_baselines::{Design, DesignRunner};
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//! use elk_sim::SimOptions;
//!
//! # fn main() -> Result<(), elk_core::CompileError> {
//! let mut cfg = zoo::llama2_13b();
//! cfg.layers = 2; // doctest-sized
//! let graph = cfg.build(Workload::decode(16, 512), 4);
//! let runner = DesignRunner::new(presets::ipu_pod4());
//! let catalog = runner.catalog(&graph)?;
//! let basic = runner.run(Design::Basic, &graph, &catalog, &SimOptions::default())?;
//! let full = runner.run(Design::ElkFull, &graph, &catalog, &SimOptions::default())?;
//! assert!(full.report.total <= basic.report.total);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod basic;
mod ideal;
mod manual;
mod static_split;

pub use static_split::{plan_with_budget as static_plan_with_budget, PreloadMode};

use std::fmt;

use serde::{Deserialize, Serialize};

use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
use elk_hw::SystemConfig;
use elk_model::ModelGraph;
use elk_partition::Partitioner;
use elk_sim::{simulate, SimOptions, SimReport};

use elk_core::{
    evaluate, Catalog, CompileError, CompileStats, Compiler, CompilerOptions, DeviceProgram,
    PlanEstimate,
};

/// One of the paper's evaluated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Maximize execution space; preload the next operator only.
    Basic,
    /// Static execution/preload split with FIFO preloading (T10 + HBM).
    Static,
    /// Elk without preload reordering.
    ElkDyn,
    /// Full Elk.
    ElkFull,
    /// Contention- and capacity-free roofline.
    Ideal,
}

impl Design {
    /// All designs in the paper's plotting order.
    pub const ALL: [Design; 5] = [
        Design::Basic,
        Design::Static,
        Design::ElkDyn,
        Design::ElkFull,
        Design::Ideal,
    ];
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Design::Basic => "Basic",
            Design::Static => "Static",
            Design::ElkDyn => "ELK-Dyn",
            Design::ElkFull => "ELK-Full",
            Design::Ideal => "Ideal",
        };
        f.write_str(s)
    }
}

/// Outcome of running one design on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignOutcome {
    /// The design that ran.
    pub design: Design,
    /// The lowered device program.
    pub program: DeviceProgram,
    /// Compiler-side forward-timeline estimate.
    pub estimate: PlanEstimate,
    /// Simulator measurement (the §6 numbers).
    pub report: SimReport,
    /// Elk compile statistics (None for the hand-built baselines).
    pub stats: Option<CompileStats>,
}

/// Runs any [`Design`] on a model/system pair, sharing the fitted cost
/// model and plan catalog across designs so comparisons are apples to
/// apples.
#[derive(Debug)]
pub struct DesignRunner {
    system: SystemConfig,
    cost: LearnedCostModel,
    threads: usize,
}

impl DesignRunner {
    /// Creates a runner for `system`, fitting the learned cost model the
    /// compiler side plans with.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        let device = AnalyticDevice::of_chip(&system.chip).with_noise(0.05);
        let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
        DesignRunner {
            system,
            cost,
            threads: 0,
        }
    }

    /// Sets the worker-thread count for catalog construction and the
    /// Elk designs' order search (`0` = all available cores). Outputs
    /// are byte-identical at any setting; only wall-clock changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured worker-thread count (`0` = all available cores).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The system under test.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Derives a runner with different HBM/inter-chip provisioning but
    /// the same chip (reuses the fitted cost model; Figs. 19–22 sweeps).
    #[must_use]
    pub fn with_system(&self, system: SystemConfig) -> DesignRunner {
        assert_eq!(
            system.chip, self.system.chip,
            "chip changed: build a fresh runner (the cost model depends on it)"
        );
        DesignRunner {
            system,
            cost: self.cost.clone(),
            threads: self.threads,
        }
    }

    /// Builds the plan catalog for `graph` (shareable across designs and
    /// HBM sweeps), fanning plan enumeration across the configured
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError::NoFeasiblePlan`].
    pub fn catalog(&self, graph: &ModelGraph) -> Result<Catalog, CompileError> {
        let partitioner = Partitioner::new(&self.system.chip, &self.cost);
        Catalog::build_par(graph, &partitioner, self.threads)
    }

    /// Compiles and simulates `design` on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from planning.
    pub fn run(
        &self,
        design: Design,
        graph: &ModelGraph,
        catalog: &Catalog,
        sim: &SimOptions,
    ) -> Result<DesignOutcome, CompileError> {
        let capacity = self.system.chip.usable_sram_per_core();
        let (program, stats) = match design {
            Design::Basic => (basic::plan(graph, catalog, &self.system)?, None),
            Design::Static => (static_split::plan(graph, catalog, &self.system)?, None),
            Design::Ideal => (ideal::plan(graph, catalog, &self.system)?, None),
            Design::ElkDyn | Design::ElkFull => {
                let mut opts = CompilerOptions::default();
                opts.reorder.enable = design == Design::ElkFull;
                opts.threads = self.threads;
                let compiler =
                    Compiler::with_cost_model(self.system.clone(), self.cost.clone(), opts);
                let plan = compiler.compile_with_catalog(graph, catalog)?;
                (plan.program, Some(plan.stats))
            }
        };
        let sim_opts = if design == Design::Ideal {
            SimOptions {
                dedicated_interconnects: true,
                ..*sim
            }
        } else {
            *sim
        };
        let estimate = evaluate(&program, capacity);
        let report = simulate(&program, &self.system, &sim_opts);
        Ok(DesignOutcome {
            design,
            program,
            estimate,
            report,
            stats,
        })
    }

    /// Runs all five designs, sharing one catalog.
    ///
    /// # Errors
    ///
    /// Propagates the first planning failure.
    pub fn run_all(
        &self,
        graph: &ModelGraph,
        sim: &SimOptions,
    ) -> Result<Vec<DesignOutcome>, CompileError> {
        let catalog = self.catalog(graph)?;
        Design::ALL
            .iter()
            .map(|&d| self.run(d, graph, &catalog, sim))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};

    fn small_graph() -> ModelGraph {
        // Memory-pressured config (sequence 4096): the regime where the
        // design ordering is decisive. At comfortable sizes Static's
        // tuned split can tie Elk within cost-model noise (Fig. 17 shows
        // the same near-ties at batch 16).
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 3;
        cfg.build(Workload::decode(32, 4096), 4)
    }

    #[test]
    fn design_ordering_matches_paper() {
        // Fig. 17: Ideal <= ELK-Full <= ELK-Dyn <= Static-ish <= Basic.
        let runner = DesignRunner::new(presets::ipu_pod4());
        let graph = small_graph();
        let out = runner.run_all(&graph, &SimOptions::default()).unwrap();
        let t = |d: Design| {
            out.iter()
                .find(|o| o.design == d)
                .unwrap()
                .report
                .total
                .as_secs()
        };
        let slack = 1.02; // simulator noise tolerance
        assert!(t(Design::Ideal) <= t(Design::ElkFull) * slack);
        assert!(t(Design::ElkFull) <= t(Design::ElkDyn) * slack);
        assert!(t(Design::ElkDyn) <= t(Design::Basic) * slack);
        assert!(t(Design::ElkFull) <= t(Design::Static) * slack);
        assert!(
            t(Design::Basic) > t(Design::ElkFull) * 1.05,
            "Elk should clearly beat Basic: {} vs {}",
            t(Design::Basic),
            t(Design::ElkFull)
        );
    }

    #[test]
    fn baselines_respect_memory() {
        let runner = DesignRunner::new(presets::ipu_pod4());
        let graph = small_graph();
        let catalog = runner.catalog(&graph).unwrap();
        for d in [
            Design::Basic,
            Design::Static,
            Design::ElkDyn,
            Design::ElkFull,
        ] {
            let o = runner
                .run(d, &graph, &catalog, &SimOptions::default())
                .unwrap();
            assert_eq!(
                o.report.capacity_violations, 0,
                "{d} violates capacity (peak {})",
                o.report.peak_resident
            );
        }
    }

    #[test]
    fn hbm_utilization_improves_along_design_axis() {
        // Fig. 18(b): Basic < Static <= ELK designs.
        let runner = DesignRunner::new(presets::ipu_pod4());
        let graph = small_graph();
        let out = runner.run_all(&graph, &SimOptions::default()).unwrap();
        let u = |d: Design| out.iter().find(|o| o.design == d).unwrap().report.hbm_util;
        assert!(u(Design::Basic) < u(Design::ElkFull));
    }
}
