//! The *Static* baseline (§6.1): the state-of-the-art ICCA compiler (T10)
//! extended with HBM support. SRAM is split once, globally, into an
//! execution region and a preload region; each operator takes the fastest
//! plan fitting the execution region; operators preload FIFO into the
//! preload region; and all operators use one global preload-state mode —
//! everything max-broadcast or everything min-footprint, whichever is
//! faster end-to-end.

use elk_hw::SystemConfig;
use elk_model::ModelGraph;
use elk_units::{Bytes, Seconds};

use elk_core::{evaluate, Catalog, CompileError, DeviceProgram};

use crate::manual::{lower, ManualChoice};

/// Global preload-state mode of the Static design: broadcast everything
/// at preload time, or hold minimal footprints and gather at execution
/// (the `MaxPreload` / `MinPreload` settings of Figs. 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PreloadMode {
    /// Broadcast as much shared data as possible at preload time.
    MaxBroadcast,
    /// Hold the minimum preload footprint; gather at execution time.
    MinFootprint,
}

pub(crate) fn plan(
    graph: &ModelGraph,
    catalog: &Catalog,
    system: &SystemConfig,
) -> Result<DeviceProgram, CompileError> {
    if graph.is_empty() {
        return Err(CompileError::EmptyGraph);
    }
    let capacity = system.chip.usable_sram_per_core();

    let mut best: Option<(Seconds, DeviceProgram)> = None;
    for percent in (10..=90).step_by(10) {
        let exec_budget = capacity.scale(percent as f64 / 100.0);
        let preload_budget = capacity - exec_budget;
        for mode in [PreloadMode::MaxBroadcast, PreloadMode::MinFootprint] {
            let Some(prog) =
                plan_with_budget(graph, catalog, system, exec_budget, preload_budget, mode)
            else {
                continue;
            };
            let est = evaluate(&prog, capacity);
            if est.capacity_violations > 0 {
                continue;
            }
            if best.as_ref().is_none_or(|(t, _)| est.total < *t) {
                best = Some((est.total, prog));
            }
        }
    }
    best.map(|(_, p)| p).ok_or(CompileError::CapacityExceeded {
        op: "static split".to_string(),
        required: capacity,
        capacity,
    })
}

/// Builds a Static-design program for an explicit execution/preload split
/// and preload-state mode (the motivation experiments of Figs. 6-8 sweep
/// these directly).
#[must_use]
pub fn plan_with_budget(
    graph: &ModelGraph,
    catalog: &Catalog,
    system: &SystemConfig,
    exec_budget: Bytes,
    preload_budget: Bytes,
    mode: PreloadMode,
) -> Option<DeviceProgram> {
    let _ = preload_budget;
    let n = graph.len();
    let capacity = system.chip.usable_sram_per_core();
    let mut choices = Vec::with_capacity(n);
    for op in graph.iter() {
        let plans = catalog.op(op.id());
        // Frontier is fastest-first; pick the fastest plan within budget.
        // Operators whose smallest plan exceeds the nominal region fall
        // back to that smallest plan — the execution region must then
        // grow to hold them, which is exactly how a fixed split degrades
        // under memory pressure (§6.1 "limited by fixed preload and
        // execution space sizes").
        let exec_idx = plans
            .exec_frontier
            .iter()
            .position(|p| p.space <= exec_budget)
            .unwrap_or(plans.exec_frontier.len() - 1);
        let pre_count = plans.plan_at(exec_idx).preload_plans.len();
        let preload_idx = match mode {
            PreloadMode::MaxBroadcast => 0,
            PreloadMode::MinFootprint => pre_count - 1,
        };
        choices.push(ManualChoice {
            exec_idx,
            preload_idx,
            cut: 0,
        });
    }

    // The execution region must hold the largest executing operator; the
    // rest of SRAM is the preload region.
    let exec_region: Bytes = choices
        .iter()
        .zip(graph.iter())
        .map(|(c, op)| catalog.op(op.id()).plan_at(c.exec_idx).exec_space)
        .max()
        .unwrap_or(Bytes::ZERO);
    if exec_region > capacity {
        return None;
    }
    let preload_region = capacity - exec_region;

    // FIFO preload into the static region: issue ahead while it fits.
    // An operator too large for the region is force-issued in the gap
    // before its own execution (FIFO order keeps that memory-safe: all
    // earlier preloads have executed and freed their space by then).
    let spaces: Vec<Bytes> = (0..n)
        .map(|i| {
            catalog
                .op(graph.ops()[i].id())
                .preload_points(choices[i].exec_idx)[choices[i].preload_idx]
                .space
        })
        .collect();
    let mut issued = 0usize;
    let mut resident = Bytes::ZERO;
    for i in 0..n {
        while issued < n && (issued <= i || resident + spaces[issued] <= preload_region) {
            resident += spaces[issued];
            issued += 1;
        }
        choices[i].cut = issued;
        resident = resident.saturating_sub(spaces[i]);
    }

    Some(lower(graph, catalog, system, &choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignRunner;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_sim::{simulate, SimOptions};

    #[test]
    fn static_preloads_further_ahead_than_basic() {
        let system = presets::ipu_pod4();
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        let graph = cfg.build(Workload::decode(16, 2048), 4);
        let runner = DesignRunner::new(system.clone());
        let catalog = runner.catalog(&graph).unwrap();
        let st = plan(&graph, &catalog, &system).unwrap();
        st.validate().expect("valid");
        let basic = crate::basic::plan(&graph, &catalog, &system).unwrap();
        let longest_run = |p: &DeviceProgram| {
            let mut run = 0usize;
            let mut best = 0usize;
            for i in &p.instrs {
                match i {
                    elk_core::DeviceInstr::PreloadAsync { .. } => {
                        run += 1;
                        best = best.max(run);
                    }
                    elk_core::DeviceInstr::Execute { .. } => run = 0,
                }
            }
            best
        };
        assert!(longest_run(&st) > longest_run(&basic));
        // And it should be faster in simulation.
        let rs = simulate(&st, &system, &SimOptions::default());
        let rb = simulate(&basic, &system, &SimOptions::default());
        assert!(rs.total <= rb.total * 1.02, "{} vs {}", rs.total, rb.total);
    }
}
