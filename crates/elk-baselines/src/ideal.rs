//! The *Ideal* roofline (§6.1): separate interconnects for preload and
//! execution, unconstrained on-chip memory, minimum preload footprints
//! (emulating an unbounded preload number), and a free data-distribution
//! phase. Simulated with [`elk_sim::SimOptions::ideal`].

use elk_hw::SystemConfig;
use elk_model::ModelGraph;
use elk_units::Bytes;

use elk_core::{Catalog, CompileError, DeviceProgram};

use crate::manual::{lower, ManualChoice};

pub(crate) fn plan(
    graph: &ModelGraph,
    catalog: &Catalog,
    system: &SystemConfig,
) -> Result<DeviceProgram, CompileError> {
    if graph.is_empty() {
        return Err(CompileError::EmptyGraph);
    }
    let n = graph.len();
    let choices: Vec<ManualChoice> = graph
        .iter()
        .map(|op| {
            let plans = catalog.op(op.id());
            ManualChoice {
                exec_idx: 0, // fastest plan — no memory contention
                preload_idx: plans.plan_at(0).preload_plans.len() - 1,
                cut: n, // fully eager pipeline
            }
        })
        .collect();
    let mut prog = lower(graph, catalog, system, &choices);
    // Free data distribution: zero the distribution phase the minimal
    // preload plans would otherwise incur, and rebuild the execution
    // estimate without it.
    for (i, spec) in prog.specs.iter_mut().enumerate() {
        let op = &graph.ops()[i];
        let plan = catalog.op(op.id()).plan_at(0);
        spec.distribute_traffic = Bytes::ZERO;
        spec.exec_len = plan.exec_time + system.allreduce_time(op.allreduce());
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignRunner;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_sim::{simulate, SimOptions};

    #[test]
    fn ideal_is_a_lower_bound_for_elk() {
        let system = presets::ipu_pod4();
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        let graph = cfg.build(Workload::decode(16, 2048), 4);
        let runner = DesignRunner::new(system.clone());
        let catalog = runner.catalog(&graph).unwrap();
        let ideal = plan(&graph, &catalog, &system).unwrap();
        ideal.validate().expect("valid");
        let r = simulate(&ideal, &system, &SimOptions::ideal());
        // Roofline lower bounds: at least the HBM time and the exec time.
        let hbm_bound = system
            .hbm
            .total_bandwidth()
            .transfer_time(graph.total_hbm_load());
        assert!(
            r.total >= hbm_bound * 0.95,
            "ideal {} below HBM roofline {}",
            r.total,
            hbm_bound
        );
    }

    #[test]
    fn ideal_issues_all_preloads_first() {
        let system = presets::ipu_pod4();
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        let graph = cfg.build(Workload::decode(16, 1024), 4);
        let runner = DesignRunner::new(system.clone());
        let catalog = runner.catalog(&graph).unwrap();
        let prog = plan(&graph, &catalog, &system).unwrap();
        let first_exec = prog
            .instrs
            .iter()
            .position(|i| matches!(i, elk_core::DeviceInstr::Execute { .. }))
            .unwrap();
        assert_eq!(first_exec, graph.len(), "all preloads precede exec");
    }
}
