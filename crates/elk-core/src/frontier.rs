use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use elk_model::{ModelGraph, OpId, Operator};
use elk_partition::{ExecutePlan, Partitioner, PreloadPlan};
use elk_units::{Bytes, Seconds};

use crate::CompileError;

/// One point on a memory↔time Pareto frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Index into the underlying plan list.
    pub plan_idx: usize,
    /// Per-core SRAM footprint.
    pub space: Bytes,
    /// Time cost of the point (execution time for execute-state points,
    /// data-distribution time for preload-state points).
    pub time: Seconds,
}

/// Extracts the Pareto frontier of `(space, time)` points, sorted fastest
/// (largest space) first. Every kept point is strictly faster than all
/// smaller points and strictly smaller than all faster points.
#[must_use]
pub fn pareto_frontier(points: impl IntoIterator<Item = FrontierPoint>) -> Vec<FrontierPoint> {
    let mut pts: Vec<FrontierPoint> = points.into_iter().collect();
    // Sort by time ascending; ties broken by smaller space.
    pts.sort_by(|a, b| a.time.cmp(&b.time).then(a.space.cmp(&b.space)));
    let mut front: Vec<FrontierPoint> = Vec::new();
    for p in pts {
        match front.last() {
            None => front.push(p),
            Some(last) => {
                if p.space < last.space {
                    front.push(p);
                }
            }
        }
    }
    front
}

/// All feasible plans of one operator plus its execute-state Pareto
/// frontier. Preload-state frontiers are per execute-plan and come
/// pre-sorted from the partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpPlans {
    /// All feasible execute-state plans.
    pub plans: Vec<ExecutePlan>,
    /// Pareto frontier over `(exec_space, exec_time)`, fastest first.
    pub exec_frontier: Vec<FrontierPoint>,
}

impl OpPlans {
    /// Builds the frontier from a feasible plan list.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    #[must_use]
    pub fn new(plans: Vec<ExecutePlan>) -> Self {
        assert!(!plans.is_empty(), "operator with no feasible plans");
        let exec_frontier = pareto_frontier(plans.iter().enumerate().map(|(i, p)| FrontierPoint {
            plan_idx: i,
            space: p.exec_space,
            time: p.exec_time,
        }));
        OpPlans {
            plans,
            exec_frontier,
        }
    }

    /// The execute plan of a frontier position.
    #[must_use]
    pub fn plan_at(&self, frontier_idx: usize) -> &ExecutePlan {
        &self.plans[self.exec_frontier[frontier_idx].plan_idx]
    }

    /// Preload-state points of the execute plan at `frontier_idx`,
    /// largest space (max broadcast) first — already a Pareto frontier by
    /// construction.
    #[must_use]
    pub fn preload_points(&self, frontier_idx: usize) -> Vec<FrontierPoint> {
        self.plan_at(frontier_idx)
            .preload_plans
            .iter()
            .enumerate()
            .map(|(i, p)| FrontierPoint {
                plan_idx: i,
                space: p.preload_space,
                time: p.distribute_time,
            })
            .collect()
    }

    /// The preload plan `preload_idx` of the execute plan at
    /// `frontier_idx`.
    #[must_use]
    pub fn preload_at(&self, frontier_idx: usize, preload_idx: usize) -> &PreloadPlan {
        &self.plan_at(frontier_idx).preload_plans[preload_idx]
    }

    /// Smallest possible preload footprint over the chosen execute plan.
    #[must_use]
    pub fn min_preload_space(&self, frontier_idx: usize) -> Bytes {
        self.plan_at(frontier_idx)
            .preload_plans
            .last()
            .map_or(Bytes::ZERO, |p| p.preload_space)
    }
}

/// Per-operator plan catalog for a whole graph, deduplicated by operator
/// signature (identical transformer layers share plan sets, which is what
/// keeps Elk's search sub-linear in model size, §5).
#[derive(Debug, Clone)]
pub struct Catalog {
    entries: Vec<Arc<OpPlans>>,
    distinct: usize,
}

impl Catalog {
    /// Enumerates plans for every operator of `graph`, sequentially.
    /// Equivalent to [`Catalog::build_par`] with one thread.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFeasiblePlan`] if any operator cannot be
    /// partitioned into the chip's SRAM.
    pub fn build(graph: &ModelGraph, partitioner: &Partitioner<'_>) -> Result<Self, CompileError> {
        Catalog::build_par(graph, partitioner, 1)
    }

    /// Enumerates plans for every operator of `graph`, fanning the
    /// per-signature plan searches across `threads` scoped workers
    /// (`0` = all available cores).
    ///
    /// Operators are first deduplicated by signature (identical
    /// transformer layers share one plan set), then the distinct
    /// signatures — the expensive part — are enumerated in parallel via
    /// [`Partitioner::enumerate_all_par`]. The resulting catalog is
    /// byte-identical at any thread count: signatures keep their
    /// first-appearance order, results merge by index, and on failure
    /// the reported operator is the first infeasible one in graph
    /// order, exactly as the sequential build reports it.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NoFeasiblePlan`] if any operator cannot be
    /// partitioned into the chip's SRAM.
    pub fn build_par(
        graph: &ModelGraph,
        partitioner: &Partitioner<'_>,
        threads: usize,
    ) -> Result<Self, CompileError> {
        // Dedup pass: distinct signatures in first-appearance order.
        let mut index_of_sig: HashMap<String, usize> = HashMap::new();
        let mut reps: Vec<&Operator> = Vec::new();
        let mut sig_of_op: Vec<usize> = Vec::with_capacity(graph.len());
        for op in graph.iter() {
            let idx = *index_of_sig.entry(signature(op)).or_insert_with(|| {
                reps.push(op);
                reps.len() - 1
            });
            sig_of_op.push(idx);
        }

        // With one effective worker, enumerate signature-by-signature
        // and stop at the first infeasible operator — the serving
        // layer's micro-batch fallback probes infeasible shapes on
        // purpose, and paying for the remaining signatures' enumeration
        // just to discard it would dominate that error path.
        let workers = elk_par::resolve_threads(threads).min(reps.len());
        let mut shared = Vec::with_capacity(reps.len());
        if workers <= 1 {
            for op in &reps {
                let plans = partitioner.plans(op);
                if plans.is_empty() {
                    return Err(no_feasible_plan(op));
                }
                shared.push(Arc::new(OpPlans::new(plans)));
            }
        } else {
            let plan_lists = partitioner.enumerate_all_par(&reps, threads);
            for (op, plans) in reps.iter().zip(plan_lists) {
                if plans.is_empty() {
                    return Err(no_feasible_plan(op));
                }
                shared.push(Arc::new(OpPlans::new(plans)));
            }
        }
        Ok(Catalog {
            entries: sig_of_op.iter().map(|&i| Arc::clone(&shared[i])).collect(),
            distinct: reps.len(),
        })
    }

    /// Plans of operator `id`.
    #[must_use]
    pub fn op(&self, id: OpId) -> &OpPlans {
        &self.entries[id.index()]
    }

    /// Number of operators covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct operator signatures (shared plan sets).
    #[must_use]
    pub fn distinct_signatures(&self) -> usize {
        self.distinct
    }

    /// Maximum feasible plan count over all operators — the `P` column of
    /// Table 2.
    #[must_use]
    pub fn max_plans_per_op(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.plans.len())
            .max()
            .unwrap_or(0)
    }
}

fn no_feasible_plan(op: &Operator) -> CompileError {
    CompileError::NoFeasiblePlan {
        op: op.name().to_string(),
        capacity: Bytes::ZERO,
    }
}

fn signature(op: &Operator) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}",
        op.kind(),
        op.dtype(),
        op.stationary(),
        op.stationary_bytes().get(),
        op.hbm_store().get(),
        op.allreduce().get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};

    fn point(space: u64, time_us: f64) -> FrontierPoint {
        FrontierPoint {
            plan_idx: 0,
            space: Bytes::new(space),
            time: Seconds::from_micros(time_us),
        }
    }

    #[test]
    fn frontier_is_minimal_and_sorted() {
        let front = pareto_frontier(vec![
            point(100, 10.0),
            point(50, 20.0),
            point(80, 15.0),
            point(120, 9.0),  // fastest, biggest
            point(90, 30.0),  // dominated by (80, 15)
            point(120, 12.0), // dominated by (120, 9)
        ]);
        assert_eq!(front.len(), 4);
        for w in front.windows(2) {
            assert!(w[0].time < w[1].time);
            assert!(w[0].space > w[1].space);
        }
        assert_eq!(front[0].space, Bytes::new(120));
        assert_eq!(front.last().unwrap().space, Bytes::new(50));
    }

    #[test]
    fn frontier_of_single_point() {
        let front = pareto_frontier(vec![point(10, 1.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn catalog_dedupes_identical_layers() {
        let sys = presets::ipu_pod4();
        let dev = AnalyticDevice::of_chip(&sys.chip);
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let cat = Catalog::build(&g, &p).expect("catalog");
        assert_eq!(cat.len(), g.len());
        // 40 identical layers: distinct signatures ~ one layer's worth.
        assert!(
            cat.distinct_signatures() < g.len() / 10,
            "{} distinct of {}",
            cat.distinct_signatures(),
            g.len()
        );
        assert!(cat.max_plans_per_op() > 10);
    }

    #[test]
    fn parallel_catalog_is_thread_count_invariant() {
        let sys = presets::ipu_pod4();
        let dev = AnalyticDevice::of_chip(&sys.chip);
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let seq = Catalog::build_par(&g, &p, 1).expect("sequential catalog");
        for threads in [2, 8] {
            let par = Catalog::build_par(&g, &p, threads).expect("parallel catalog");
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.distinct_signatures(), seq.distinct_signatures());
            for i in 0..seq.len() {
                assert_eq!(par.op(OpId(i)), seq.op(OpId(i)), "op {i} diverged");
            }
        }
    }

    #[test]
    fn exec_frontier_points_resolve_to_plans() {
        let sys = presets::ipu_pod4();
        let dev = AnalyticDevice::of_chip(&sys.chip);
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let cat = Catalog::build(&g, &p).expect("catalog");
        let plans = cat.op(OpId(2)); // attn_qkv
        for (i, fp) in plans.exec_frontier.iter().enumerate() {
            assert_eq!(plans.plan_at(i).exec_space, fp.space);
            assert!(!plans.preload_points(i).is_empty());
        }
    }
}
