use elk_units::{Bytes, Seconds};

use crate::FrontierPoint;

/// Result of one cost-aware memory allocation (§4.3): the chosen frontier
/// position for the currently-executing operator and for every overlapped
/// preloaded operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Index into the current operator's execute frontier.
    pub current: usize,
    /// Index into each window operator's preload frontier, parallel to
    /// the `windows` argument.
    pub picks: Vec<usize>,
    /// Total per-core footprint of the chosen combination.
    pub space: Bytes,
    /// Execution time of the chosen execute-state plan.
    pub exec_time: Seconds,
    /// Sum of the chosen preload plans' data-distribution times.
    pub distribute_time: Seconds,
}

/// Jointly allocates per-core SRAM between the current operator's
/// execution space and the preload spaces of the operators preloaded
/// during its execution.
///
/// Starts from every operator's fastest (largest) plan and repeatedly
/// steps the most *cost-effective* operator — the one whose next Pareto
/// point frees the most bytes per added second (`Δ = reduced space /
/// increased time`, Fig. 11) — until the combination fits `capacity`.
/// Runs in `O(P·K)` for `K` operators with `P` frontier points each.
///
/// Returns `None` when even the smallest combination exceeds `capacity`.
///
/// Frontiers must be sorted fastest-first (as produced by
/// [`crate::pareto_frontier`] and the partitioner).
#[must_use]
pub fn allocate(
    current: &[FrontierPoint],
    windows: &[&[FrontierPoint]],
    capacity: Bytes,
) -> Option<Allocation> {
    assert!(!current.is_empty(), "current operator has empty frontier");
    debug_assert!(
        windows.iter().all(|w| !w.is_empty()),
        "window operator with empty preload frontier"
    );

    // Positions along each frontier; index 0 = current op, 1.. = windows.
    let mut pos = vec![0usize; windows.len() + 1];
    let frontier = |item: usize| -> &[FrontierPoint] {
        if item == 0 {
            current
        } else {
            windows[item - 1]
        }
    };

    let mut space: Bytes = current[0].space + windows.iter().map(|w| w[0].space).sum::<Bytes>();

    while space > capacity {
        // Pick the step with the best freed-bytes-per-added-second ratio.
        let mut best: Option<(usize, f64)> = None;
        for (item, &at) in pos.iter().enumerate() {
            let f = frontier(item);
            if at + 1 >= f.len() {
                continue;
            }
            let freed = f[at].space - f[at + 1].space;
            let slower = f[at + 1].time - f[at].time;
            let ratio = if slower.is_zero() {
                f64::INFINITY
            } else {
                freed.as_f64() / slower.as_secs()
            };
            if best.is_none_or(|(_, r)| ratio > r) {
                best = Some((item, ratio));
            }
        }
        let (item, _) = best?; // no step available: infeasible
        let f = frontier(item);
        let at = pos[item];
        space = space - f[at].space + f[at + 1].space;
        pos[item] = at + 1;
    }

    let current_idx = pos[0];
    let picks: Vec<usize> = pos[1..].to_vec();
    Some(Allocation {
        current: current_idx,
        picks: picks.clone(),
        space,
        exec_time: current[current_idx].time,
        distribute_time: windows.iter().zip(&picks).map(|(w, &i)| w[i].time).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(plan_idx: usize, space: u64, time_us: f64) -> FrontierPoint {
        FrontierPoint {
            plan_idx,
            space: Bytes::new(space),
            time: Seconds::from_micros(time_us),
        }
    }

    fn frontier(points: &[(u64, f64)]) -> Vec<FrontierPoint> {
        points
            .iter()
            .enumerate()
            .map(|(i, &(s, t))| fp(i, s, t))
            .collect()
    }

    #[test]
    fn fastest_plans_kept_when_capacity_allows() {
        let cur = frontier(&[(100, 10.0), (50, 20.0)]);
        let w1 = frontier(&[(80, 0.0), (40, 5.0)]);
        let a = allocate(&cur, &[&w1], Bytes::new(200)).expect("feasible");
        assert_eq!(a.current, 0);
        assert_eq!(a.picks, vec![0]);
        assert_eq!(a.space, Bytes::new(180));
        assert_eq!(a.distribute_time, Seconds::ZERO);
    }

    #[test]
    fn steps_most_cost_effective_first() {
        // Current: freeing 50 costs 10us (ratio 5/us).
        // Window: freeing 40 costs 1us (ratio 40/us) — must step first.
        let cur = frontier(&[(100, 10.0), (50, 20.0)]);
        let w1 = frontier(&[(80, 0.0), (40, 1.0)]);
        let a = allocate(&cur, &[&w1], Bytes::new(145)).expect("feasible");
        assert_eq!(a.current, 0, "current should keep its fast plan");
        assert_eq!(a.picks, vec![1]);
        assert_eq!(a.space, Bytes::new(140));
    }

    #[test]
    fn infeasible_returns_none() {
        let cur = frontier(&[(100, 10.0), (90, 20.0)]);
        let w1 = frontier(&[(80, 0.0)]);
        assert_eq!(allocate(&cur, &[&w1], Bytes::new(100)), None);
    }

    #[test]
    fn empty_window_list_shrinks_current_only() {
        let cur = frontier(&[(100, 10.0), (60, 12.0), (30, 30.0)]);
        let a = allocate(&cur, &[], Bytes::new(64)).expect("feasible");
        assert_eq!(a.current, 1);
        assert_eq!(a.exec_time, Seconds::from_micros(12.0));
    }

    #[test]
    fn capacity_exactly_met_counts_as_fit() {
        let cur = frontier(&[(100, 10.0)]);
        let a = allocate(&cur, &[], Bytes::new(100)).expect("feasible");
        assert_eq!(a.space, Bytes::new(100));
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instances() {
        // Guardrail: on small instances the greedy total time should be
        // within 25% of the exhaustive optimum (it is optimal for convex
        // frontiers; these are mildly non-convex).
        let cur = frontier(&[(90, 10.0), (60, 14.0), (30, 25.0)]);
        let w1 = frontier(&[(70, 0.0), (35, 6.0), (10, 18.0)]);
        let w2 = frontier(&[(50, 0.0), (25, 2.0), (5, 9.0)]);
        for cap in [210u64, 160, 120, 90, 60] {
            let cap = Bytes::new(cap);
            let greedy = allocate(&cur, &[&w1, &w2], cap);
            // Exhaustive search.
            let mut best: Option<f64> = None;
            for (i, c) in cur.iter().enumerate() {
                for (j, a) in w1.iter().enumerate() {
                    for (k, b) in w2.iter().enumerate() {
                        let _ = (i, j, k);
                        if c.space + a.space + b.space <= cap {
                            let t = (c.time + a.time + b.time).as_micros();
                            if best.is_none_or(|x| t < x) {
                                best = Some(t);
                            }
                        }
                    }
                }
            }
            match (greedy, best) {
                (None, None) => {}
                (Some(g), Some(b)) => {
                    let got = (g.exec_time + g.distribute_time).as_micros();
                    assert!(
                        got <= b * 1.25 + 1e-9,
                        "cap {cap}: greedy {got} vs optimal {b}"
                    );
                }
                (g, b) => panic!("feasibility mismatch at cap {cap}: {g:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn never_exceeds_capacity_when_feasible() {
        // Randomized-ish sweep without rand: vary capacities.
        let cur = frontier(&[(128, 5.0), (96, 7.0), (64, 11.0), (32, 19.0)]);
        let w1 = frontier(&[(100, 0.0), (50, 4.0), (25, 12.0)]);
        let w2 = frontier(&[(64, 0.0), (16, 8.0)]);
        for cap in (70..300).step_by(7) {
            if let Some(a) = allocate(&cur, &[&w1, &w2], Bytes::new(cap)) {
                assert!(a.space <= Bytes::new(cap));
            }
        }
    }
}
