//! The Elk compiler for inter-core connected AI chips (paper §4).
//!
//! Elk turns the three contended resources of an ICCA chip — per-core
//! execution, inter-core communication, and off-chip HBM I/O — into four
//! compiler decisions, and searches them jointly:
//!
//! | decision | module | paper |
//! |---|---|---|
//! | number of operators preloaded ahead | [`Scheduler`] | §4.2 |
//! | execution-space size per operator | [`allocate`] | §4.3 |
//! | preload-space size per operator | [`allocate`] | §4.3 |
//! | preload order | [`candidate_orders`] | §4.4 |
//!
//! The [`Compiler`] drives the pipeline: fit a cost model, enumerate
//! partition plans ([`Catalog`]), search preload orders with the backward
//! inductive scheduler, arbitrate memory with the greedy cost-aware
//! allocator, pick the best forward-timeline estimate ([`evaluate`]), and
//! lower the winner to the §4.5 abstract device program
//! ([`DeviceProgram`]) that the simulator (or a real backend) consumes.
//!
//! ```
//! use elk_core::Compiler;
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//!
//! # fn main() -> Result<(), elk_core::CompileError> {
//! let mut cfg = zoo::opt_30b();
//! cfg.layers = 2; // doctest-sized
//! let graph = cfg.build(Workload::decode(16, 512), 4);
//! let plan = Compiler::new(presets::ipu_pod4()).compile(&graph)?;
//! assert_eq!(plan.estimate.capacity_violations, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod alloc;
mod compiler;
mod error;
mod frontier;
mod program;
mod reorder;
mod schedule;
mod timeline;

pub use alloc::{allocate, Allocation};
pub use compiler::{CompileStats, CompiledPlan, Compiler, CompilerOptions};
pub use error::CompileError;
pub use frontier::{pareto_frontier, Catalog, FrontierPoint, OpPlans};
pub use program::{DeviceInstr, DeviceProgram, OpSpec};
pub use reorder::{candidate_orders, inversions, CandidateOrder, ReorderOptions};
pub use schedule::{identity_order, OpSchedule, Schedule, ScheduleOptions, Scheduler};
pub use timeline::{evaluate, PlanEstimate};
