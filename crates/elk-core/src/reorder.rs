use serde::{Deserialize, Serialize};

use elk_model::{ModelGraph, OpId};
use elk_units::Bytes;

use crate::Catalog;

/// Preload-order search knobs (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderOptions {
    /// Enable reordering (disabled = Elk-Dyn).
    pub enable: bool,
    /// Maximum candidate orders to evaluate (identity included).
    pub max_orders: usize,
    /// Cap on the edit distance (Kendall-tau adjacent-swap steps) of the
    /// per-layer heavy-operator permutation; `None` explores all `H!`.
    pub max_edit_distance: Option<usize>,
}

impl Default for ReorderOptions {
    fn default() -> Self {
        ReorderOptions {
            enable: true,
            max_orders: 48,
            max_edit_distance: Some(4),
        }
    }
}

/// A candidate preload order: the full-model π plus bookkeeping about the
/// per-layer permutation it was derived from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateOrder {
    /// Preload issue order over all operators.
    pub order: Vec<OpId>,
    /// Edit distance (inversions) of the per-layer heavy permutation.
    pub edit_distance: usize,
}

/// Generates candidate preload orders using the paper's pruning (§4.4):
///
/// * only HBM-heavy operators are reordered — the rest preload in
///   execution order;
/// * the permutation is chosen within one transformer layer and applied
///   to all identical layers, shrinking the space from `O(K^N)` to
///   `O(C^H)`;
/// * permutations whose worst-case co-resident heavy set cannot fit
///   on-chip are pruned (the suffix-walk feasibility check of Fig. 14);
/// * candidates are explored in increasing edit distance (the paper's
///   chosen orders average 2.9 steps from identity).
///
/// The identity order is always the first candidate.
#[must_use]
pub fn candidate_orders(
    graph: &ModelGraph,
    catalog: &Catalog,
    capacity: Bytes,
    opts: &ReorderOptions,
) -> Vec<CandidateOrder> {
    let n = graph.len();
    let identity = CandidateOrder {
        order: (0..n).map(OpId).collect(),
        edit_distance: 0,
    };
    if !opts.enable || opts.max_orders <= 1 {
        return vec![identity];
    }

    // Heavy slots of a representative (interior, so identical) layer.
    let heavy = graph.hbm_heavy_ops();
    let spans = graph.layer_spans();
    let Some(span) = spans.get(1).or_else(|| spans.first()) else {
        return vec![identity];
    };
    let slots: Vec<usize> = heavy
        .iter()
        .map(|id| id.index())
        .filter(|i| span.ops.contains(i))
        .collect();
    let h = slots.len();
    if !(2..=8).contains(&h) {
        return vec![identity];
    }

    // Worst-case footprint of each heavy op: its smallest preload space
    // over the execute frontier (the most forgiving choice — pruning must
    // not discard orders Elk could still allocate).
    let min_space: Vec<Bytes> = slots
        .iter()
        .map(|&i| {
            let plans = catalog.op(OpId(i));
            (0..plans.exec_frontier.len())
                .map(|f| plans.min_preload_space(f))
                .min()
                .unwrap_or(Bytes::ZERO)
        })
        .collect();

    let mut perms = permutations(h);
    perms.retain(|p| {
        let d = inversions(p);
        opts.max_edit_distance.is_none_or(|cap| d <= cap) && order_fits(p, &min_space, capacity)
    });
    perms.sort_by_key(|p| (inversions(p), p.clone()));

    let mut out = vec![identity];
    for p in perms {
        if inversions(&p) == 0 {
            continue; // identity already present
        }
        if out.len() >= opts.max_orders {
            break;
        }
        out.push(CandidateOrder {
            order: apply_layer_perm(graph, &p),
            edit_distance: inversions(&p),
        });
    }
    out
}

/// Builds the full-model π by permuting each layer's heavy preload slots
/// with `perm` and leaving light operators in execution order.
fn apply_layer_perm(graph: &ModelGraph, perm: &[usize]) -> Vec<OpId> {
    let mut order: Vec<OpId> = (0..graph.len()).map(OpId).collect();
    let heavy = graph.hbm_heavy_ops();
    for span in graph.layer_spans() {
        let slots: Vec<usize> = heavy
            .iter()
            .map(|id| id.index())
            .filter(|i| span.ops.contains(i))
            .collect();
        if slots.len() != perm.len() {
            continue; // boundary layer with a different shape: keep identity
        }
        let ops_at: Vec<OpId> = slots.iter().map(|&i| OpId(i)).collect();
        for (slot_pos, &src) in perm.iter().enumerate() {
            order[slots[slot_pos]] = ops_at[src];
        }
    }
    order
}

/// Fig. 14-style feasibility: for each heavy op `e_j` (execution order),
/// every heavy op preloaded at or before `e_j`'s preload but executing at
/// or after it is co-resident just before `e_j` executes; the set must
/// fit on-chip even at minimal footprints.
fn order_fits(perm: &[usize], min_space: &[Bytes], capacity: Bytes) -> bool {
    let h = perm.len();
    // pos_in_pi[e] = preload position of exec-index e.
    let mut pos = vec![0usize; h];
    for (k, &e) in perm.iter().enumerate() {
        pos[e] = k;
    }
    for e in 0..h {
        let resident: Bytes = (0..h)
            .filter(|&x| pos[x] <= pos[e] && x >= e)
            .map(|x| min_space[x])
            .sum();
        if resident > capacity {
            return false;
        }
    }
    true
}

/// All permutations of `0..h` (Heap's algorithm).
fn permutations(h: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..h).collect();
    let mut out = Vec::new();
    heap_rec(h, &mut items, &mut out);
    out
}

fn heap_rec(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_rec(k - 1, items, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Kendall-tau distance from identity: the number of inversions.
#[must_use]
pub fn inversions(perm: &[usize]) -> usize {
    let mut d = 0;
    for i in 0..perm.len() {
        for j in i + 1..perm.len() {
            if perm[i] > perm[j] {
                d += 1;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_partition::Partitioner;

    #[test]
    fn permutation_count_is_factorial() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(6).len(), 720);
    }

    #[test]
    fn inversions_basics() {
        assert_eq!(inversions(&[0, 1, 2]), 0);
        assert_eq!(inversions(&[1, 0, 2]), 1);
        assert_eq!(inversions(&[2, 1, 0]), 3);
    }

    #[test]
    fn identity_is_first_candidate() {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let orders = candidate_orders(
            &graph,
            &catalog,
            system.chip.usable_sram_per_core(),
            &ReorderOptions::default(),
        );
        assert!(orders.len() > 1, "should find reorder candidates");
        assert_eq!(orders[0].edit_distance, 0);
        assert_eq!(
            orders[0].order,
            (0..graph.len()).map(OpId).collect::<Vec<_>>()
        );
        // Sorted by edit distance.
        for w in orders.windows(2) {
            assert!(w[0].edit_distance <= w[1].edit_distance);
        }
    }

    #[test]
    fn candidates_are_valid_permutations() {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let orders = candidate_orders(
            &graph,
            &catalog,
            system.chip.usable_sram_per_core(),
            &ReorderOptions::default(),
        );
        for cand in &orders {
            let mut seen = vec![false; graph.len()];
            for id in &cand.order {
                assert!(!seen[id.index()], "duplicate {id}");
                seen[id.index()] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn only_heavy_ops_move() {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let orders = candidate_orders(
            &graph,
            &catalog,
            system.chip.usable_sram_per_core(),
            &ReorderOptions::default(),
        );
        let heavy: std::collections::HashSet<usize> =
            graph.hbm_heavy_ops().iter().map(|i| i.index()).collect();
        for cand in orders.iter().skip(1) {
            for (slot, op) in cand.order.iter().enumerate() {
                if op.index() != slot {
                    assert!(heavy.contains(&slot), "light slot {slot} moved");
                    assert!(heavy.contains(&op.index()), "light op {op} moved");
                }
            }
        }
    }

    #[test]
    fn disabled_reorder_returns_identity_only() {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let opts = ReorderOptions {
            enable: false,
            ..ReorderOptions::default()
        };
        let orders = candidate_orders(&graph, &catalog, system.chip.usable_sram_per_core(), &opts);
        assert_eq!(orders.len(), 1);
    }

    #[test]
    fn order_fits_rejects_oversized_residency() {
        // Three ops of 100 bytes each; capacity 250. Delaying op 0's
        // preload to the end means all three co-reside before op 0 runs.
        let spaces = vec![Bytes::new(100); 3];
        assert!(order_fits(&[0, 1, 2], &spaces, Bytes::new(250)));
        assert!(!order_fits(&[1, 2, 0], &spaces, Bytes::new(250)));
        assert!(order_fits(&[1, 2, 0], &spaces, Bytes::new(300)));
    }
}
