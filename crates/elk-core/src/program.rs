use std::fmt;

use serde::{Deserialize, Serialize};

use elk_cost::TileShape;
use elk_model::{ModelGraph, OpId};
use elk_units::{Bytes, Flops, Seconds};

use crate::{Catalog, Schedule};

/// One instruction of the abstract ICCA device program (§4.5).
///
/// The hardware rules are:
/// 1. an `Execute` blocks all later instructions until it completes;
/// 2. `PreloadAsync`s run sequentially among themselves;
/// 3. a `PreloadAsync` blocks only its own operator's `Execute` (the
///    done-tag wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceInstr {
    /// Request the operator's data from HBM under its preload-state plan.
    PreloadAsync {
        /// Operator whose stationary data is delivered.
        op: OpId,
    },
    /// Wait for the done tag, run data distribution, then execute tiles.
    Execute {
        /// Operator to run.
        op: OpId,
    },
}

impl fmt::Display for DeviceInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceInstr::PreloadAsync { op } => write!(f, "preload_async(op={})", op.0),
            DeviceInstr::Execute { op } => write!(f, "execute(op={})", op.0),
        }
    }
}

/// Fully-resolved per-operator execution parameters: everything a
/// hardware backend or simulator needs, with no reference back to the
/// compiler's catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Operator id.
    pub op: OpId,
    /// Operator name (for reports).
    pub name: String,
    /// Total floating-point work (for achieved-TFLOPS accounting).
    pub flops: Flops,
    /// Per-core per-chunk compute tile.
    pub tile: TileShape,
    /// Rotation micro-steps per core.
    pub chunks: u64,
    /// Cores occupied.
    pub cores_used: u64,
    /// Per-core SRAM during execution.
    pub exec_space: Bytes,
    /// Per-core SRAM from preload completion until execution.
    pub preload_space: Bytes,
    /// Per-core inbound inter-core bytes during execution.
    pub shift_traffic: Bytes,
    /// Per-core inbound bytes in the data-distribution phase.
    pub distribute_traffic: Bytes,
    /// DRAM-side read volume of the preload.
    pub hbm_load: Bytes,
    /// DRAM-side write volume of the execution (KV append).
    pub hbm_store: Bytes,
    /// Fabric bytes injected by HBM controllers during preload.
    pub noc_preload_bytes: Bytes,
    /// Inter-chip all-reduce volume after execution.
    pub allreduce: Bytes,
    /// Compiler's execution-length estimate (distribution + execution +
    /// all-reduce + contention allowance).
    pub exec_len: Seconds,
    /// Compiler's preload-duration estimate.
    pub preload_len: Seconds,
}

/// A lowered device program: the §4.5 instruction stream plus resolved
/// per-operator specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProgram {
    /// Interleaved instruction stream.
    pub instrs: Vec<DeviceInstr>,
    /// Per-operator parameters, indexed by operator id.
    pub specs: Vec<OpSpec>,
}

impl DeviceProgram {
    /// Lowers a schedule into the §4.5 programming model: preloads are
    /// issued in preload order, each as late as the schedule's overlap
    /// windows allow, interleaved with the in-order `Execute` stream.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` does not cover `graph` (always covered when
    /// produced by [`crate::Scheduler`] on the same graph).
    #[must_use]
    pub fn lower(graph: &ModelGraph, catalog: &Catalog, schedule: &Schedule) -> DeviceProgram {
        let n = graph.len();
        assert_eq!(schedule.per_op.len(), n, "schedule does not cover graph");
        let mut pos = vec![0usize; n];
        for (k, id) in schedule.order.iter().enumerate() {
            pos[id.index()] = k;
        }

        let mut instrs = Vec::with_capacity(2 * n);
        let mut issued = 0usize;
        for (i, per_op) in schedule.per_op.iter().enumerate() {
            let cut = per_op.cut.max(pos[i] + 1).min(n);
            while issued < cut {
                instrs.push(DeviceInstr::PreloadAsync {
                    op: schedule.order[issued],
                });
                issued += 1;
            }
            instrs.push(DeviceInstr::Execute { op: OpId(i) });
        }

        let specs = (0..n)
            .map(|i| {
                let s = &schedule.per_op[i];
                let plans = catalog.op(OpId(i));
                let plan = plans.plan_at(s.exec_idx);
                let pre = plans.preload_at(s.exec_idx, s.preload_idx);
                let op = graph.op(OpId(i));
                OpSpec {
                    op: OpId(i),
                    name: op.name().to_string(),
                    flops: op.flops(),
                    tile: plan.tile,
                    chunks: plan.chunks,
                    cores_used: plan.cores_used,
                    exec_space: plan.exec_space,
                    preload_space: pre.preload_space,
                    shift_traffic: plan.shift_traffic,
                    distribute_traffic: pre.distribute_traffic,
                    hbm_load: pre.hbm_bytes,
                    hbm_store: op.hbm_store(),
                    noc_preload_bytes: pre.noc_preload_bytes,
                    allreduce: op.allreduce(),
                    exec_len: s.exec_len,
                    preload_len: s.preload_len,
                }
            })
            .collect();

        DeviceProgram { instrs, specs }
    }

    /// Number of operators.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.specs.len()
    }

    /// Checks the §4.5 well-formedness rules: every operator is preloaded
    /// exactly once, before its execution; executes appear in operator
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.specs.len();
        let mut preloaded = vec![false; n];
        let mut executed = vec![false; n];
        let mut last_exec: Option<usize> = None;
        for instr in &self.instrs {
            match *instr {
                DeviceInstr::PreloadAsync { op } => {
                    if preloaded[op.index()] {
                        return Err(format!("{op} preloaded twice"));
                    }
                    if executed[op.index()] {
                        return Err(format!("{op} preloaded after execution"));
                    }
                    preloaded[op.index()] = true;
                }
                DeviceInstr::Execute { op } => {
                    if !preloaded[op.index()] {
                        return Err(format!("{op} executed before preload"));
                    }
                    if let Some(prev) = last_exec {
                        if op.index() != prev + 1 {
                            return Err(format!(
                                "execute order broken: op{} after op{prev}",
                                op.index()
                            ));
                        }
                    } else if op.index() != 0 {
                        return Err("first execute is not op0".to_string());
                    }
                    executed[op.index()] = true;
                    last_exec = Some(op.index());
                }
            }
        }
        if !executed.iter().all(|&e| e) {
            return Err("not all operators executed".to_string());
        }
        if !preloaded.iter().all(|&p| p) {
            return Err("not all operators preloaded".to_string());
        }
        Ok(())
    }

    /// The preload issue order as operator ids.
    #[must_use]
    pub fn preload_order(&self) -> Vec<OpId> {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                DeviceInstr::PreloadAsync { op } => Some(*op),
                DeviceInstr::Execute { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identity_order, ScheduleOptions, Scheduler};
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_partition::Partitioner;

    fn lowered() -> (ModelGraph, DeviceProgram) {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let sched = Scheduler::new(&graph, &catalog, &system, ScheduleOptions::default())
            .schedule(&identity_order(graph.len()))
            .unwrap();
        let prog = DeviceProgram::lower(&graph, &catalog, &sched);
        (graph, prog)
    }

    #[test]
    fn lowered_program_is_well_formed() {
        let (graph, prog) = lowered();
        prog.validate().expect("valid program");
        assert_eq!(prog.instrs.len(), 2 * graph.len());
        assert_eq!(prog.preload_order(), identity_order(graph.len()));
    }

    #[test]
    fn preloads_run_ahead_of_execution() {
        let (_, prog) = lowered();
        // Before the first execute, at least op0's preload is issued; with
        // overlap, usually several.
        let first_exec = prog
            .instrs
            .iter()
            .position(|i| matches!(i, DeviceInstr::Execute { .. }))
            .unwrap();
        assert!(first_exec >= 1);
    }

    #[test]
    fn validate_catches_missing_preload() {
        let (_, mut prog) = lowered();
        // Drop the first preload instruction.
        let idx = prog
            .instrs
            .iter()
            .position(|i| matches!(i, DeviceInstr::PreloadAsync { .. }))
            .unwrap();
        prog.instrs.remove(idx);
        assert!(prog.validate().is_err());
    }

    #[test]
    fn specs_carry_resolved_quantities() {
        let (graph, prog) = lowered();
        for (i, spec) in prog.specs.iter().enumerate() {
            assert_eq!(spec.op, OpId(i));
            assert_eq!(
                spec.hbm_load.is_zero(),
                graph.op(OpId(i)).hbm_load().is_zero()
            );
            assert!(spec.cores_used > 0);
            assert!(spec.exec_len > Seconds::ZERO);
        }
    }
}
