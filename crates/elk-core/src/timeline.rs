use serde::{Deserialize, Serialize};

use elk_units::{Bytes, Seconds};

use crate::{DeviceInstr, DeviceProgram};

/// Forward timeline evaluation of a device program under the §4.5
/// hardware rules — the compiler's authoritative end-to-end estimate
/// (contention is charged per operator inside the spec lengths; the
/// event simulator in `elk-sim` measures it dynamically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEstimate {
    /// End-to-end makespan.
    pub total: Seconds,
    /// Time the preload engine (HBM path) is busy.
    pub preload_busy: Seconds,
    /// Time the cores are busy executing.
    pub exec_busy: Seconds,
    /// Time both are busy simultaneously (the §6.2 "overlapped" bucket).
    pub overlap: Seconds,
    /// Per-operator execution intervals.
    pub exec_spans: Vec<(Seconds, Seconds)>,
    /// Per-operator preload intervals.
    pub preload_spans: Vec<(Seconds, Seconds)>,
    /// Peak per-core SRAM residency observed.
    pub peak_resident: Bytes,
    /// Maximum number of simultaneously-resident operators (`K`-like).
    pub peak_resident_ops: usize,
    /// Events where residency exceeded `capacity` (0 for sound plans).
    pub capacity_violations: usize,
}

impl PlanEstimate {
    /// Fraction of the makespan with preload and execution overlapped.
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.overlap / self.total
        }
    }
}

/// Replays `program` on the abstract machine: sequential preloads,
/// execute-blocks-future-preloads, done-tag waits — and audits per-core
/// memory residency against `capacity`.
#[must_use]
pub fn evaluate(program: &DeviceProgram, capacity: Bytes) -> PlanEstimate {
    let n = program.op_count();
    let mut pre_end = vec![Seconds::ZERO; n];
    let mut pre_span = vec![(Seconds::ZERO, Seconds::ZERO); n];
    let mut exec_span = vec![(Seconds::ZERO, Seconds::ZERO); n];
    let mut pre_free = Seconds::ZERO;
    let mut exec_free = Seconds::ZERO;
    let mut barrier = Seconds::ZERO; // end of the last Execute issued so far

    for instr in &program.instrs {
        match *instr {
            DeviceInstr::PreloadAsync { op } => {
                let spec = &program.specs[op.index()];
                let start = pre_free.max(barrier);
                let end = start + spec.preload_len;
                pre_span[op.index()] = (start, end);
                pre_end[op.index()] = end;
                pre_free = end;
            }
            DeviceInstr::Execute { op } => {
                let spec = &program.specs[op.index()];
                let start = exec_free.max(pre_end[op.index()]);
                let end = start + spec.exec_len;
                exec_span[op.index()] = (start, end);
                exec_free = end;
                barrier = end;
            }
        }
    }

    let total = exec_free;
    let preload_busy: Seconds = pre_span.iter().map(|&(s, e)| e - s).sum();
    let exec_busy: Seconds = exec_span.iter().map(|&(s, e)| e - s).sum();
    let overlap = interval_overlap(&pre_span, &exec_span);
    let (peak_resident, peak_resident_ops, capacity_violations) =
        audit_memory(program, &pre_span, &exec_span, capacity);

    PlanEstimate {
        total,
        preload_busy,
        exec_busy,
        overlap,
        exec_spans: exec_span,
        preload_spans: pre_span,
        peak_resident,
        peak_resident_ops,
        capacity_violations,
    }
}

/// Total intersection of two families of disjoint intervals.
fn interval_overlap(a: &[(Seconds, Seconds)], b: &[(Seconds, Seconds)]) -> Seconds {
    let mut av: Vec<(Seconds, Seconds)> = a.iter().copied().filter(|(s, e)| e > s).collect();
    let mut bv: Vec<(Seconds, Seconds)> = b.iter().copied().filter(|(s, e)| e > s).collect();
    av.sort_by_key(|&(s, _)| s);
    bv.sort_by_key(|&(s, _)| s);
    let (mut i, mut j) = (0, 0);
    let mut total = Seconds::ZERO;
    while i < av.len() && j < bv.len() {
        let lo = av[i].0.max(bv[j].0);
        let hi = av[i].1.min(bv[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if av[i].1 <= bv[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Sweeps residency events: `+preload_space` at preload start, swap to
/// `exec_space` at execution start, free at execution end.
fn audit_memory(
    program: &DeviceProgram,
    pre: &[(Seconds, Seconds)],
    exec: &[(Seconds, Seconds)],
    capacity: Bytes,
) -> (Bytes, usize, usize) {
    #[derive(Clone, Copy)]
    enum Ev {
        PreStart(usize),
        ExecStart(usize),
        ExecEnd(usize),
    }
    let mut events: Vec<(Seconds, u8, Ev)> = Vec::with_capacity(3 * pre.len());
    for i in 0..pre.len() {
        // Order ties: frees before starts so back-to-back swaps don't
        // double-count.
        events.push((exec[i].1, 0, Ev::ExecEnd(i)));
        events.push((exec[i].0, 1, Ev::ExecStart(i)));
        events.push((pre[i].0, 2, Ev::PreStart(i)));
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut resident = Bytes::ZERO;
    let mut ops = 0usize;
    let mut peak = Bytes::ZERO;
    let mut peak_ops = 0usize;
    let mut violations = 0usize;
    for (_, _, ev) in events {
        match ev {
            Ev::PreStart(i) => {
                resident += program.specs[i].preload_space;
                ops += 1;
            }
            Ev::ExecStart(i) => {
                let spec = &program.specs[i];
                resident = resident.saturating_sub(spec.preload_space) + spec.exec_space;
            }
            Ev::ExecEnd(i) => {
                resident = resident.saturating_sub(program.specs[i].exec_space);
                ops = ops.saturating_sub(1);
            }
        }
        if resident > peak {
            peak = resident;
        }
        peak_ops = peak_ops.max(ops);
        if resident > capacity {
            violations += 1;
        }
    }
    (peak, peak_ops, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{identity_order, Catalog, DeviceProgram, ScheduleOptions, Scheduler};
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_partition::Partitioner;

    fn sec(x: f64) -> Seconds {
        Seconds::new(x)
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = [(sec(0.0), sec(1.0))];
        let b = [(sec(1.0), sec(2.0))];
        assert_eq!(interval_overlap(&a, &b), Seconds::ZERO);
    }

    #[test]
    fn overlap_partial() {
        let a = [(sec(0.0), sec(2.0)), (sec(3.0), sec(4.0))];
        let b = [(sec(1.0), sec(3.5))];
        let got = interval_overlap(&a, &b).as_secs();
        assert!((got - 1.5).abs() < 1e-12);
    }

    fn build(graph_batch: u64) -> (elk_hw::SystemConfig, DeviceProgram) {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(graph_batch, 1024), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).unwrap();
        let sched = Scheduler::new(&graph, &catalog, &system, ScheduleOptions::default())
            .schedule(&identity_order(graph.len()))
            .unwrap();
        (
            system.clone(),
            DeviceProgram::lower(&graph, &catalog, &sched),
        )
    }

    #[test]
    fn elk_schedule_respects_capacity() {
        let (system, prog) = build(16);
        let est = evaluate(&prog, system.chip.usable_sram_per_core());
        assert_eq!(
            est.capacity_violations, 0,
            "peak resident {} exceeds capacity",
            est.peak_resident
        );
        assert!(est.peak_resident > Bytes::ZERO);
        assert!(est.peak_resident_ops >= 2);
    }

    #[test]
    fn preload_and_execution_overlap_substantially() {
        let (system, prog) = build(16);
        let est = evaluate(&prog, system.chip.usable_sram_per_core());
        assert!(
            est.overlap_fraction() > 0.3,
            "overlap fraction {:.3} too low for Elk",
            est.overlap_fraction()
        );
        assert!(est.total >= est.exec_busy.max(est.preload_busy) - Seconds::from_micros(1.0));
    }

    #[test]
    fn executes_are_sequential_and_ordered() {
        let (system, prog) = build(16);
        let est = evaluate(&prog, system.chip.usable_sram_per_core());
        for w in est.exec_spans.windows(2) {
            assert!(w[1].0 >= w[0].1, "execution overlap between ops");
        }
        // Done-tag rule: execution never starts before its preload ends.
        for (e, p) in est.exec_spans.iter().zip(&est.preload_spans) {
            assert!(e.0 >= p.1);
        }
    }

    #[test]
    fn preloads_are_sequential() {
        let (system, prog) = build(16);
        let est = evaluate(&prog, system.chip.usable_sram_per_core());
        let order = prog.preload_order();
        for w in order.windows(2) {
            let a = est.preload_spans[w[0].index()];
            let b = est.preload_spans[w[1].index()];
            assert!(b.0 >= a.1, "preloads overlap in issue order");
        }
    }
}
