use serde::{Deserialize, Serialize};

use elk_hw::SystemConfig;
use elk_model::{ModelGraph, OpId};
use elk_partition::PreloadPlan;
use elk_units::{Bytes, Seconds};

use crate::{allocate, Catalog, CompileError, FrontierPoint};

/// Scheduler knobs. The defaults are full Elk behaviour; baselines restrict
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Cap on the preload number per operator (`None` = memory-bounded
    /// only). `Some(1)` approximates compilers that only prefetch the next
    /// operator.
    pub max_preload_number: Option<usize>,
    /// Model interconnect contention between overlapped preload traffic
    /// and execution traffic when estimating execution time.
    pub model_contention: bool,
    /// Override the per-core capacity (used by the Ideal roofline, which
    /// assumes contention- and capacity-free hardware).
    pub capacity_override: Option<Bytes>,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            max_preload_number: None,
            model_contention: true,
            capacity_override: None,
        }
    }
}

/// Per-operator outcome of the inductive scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSchedule {
    /// The operator.
    pub op: OpId,
    /// Chosen position on the operator's execute-state Pareto frontier.
    pub exec_idx: usize,
    /// Chosen preload-state plan (index into the execute plan's
    /// `preload_plans`).
    pub preload_idx: usize,
    /// Number of future-operator preloads overlapping this execution.
    pub preload_number: usize,
    /// Preload-order position cut: preloads at order positions `< cut`
    /// may be issued before this operator's `execute` call.
    pub cut: usize,
    /// Estimated execution length: execute-state time + data distribution
    /// + inter-chip all-reduce + contention allowance.
    pub exec_len: Seconds,
    /// Estimated preload duration (HBM roofline vs interconnect
    /// injection, §4.2).
    pub preload_len: Seconds,
    /// The contention allowance included in `exec_len`.
    pub contention: Seconds,
}

/// A complete schedule of one model under a fixed preload order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-operator choices, indexed by operator id (execution order).
    pub per_op: Vec<OpSchedule>,
    /// The preload order (π) the schedule was built for.
    pub order: Vec<OpId>,
    /// The backward pass's start-to-end estimate (the forward timeline
    /// evaluation in [`crate::evaluate`] is authoritative).
    pub est_total: Seconds,
}

/// The two-level inductive operator scheduler (§4.2).
///
/// Walks the execution order backwards; for each operator it enumerates
/// feasible preload numbers, invokes the cost-aware allocator for each,
/// and keeps the preload number minimizing the current-to-end time
/// (Lemma 4.1 / Theorem 4.2). Runs in `O(K·N)` allocator invocations.
#[derive(Debug)]
pub struct Scheduler<'a> {
    graph: &'a ModelGraph,
    catalog: &'a Catalog,
    system: &'a SystemConfig,
    opts: ScheduleOptions,
}

/// A scheduled-but-not-yet-executed preload, ordered by π position.
struct Pending {
    op: OpId,
    pos: usize,
    start: Seconds, // time-to-end of preload start
    points: Vec<FrontierPoint>,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler over a prepared catalog.
    #[must_use]
    pub fn new(
        graph: &'a ModelGraph,
        catalog: &'a Catalog,
        system: &'a SystemConfig,
        opts: ScheduleOptions,
    ) -> Self {
        Scheduler {
            graph,
            catalog,
            system,
            opts,
        }
    }

    fn capacity(&self) -> Bytes {
        self.opts
            .capacity_override
            .unwrap_or_else(|| self.system.chip.usable_sram_per_core())
    }

    /// Estimated preload duration: the max of the HBM roofline time and
    /// the interconnect delivery time (§4.2).
    #[must_use]
    pub fn preload_duration(&self, pre: &PreloadPlan) -> Seconds {
        if pre.hbm_bytes.is_zero() {
            return Seconds::ZERO;
        }
        let hbm_t = self.system.hbm.load_time(pre.hbm_bytes);
        let chip = &self.system.chip;
        let injection = chip
            .topology
            .hbm_injection_bandwidth(chip.cores)
            .min(chip.topology.effective_bulk_bandwidth(chip.cores));
        let noc_t = injection.transfer_time(pre.noc_preload_bytes);
        hbm_t.max(noc_t)
    }

    /// Extra execution time from sharing the fabric with `p` overlapped
    /// preloads: the execution's interconnect traffic is re-costed at the
    /// fabric capacity left over by HBM delivery.
    fn contention_penalty(&self, p: usize, exec_noc_bytes: Bytes) -> Seconds {
        if !self.opts.model_contention || p == 0 || exec_noc_bytes.is_zero() {
            return Seconds::ZERO;
        }
        let chip = &self.system.chip;
        let fabric = chip.topology.effective_bulk_bandwidth(chip.cores);
        let hbm_rate = self
            .system
            .hbm
            .total_bandwidth()
            .min(chip.topology.hbm_injection_bandwidth(chip.cores));
        let available =
            (fabric.bytes_per_sec() - hbm_rate.bytes_per_sec()).max(fabric.bytes_per_sec() * 0.2);
        let with = exec_noc_bytes.as_f64() / available;
        let without = exec_noc_bytes.as_f64() / fabric.bytes_per_sec();
        Seconds::new((with - without).max(0.0))
    }

    /// Runs the backward inductive pass under preload order `order`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidPreloadOrder`] if `order` is not a
    /// permutation of the graph's operators, and
    /// [`CompileError::CapacityExceeded`] if some operator cannot fit
    /// on-chip even alone.
    pub fn schedule(&self, order: &[OpId]) -> Result<Schedule, CompileError> {
        let n = self.graph.len();
        if n == 0 {
            return Err(CompileError::EmptyGraph);
        }
        let pos = positions(order, n)?;
        let capacity = self.capacity();

        let mut per_op: Vec<Option<OpSchedule>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<Pending> = Vec::new();
        let mut exe_start_next = Seconds::ZERO;
        let mut cut_next = n; // π cut of operator i+1

        for i in (0..n).rev() {
            let op = OpId(i);
            let plans = self.catalog.op(op);

            // Nesting constraint: anything overlapping exec(i), other than
            // op i+1 itself, must also have been allowed to overlap
            // exec(i+1) — otherwise residency would escape the window
            // accounting.
            let mut max_p = 0usize;
            for q in &pending {
                if q.op == OpId(i + 1) || q.pos < cut_next {
                    max_p += 1;
                } else {
                    break;
                }
            }
            if let Some(cap) = self.opts.max_preload_number {
                max_p = max_p.min(cap);
            }
            // Preloads that π places before op i's own preload but belong
            // to later-executing operators complete before exec(i) and are
            // unconditionally resident: the window must include them.
            let min_p = pending.partition_point(|q| q.pos < pos[i]);
            if min_p > max_p {
                return Err(CompileError::InvalidPreloadOrder {
                    reason: format!(
                        "order forces {min_p} resident preloads at {} but nesting allows {max_p}",
                        self.graph.op(op).name()
                    ),
                });
            }

            let mut best: Option<(usize, crate::Allocation, Seconds, Seconds)> = None;
            for p in min_p..=max_p {
                let windows: Vec<&[FrontierPoint]> =
                    pending[..p].iter().map(|q| q.points.as_slice()).collect();
                let Some(alloc) = allocate(&plans.exec_frontier, &windows, capacity) else {
                    if best.is_none() {
                        return Err(CompileError::CapacityExceeded {
                            op: self.graph.op(op).name().to_string(),
                            required: plans.exec_frontier.last().map_or(Bytes::ZERO, |f| f.space),
                            capacity,
                        });
                    }
                    break; // larger windows cannot become feasible again
                };

                let end_bound = if p < pending.len() {
                    exe_start_next.max(pending[p].start)
                } else {
                    exe_start_next
                };
                let plan = plans.plan_at(alloc.current);
                let exec_noc = Bytes::new(plan.shift_traffic.get().saturating_mul(plan.cores_used));
                let contention = self.contention_penalty(p, exec_noc);
                let exec_len = alloc.exec_time
                    + contention
                    + self.system.allreduce_time(self.graph.op(op).allreduce());
                // Score includes the distribution cost the window choices
                // impose on future executions (Fig. 11's joint objective).
                let score = end_bound + exec_len + alloc.distribute_time;
                let current_to_end = end_bound + exec_len;
                if best.as_ref().is_none_or(|(_, _, s, _)| score < *s) {
                    best = Some((p, alloc, score, current_to_end));
                }
            }

            let (p, alloc, _, _) = best.expect("min_p is always evaluated or errored");
            let end_bound = if p < pending.len() {
                exe_start_next.max(pending[p].start)
            } else {
                exe_start_next
            };
            // Commit window picks with the min-space rule: an operator
            // resident in several windows keeps its smallest footprint.
            for (q, &pick) in pending[..p].iter().zip(&alloc.picks) {
                let s = per_op[q.op.index()]
                    .as_mut()
                    .expect("window ops are already scheduled");
                s.preload_idx = s.preload_idx.max(pick);
            }

            let plan = plans.plan_at(alloc.current);
            let exec_noc = Bytes::new(plan.shift_traffic.get().saturating_mul(plan.cores_used));
            let contention = self.contention_penalty(p, exec_noc);
            let exec_len = alloc.exec_time
                + contention
                + self.system.allreduce_time(self.graph.op(op).allreduce());
            let exe_start = end_bound + exec_len;
            let cut = if p < pending.len() { pending[p].pos } else { n };

            // Place op i's own preload as late as the π order allows
            // (§4.2: just before its execution or before the next preload
            // in order, whichever is earlier).
            let insert_at = pending.partition_point(|q| q.pos < pos[i]);
            let next_start = pending.get(insert_at).map_or(Seconds::ZERO, |q| q.start);
            let pre_end = exe_start.max(next_start);
            let pre_len = self.preload_duration(plans.preload_at(alloc.current, 0));
            pending.insert(
                insert_at,
                Pending {
                    op,
                    pos: pos[i],
                    start: pre_end + pre_len,
                    points: plans.preload_points(alloc.current),
                },
            );

            per_op[i] = Some(OpSchedule {
                op,
                exec_idx: alloc.current,
                preload_idx: 0,
                preload_number: p,
                cut,
                exec_len,
                preload_len: pre_len,
                contention,
            });
            exe_start_next = exe_start;
            cut_next = cut;
        }

        let mut per_op: Vec<OpSchedule> =
            per_op.into_iter().map(|s| s.expect("scheduled")).collect();
        // Final pass: within each operator's allocated preload space,
        // pick the preload-state plan minimizing preload duration plus
        // data-distribution time — broadcasting `rp` copies multiplies
        // controller-to-core traffic, so maximum broadcast can throttle
        // the preload pipe below the HBM roofline even when memory is
        // plentiful (§3.3's interleaving insight) — then re-derive the
        // committed lengths.
        let mut est_total = Seconds::ZERO;
        for s in &mut per_op {
            let plans = self.catalog.op(s.op);
            let plan = plans.plan_at(s.exec_idx);
            s.preload_idx = s.preload_idx.min(plan.preload_plans.len() - 1);
            let budget = plan.preload_plans[s.preload_idx].preload_space;
            let cost = |pre: &PreloadPlan| self.preload_duration(pre) + pre.distribute_time;
            let mut best = s.preload_idx;
            for (k, pre) in plan.preload_plans.iter().enumerate() {
                if pre.preload_space <= budget && cost(pre) < cost(&plan.preload_plans[best]) {
                    best = k;
                }
            }
            s.preload_idx = best;
            let pre = plans.preload_at(s.exec_idx, s.preload_idx);
            s.exec_len = plan.exec_time
                + pre.distribute_time
                + s.contention
                + self.system.allreduce_time(self.graph.op(s.op).allreduce());
            s.preload_len = self.preload_duration(pre);
        }
        for q in &pending {
            est_total = est_total.max(q.start);
        }
        est_total = est_total.max(exe_start_next);

        Ok(Schedule {
            per_op,
            order: order.to_vec(),
            est_total,
        })
    }
}

/// Maps each operator to its position in `order`, validating the
/// permutation.
fn positions(order: &[OpId], n: usize) -> Result<Vec<usize>, CompileError> {
    if order.len() != n {
        return Err(CompileError::InvalidPreloadOrder {
            reason: format!("order has {} entries for {} operators", order.len(), n),
        });
    }
    let mut pos = vec![usize::MAX; n];
    for (k, id) in order.iter().enumerate() {
        if id.index() >= n || pos[id.index()] != usize::MAX {
            return Err(CompileError::InvalidPreloadOrder {
                reason: format!("operator {id} repeated or out of range"),
            });
        }
        pos[id.index()] = k;
    }
    Ok(pos)
}

/// The identity preload order (execution order).
#[must_use]
pub fn identity_order(n: usize) -> Vec<OpId> {
    (0..n).map(OpId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};
    use elk_partition::Partitioner;

    struct Fixture {
        system: SystemConfig,
        graph: ModelGraph,
        catalog: Catalog,
    }

    fn fixture() -> Fixture {
        let system = presets::ipu_pod4();
        let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let dev = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &dev);
        let catalog = Catalog::build(&graph, &partitioner).expect("catalog");
        Fixture {
            system,
            graph,
            catalog,
        }
    }

    #[test]
    fn schedules_llama_under_identity_order() {
        let f = fixture();
        let s = Scheduler::new(&f.graph, &f.catalog, &f.system, ScheduleOptions::default());
        let sched = s
            .schedule(&identity_order(f.graph.len()))
            .expect("schedule");
        assert_eq!(sched.per_op.len(), f.graph.len());
        assert!(sched.est_total > Seconds::ZERO);
        // Last operator cannot preload anything (Lemma 4.1).
        assert_eq!(sched.per_op.last().unwrap().preload_number, 0);
        // Some operator overlaps preloads (otherwise Elk degenerates).
        assert!(sched.per_op.iter().any(|s| s.preload_number >= 2));
    }

    #[test]
    fn preload_cap_restricts_overlap() {
        let f = fixture();
        let opts = ScheduleOptions {
            max_preload_number: Some(1),
            ..ScheduleOptions::default()
        };
        let s = Scheduler::new(&f.graph, &f.catalog, &f.system, opts);
        let sched = s.schedule(&identity_order(f.graph.len())).expect("ok");
        assert!(sched.per_op.iter().all(|s| s.preload_number <= 1));
    }

    #[test]
    fn deeper_preload_improves_estimate() {
        let f = fixture();
        let base = ScheduleOptions::default();
        let shallow = ScheduleOptions {
            max_preload_number: Some(1),
            ..base
        };
        let full = Scheduler::new(&f.graph, &f.catalog, &f.system, base)
            .schedule(&identity_order(f.graph.len()))
            .unwrap();
        let capped = Scheduler::new(&f.graph, &f.catalog, &f.system, shallow)
            .schedule(&identity_order(f.graph.len()))
            .unwrap();
        assert!(
            full.est_total <= capped.est_total,
            "deeper preloading must not hurt: {} vs {}",
            full.est_total,
            capped.est_total
        );
    }

    #[test]
    fn window_residency_is_nested() {
        // cut must be non-increasing going backwards in a way that keeps
        // window(i) \ {i+1} ⊆ window(i+1): verified via the cut chain.
        let f = fixture();
        let s = Scheduler::new(&f.graph, &f.catalog, &f.system, ScheduleOptions::default());
        let sched = s.schedule(&identity_order(f.graph.len())).unwrap();
        for w in sched.per_op.windows(2) {
            assert!(
                w[0].cut <= w[1].cut.max(w[0].op.index() + 2),
                "cut not nested at {}: {} vs {}",
                w[0].op,
                w[0].cut,
                w[1].cut
            );
        }
    }

    #[test]
    fn rejects_bad_orders() {
        let f = fixture();
        let s = Scheduler::new(&f.graph, &f.catalog, &f.system, ScheduleOptions::default());
        let short = vec![OpId(0)];
        assert!(matches!(
            s.schedule(&short),
            Err(CompileError::InvalidPreloadOrder { .. })
        ));
        let mut dup = identity_order(f.graph.len());
        dup[1] = OpId(0);
        assert!(matches!(
            s.schedule(&dup),
            Err(CompileError::InvalidPreloadOrder { .. })
        ));
    }

    #[test]
    fn ideal_capacity_override_never_downgrades_plans() {
        let f = fixture();
        let opts = ScheduleOptions {
            capacity_override: Some(Bytes::gib(64)),
            model_contention: false,
            ..ScheduleOptions::default()
        };
        let s = Scheduler::new(&f.graph, &f.catalog, &f.system, opts);
        let sched = s.schedule(&identity_order(f.graph.len())).unwrap();
        // Infinite memory: every op keeps its fastest plan and max preload.
        assert!(sched.per_op.iter().all(|o| o.exec_idx == 0));
        assert!(sched.per_op.iter().all(|o| o.preload_idx == 0));
    }
}
