use std::error::Error;
use std::fmt;

use elk_units::Bytes;

/// Errors produced while compiling a model for an ICCA chip.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The model graph contains no operators.
    EmptyGraph,
    /// No feasible partition plan exists for an operator — its minimal
    /// per-core footprint exceeds the chip's SRAM.
    NoFeasiblePlan {
        /// Operator name.
        op: String,
        /// Per-core SRAM available.
        capacity: Bytes,
    },
    /// The scheduler could not fit an operator window into on-chip memory
    /// even at every operator's smallest plan.
    CapacityExceeded {
        /// Operator name at which allocation failed.
        op: String,
        /// Minimal footprint required.
        required: Bytes,
        /// Per-core SRAM available.
        capacity: Bytes,
    },
    /// A preload order referenced operators not present in the graph or
    /// omitted some.
    InvalidPreloadOrder {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyGraph => write!(f, "model graph has no operators"),
            CompileError::NoFeasiblePlan { op, capacity } => write!(
                f,
                "no feasible partition plan for operator `{op}` within {capacity} per core"
            ),
            CompileError::CapacityExceeded {
                op,
                required,
                capacity,
            } => write!(
                f,
                "window at operator `{op}` needs at least {required} per core but only {capacity} is available"
            ),
            CompileError::InvalidPreloadOrder { reason } => {
                write!(f, "invalid preload order: {reason}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CompileError::NoFeasiblePlan {
            op: "l0.attn_qkv".into(),
            capacity: Bytes::kib(616),
        };
        let s = e.to_string();
        assert!(s.contains("l0.attn_qkv"));
        assert!(s.starts_with("no feasible"));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn Error + Send + Sync> = Box::new(CompileError::EmptyGraph);
        assert!(e.to_string().contains("no operators"));
    }
}
