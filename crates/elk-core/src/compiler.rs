use std::time::Instant;

use serde::{Deserialize, Serialize};

use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
use elk_hw::SystemConfig;
use elk_model::ModelGraph;
use elk_partition::Partitioner;
use elk_units::Seconds;

use crate::{
    candidate_orders, evaluate, Catalog, CompileError, DeviceProgram, PlanEstimate, ReorderOptions,
    Schedule, ScheduleOptions, Scheduler,
};

/// End-to-end compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CompilerOptions {
    /// Scheduling knobs (§4.2–4.3).
    pub schedule: ScheduleOptions,
    /// Preload-order search knobs (§4.4). Disable for Elk-Dyn.
    pub reorder: ReorderOptions,
    /// Cost-model profiling configuration (§4.3).
    pub profile: ProfileConfig,
    /// Worker threads for catalog construction and preload-order
    /// evaluation (`0` = all available cores, capped at 16). Results
    /// are byte-identical at any setting — see `elk-par`'s determinism
    /// contract.
    pub threads: usize,
}

/// Summary statistics of one compilation, feeding Table 2 and Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Wall-clock compile time in seconds.
    pub compile_seconds: f64,
    /// Preload orders generated (post pruning).
    pub orders_considered: usize,
    /// Orders that scheduled successfully.
    pub orders_feasible: usize,
    /// Edit distance of the winning order.
    pub chosen_edit_distance: usize,
    /// Distinct operator signatures (plan sets actually enumerated).
    pub distinct_signatures: usize,
    /// `P`: maximum feasible plans over all operators.
    pub max_plans_per_op: usize,
    /// `K`-like: maximum simultaneously-resident operators observed.
    pub peak_resident_ops: usize,
    /// Mean preload number across operators.
    pub avg_preload_number: f64,
}

/// A compiled execution plan: the lowered device program, the schedule it
/// came from, the forward-timeline estimate, and compile statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    /// The §4.5 device program.
    pub program: DeviceProgram,
    /// Per-operator scheduling decisions.
    pub schedule: Schedule,
    /// Forward-timeline estimate of the plan.
    pub estimate: PlanEstimate,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// The Elk compiler (§4): fits a cost model for the target system, builds
/// the plan catalog, searches preload orders with the inductive scheduler
/// and cost-aware allocator, and lowers the winner to a device program.
///
/// # Examples
///
/// ```
/// use elk_core::Compiler;
/// use elk_hw::presets;
/// use elk_model::{zoo, Workload};
///
/// # fn main() -> Result<(), elk_core::CompileError> {
/// let mut cfg = zoo::llama2_13b();
/// cfg.layers = 2; // keep the doctest quick
/// let graph = cfg.build(Workload::decode(16, 512), 4);
/// let plan = Compiler::new(presets::ipu_pod4()).compile(&graph)?;
/// assert_eq!(plan.program.op_count(), graph.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Compiler {
    system: SystemConfig,
    cost: LearnedCostModel,
    opts: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler with default options, fitting the learned cost
    /// model against the system's analytic device profile.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        Compiler::with_options(system, CompilerOptions::default())
    }

    /// Creates a compiler with explicit options.
    #[must_use]
    pub fn with_options(system: SystemConfig, opts: CompilerOptions) -> Self {
        let device = AnalyticDevice::of_chip(&system.chip).with_noise(0.05);
        let cost = LearnedCostModel::fit(&device, &opts.profile);
        Compiler { system, cost, opts }
    }

    /// Creates a compiler reusing an already-fitted cost model (avoids
    /// re-profiling when sweeping system parameters that do not affect
    /// per-core costs, e.g. HBM bandwidth).
    #[must_use]
    pub fn with_cost_model(
        system: SystemConfig,
        cost: LearnedCostModel,
        opts: CompilerOptions,
    ) -> Self {
        Compiler { system, cost, opts }
    }

    /// The target system description.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The fitted cost model the compiler plans with.
    #[must_use]
    pub fn cost_model(&self) -> &LearnedCostModel {
        &self.cost
    }

    /// Compiler options in effect.
    #[must_use]
    pub fn options(&self) -> &CompilerOptions {
        &self.opts
    }

    /// Compiles `graph` into an optimized device program.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] when the graph is empty, an operator
    /// cannot be partitioned into SRAM, or no preload order schedules
    /// feasibly.
    pub fn compile(&self, graph: &ModelGraph) -> Result<CompiledPlan, CompileError> {
        if graph.is_empty() {
            return Err(CompileError::EmptyGraph);
        }
        let partitioner = Partitioner::new(&self.system.chip, &self.cost);
        let catalog = Catalog::build_par(graph, &partitioner, self.worker_threads())?;
        self.compile_with_catalog(graph, &catalog)
    }

    /// The resolved worker count for parallel sections.
    fn worker_threads(&self) -> usize {
        if self.opts.threads == 0 {
            elk_par::resolve_threads(0).min(16)
        } else {
            self.opts.threads
        }
    }

    /// Compiles `graph` reusing a pre-built plan catalog (the catalog only
    /// depends on the chip and the cost model, so parameter sweeps over
    /// HBM bandwidth or schedules share it).
    ///
    /// # Errors
    ///
    /// Same as [`Compiler::compile`].
    pub fn compile_with_catalog(
        &self,
        graph: &ModelGraph,
        catalog: &Catalog,
    ) -> Result<CompiledPlan, CompileError> {
        let t0 = Instant::now();
        if graph.is_empty() {
            return Err(CompileError::EmptyGraph);
        }
        let capacity = self
            .opts
            .schedule
            .capacity_override
            .unwrap_or_else(|| self.system.chip.usable_sram_per_core());
        let candidates = candidate_orders(graph, catalog, capacity, &self.opts.reorder);

        let scheduler = Scheduler::new(graph, catalog, &self.system, self.opts.schedule);

        // Evaluate every candidate order on the work pool; results merge
        // by candidate index, so the winner (and every tiebreak) is
        // identical at any thread count.
        let scores: Vec<Option<(Seconds, usize)>> =
            elk_par::par_map(self.worker_threads(), &candidates, |_, cand| {
                scheduler.schedule(&cand.order).ok().map(|sched| {
                    let prog = DeviceProgram::lower(graph, catalog, &sched);
                    let est = evaluate(&prog, capacity);
                    (est.total, est.capacity_violations)
                })
            });

        let best = scores
            .iter()
            .enumerate()
            .filter_map(|(idx, s)| s.map(|(total, violations)| (idx, total, violations)))
            .min_by(|a, b| (a.2, a.1).cmp(&(b.2, b.1)))
            .map(|(idx, _, _)| idx)
            .ok_or_else(|| CompileError::InvalidPreloadOrder {
                reason: "no candidate preload order scheduled feasibly".to_string(),
            })?;

        let schedule = scheduler.schedule(&candidates[best].order)?;
        let program = DeviceProgram::lower(graph, catalog, &schedule);
        debug_assert_eq!(program.validate(), Ok(()));
        let estimate = evaluate(&program, capacity);

        let feasible = scores.iter().flatten().count();
        let avg_preload_number = schedule
            .per_op
            .iter()
            .map(|s| s.preload_number as f64)
            .sum::<f64>()
            / schedule.per_op.len() as f64;
        let stats = CompileStats {
            compile_seconds: t0.elapsed().as_secs_f64(),
            orders_considered: candidates.len(),
            orders_feasible: feasible,
            chosen_edit_distance: candidates[best].edit_distance,
            distinct_signatures: catalog.distinct_signatures(),
            max_plans_per_op: catalog.max_plans_per_op(),
            peak_resident_ops: estimate.peak_resident_ops,
            avg_preload_number,
        };

        Ok(CompiledPlan {
            program,
            schedule,
            estimate,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};

    fn small_graph() -> ModelGraph {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 3;
        cfg.build(Workload::decode(16, 1024), 4)
    }

    #[test]
    fn compiles_small_llama() {
        let plan = Compiler::new(presets::ipu_pod4())
            .compile(&small_graph())
            .expect("compile");
        assert_eq!(plan.estimate.capacity_violations, 0);
        assert!(plan.estimate.total > Seconds::ZERO);
        assert!(plan.stats.max_plans_per_op > 10);
        assert!(plan.stats.orders_considered >= 1);
        plan.program.validate().expect("valid program");
    }

    #[test]
    fn reordering_never_hurts_the_estimate() {
        let graph = small_graph();
        let sys = presets::ipu_pod4();
        let full = Compiler::new(sys.clone()).compile(&graph).unwrap();
        let mut opts = CompilerOptions::default();
        opts.reorder.enable = false;
        let dyn_ = Compiler::with_options(sys, opts).compile(&graph).unwrap();
        assert!(
            full.estimate.total <= dyn_.estimate.total + Seconds::from_micros(1.0),
            "Elk-Full {} must be <= Elk-Dyn {}",
            full.estimate.total,
            dyn_.estimate.total
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = ModelGraph::new("empty", Workload::decode(1, 16), 1, Vec::new(), Vec::new());
        assert!(matches!(
            Compiler::new(presets::ipu_pod4()).compile(&g),
            Err(CompileError::EmptyGraph)
        ));
    }
}
