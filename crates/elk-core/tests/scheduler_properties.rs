//! Property tests of the scheduler/allocator stack on randomized
//! frontiers and synthetic graphs — invariants Theorem 4.2 relies on.

use proptest::prelude::*;

use elk_core::{
    allocate, evaluate, identity_order, pareto_frontier, Catalog, DeviceProgram, FrontierPoint,
    ScheduleOptions, Scheduler,
};
use elk_cost::AnalyticDevice;
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_partition::Partitioner;
use elk_units::{Bytes, Seconds};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<FrontierPoint>> {
    prop::collection::vec((1u64..10_000, 0.1f64..500.0), 1..max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (space, us))| FrontierPoint {
                plan_idx: i,
                space: Bytes::new(space),
                time: Seconds::from_micros(us),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn pareto_frontier_is_minimal_and_dominant(points in arb_points(40)) {
        let front = pareto_frontier(points.clone());
        prop_assert!(!front.is_empty());
        // Sorted fastest-first with strictly decreasing space.
        for w in front.windows(2) {
            prop_assert!(w[0].time < w[1].time);
            prop_assert!(w[0].space > w[1].space);
        }
        // Every input point is dominated by (or equal to) a frontier point.
        for p in &points {
            prop_assert!(
                front.iter().any(|f| f.space <= p.space && f.time <= p.time),
                "point ({}, {}) undominated", p.space, p.time
            );
        }
        // Frontier points come from the input.
        for f in &front {
            prop_assert!(points.iter().any(|p|
                p.space == f.space && p.time == f.time));
        }
    }

    #[test]
    fn allocator_is_sound_and_monotone(
        cur in arb_points(12),
        win in prop::collection::vec(arb_points(6), 0..5),
        cap_a in 1_000u64..40_000,
        extra in 0u64..40_000,
    ) {
        let cur = pareto_frontier(cur);
        let win: Vec<Vec<FrontierPoint>> = win.into_iter().map(pareto_frontier).collect();
        let refs: Vec<&[FrontierPoint]> = win.iter().map(Vec::as_slice).collect();
        let small = Bytes::new(cap_a);
        let large = Bytes::new(cap_a + extra);

        let a = allocate(&cur, &refs, small);
        let b = allocate(&cur, &refs, large);
        if let Some(a) = &a {
            // Soundness: fits and indices valid.
            prop_assert!(a.space <= small);
            prop_assert!(a.current < cur.len());
            for (pick, w) in a.picks.iter().zip(&win) {
                prop_assert!(*pick < w.len());
            }
            // Monotonicity: relaxing capacity keeps feasibility and never
            // worsens the objective.
            let b = b.expect("larger capacity must stay feasible");
            let ta = (a.exec_time + a.distribute_time).as_secs();
            let tb = (b.exec_time + b.distribute_time).as_secs();
            prop_assert!(tb <= ta + 1e-12);
        }
    }
}

#[test]
fn backward_pass_estimate_tracks_forward_evaluation() {
    // The DP's relative-time estimate and the forward §4.5 replay must
    // agree within modeling slack — a regression guard on the timeline
    // semantics.
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 3;
    let graph = cfg.build(Workload::decode(16, 2048), 4);
    let device = AnalyticDevice::of_chip(&system.chip);
    let partitioner = Partitioner::new(&system.chip, &device);
    let catalog = Catalog::build(&graph, &partitioner).unwrap();
    let scheduler = Scheduler::new(&graph, &catalog, &system, ScheduleOptions::default());
    let sched = scheduler.schedule(&identity_order(graph.len())).unwrap();
    let prog = DeviceProgram::lower(&graph, &catalog, &sched);
    let est = evaluate(&prog, system.chip.usable_sram_per_core());
    let ratio = sched.est_total / est.total;
    assert!(
        (0.5..2.0).contains(&ratio),
        "DP estimate {} vs forward {} (ratio {ratio})",
        sched.est_total,
        est.total
    );
}

#[test]
fn preload_number_zero_for_every_op_matches_serial_program() {
    // With max_preload_number = 0, the schedule degenerates to strict
    // alternation: no preload may overlap any execution.
    let system = presets::ipu_pod4();
    let mut cfg = zoo::opt_30b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(8, 512), 4);
    let device = AnalyticDevice::of_chip(&system.chip);
    let partitioner = Partitioner::new(&system.chip, &device);
    let catalog = Catalog::build(&graph, &partitioner).unwrap();
    let opts = ScheduleOptions {
        max_preload_number: Some(0),
        ..ScheduleOptions::default()
    };
    let scheduler = Scheduler::new(&graph, &catalog, &system, opts);
    let sched = scheduler.schedule(&identity_order(graph.len())).unwrap();
    assert!(sched.per_op.iter().all(|s| s.preload_number == 0));
    let prog = DeviceProgram::lower(&graph, &catalog, &sched);
    let est = evaluate(&prog, system.chip.usable_sram_per_core());
    assert!(
        est.overlap_fraction() < 0.05,
        "serial schedule overlapped {:.1}%",
        est.overlap_fraction() * 100.0
    );
}
