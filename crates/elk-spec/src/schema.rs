//! The scenario document's key tree, used to validate sweep paths
//! **before** any grid point runs: a typo'd dotted path (e.g.
//! `system.chip.coers`) fails immediately with the valid keys at that
//! level, instead of surfacing as a bare unknown-field parse error
//! deep inside the first grid point.
//!
//! The tree mirrors the strict readers in [`crate::spec`]; the unit
//! tests cross-check a sample of leaves by actually sweeping them, so
//! the two cannot silently drift for the covered sections. When adding
//! a spec field, add its key here too.

/// One level of the scenario schema.
pub(crate) enum Node {
    /// A scalar/array value — sweepable, but not descendable.
    Leaf,
    /// An object with a fixed key set.
    Map(&'static [(&'static str, Node)]),
}

const LENGTH_DIST: Node = Node::Map(&[
    ("Fixed", Node::Leaf),
    (
        "Uniform",
        Node::Map(&[("lo", Node::Leaf), ("hi", Node::Leaf)]),
    ),
    (
        "Bimodal",
        Node::Map(&[
            ("short", Node::Leaf),
            ("long", Node::Leaf),
            ("long_weight", Node::Leaf),
        ]),
    ),
]);

const TRACE_LENGTH_MODEL: Node = Node::Map(&[
    ("Fixed", Node::Leaf),
    (
        "Uniform",
        Node::Map(&[("lo", Node::Leaf), ("hi", Node::Leaf)]),
    ),
    (
        "HeavyTail",
        Node::Map(&[
            ("lo", Node::Leaf),
            ("alpha", Node::Leaf),
            ("cap", Node::Leaf),
        ]),
    ),
]);

const TENANTS: Node = Node::Map(&[
    ("classes", Node::Leaf),
    ("map", Node::Leaf),
    ("default_class", Node::Leaf),
    ("shed_queue_depth", Node::Leaf),
    ("shed_policy", Node::Leaf),
    ("defer_ms", Node::Leaf),
]);

const TOPOLOGY: Node = Node::Map(&[
    ("all_to_all", Node::Map(&[("core_link_gib_s", Node::Leaf)])),
    ("mesh", Node::Map(&[("total_gib_s", Node::Leaf)])),
]);

const CHIP: Node = Node::Map(&[
    ("name", Node::Leaf),
    ("cores", Node::Leaf),
    ("sram_per_core_kib", Node::Leaf),
    ("io_buffer_per_core_kib", Node::Leaf),
    ("matmul_tflops", Node::Leaf),
    ("vector_tflops", Node::Leaf),
    ("sram_bw_gb_s", Node::Leaf),
    ("sram_contention", Node::Leaf),
    ("topology", TOPOLOGY),
]);

const ROOT: Node = Node::Map(&[
    ("name", Node::Leaf),
    (
        "system",
        Node::Map(&[
            ("preset", Node::Leaf),
            ("chip", CHIP),
            ("chips", Node::Leaf),
            (
                "hbm",
                Node::Map(&[
                    ("channels", Node::Leaf),
                    ("channel_bw_gib_s", Node::Leaf),
                    ("capacity_gib", Node::Leaf),
                ]),
            ),
            ("inter_chip_bw_gib_s", Node::Leaf),
        ]),
    ),
    (
        "model",
        Node::Map(&[
            ("zoo", Node::Leaf),
            ("layers", Node::Leaf),
            (
                "transformer",
                Node::Map(&[
                    ("name", Node::Leaf),
                    ("layers", Node::Leaf),
                    ("hidden", Node::Leaf),
                    ("heads", Node::Leaf),
                    ("kv_heads", Node::Leaf),
                    ("head_dim", Node::Leaf),
                    ("intermediate", Node::Leaf),
                    ("vocab", Node::Leaf),
                    ("glu", Node::Leaf),
                    ("norm", Node::Leaf),
                    ("rope", Node::Leaf),
                    ("post_norms", Node::Leaf),
                ]),
            ),
            (
                "moe",
                Node::Map(&[
                    ("name", Node::Leaf),
                    ("layers", Node::Leaf),
                    ("hidden", Node::Leaf),
                    ("heads", Node::Leaf),
                    ("kv_heads", Node::Leaf),
                    ("head_dim", Node::Leaf),
                    ("expert_intermediate", Node::Leaf),
                    ("experts", Node::Leaf),
                    ("experts_per_token", Node::Leaf),
                    ("vocab", Node::Leaf),
                ]),
            ),
            (
                "dit",
                Node::Map(&[
                    ("name", Node::Leaf),
                    ("layers", Node::Leaf),
                    ("hidden", Node::Leaf),
                    ("heads", Node::Leaf),
                    ("head_dim", Node::Leaf),
                    ("mlp_ratio", Node::Leaf),
                    ("tokens", Node::Leaf),
                ]),
            ),
        ]),
    ),
    (
        "workload",
        Node::Map(&[
            ("phase", Node::Leaf),
            ("batch", Node::Leaf),
            ("seq_len", Node::Leaf),
            ("shards", Node::Leaf),
            (
                "trace",
                Node::Map(&[
                    ("file", Node::Leaf),
                    (
                        "generate",
                        Node::Map(&[
                            ("seed", Node::Leaf),
                            ("requests", Node::Leaf),
                            (
                                "rate",
                                Node::Map(&[
                                    ("Constant", Node::Map(&[("rate_rps", Node::Leaf)])),
                                    (
                                        "Diurnal",
                                        Node::Map(&[
                                            ("mean_rps", Node::Leaf),
                                            ("amplitude", Node::Leaf),
                                            ("period_s", Node::Leaf),
                                        ]),
                                    ),
                                    (
                                        "BurstTrain",
                                        Node::Map(&[
                                            ("base_rps", Node::Leaf),
                                            ("burst_rps", Node::Leaf),
                                            ("period_s", Node::Leaf),
                                            ("burst_s", Node::Leaf),
                                        ]),
                                    ),
                                ]),
                            ),
                            ("prompt_len", TRACE_LENGTH_MODEL),
                            ("output_len", TRACE_LENGTH_MODEL),
                            ("tenants", Node::Leaf),
                        ]),
                    ),
                ]),
            ),
        ]),
    ),
    (
        "compiler",
        Node::Map(&[("design", Node::Leaf), ("threads", Node::Leaf)]),
    ),
    (
        "sim",
        Node::Map(&[
            ("noise_sigma", Node::Leaf),
            ("noise_seed", Node::Leaf),
            ("trace_samples", Node::Leaf),
        ]),
    ),
    (
        "serving",
        Node::Map(&[
            (
                "trace",
                Node::Map(&[
                    ("seed", Node::Leaf),
                    ("requests", Node::Leaf),
                    (
                        "arrivals",
                        Node::Map(&[
                            ("Poisson", Node::Map(&[("rate_rps", Node::Leaf)])),
                            (
                                "Bursty",
                                Node::Map(&[
                                    ("rate_rps", Node::Leaf),
                                    ("burst_factor", Node::Leaf),
                                    ("period_s", Node::Leaf),
                                    ("duty", Node::Leaf),
                                ]),
                            ),
                        ]),
                    ),
                    ("prompt_len", LENGTH_DIST),
                    ("output_len", LENGTH_DIST),
                ]),
            ),
            ("replicas", Node::Leaf),
            ("max_batch", Node::Leaf),
            ("max_prefill_tokens", Node::Leaf),
            (
                "seq_buckets",
                Node::Map(&[("min", Node::Leaf), ("max", Node::Leaf)]),
            ),
            ("bucket_batch", Node::Leaf),
            (
                "slo",
                Node::Map(&[("ttft_ms", Node::Leaf), ("tpot_ms", Node::Leaf)]),
            ),
            ("tenants", TENANTS),
            ("threads", Node::Leaf),
        ]),
    ),
    (
        "observe",
        Node::Map(&[
            ("enable", Node::Leaf),
            ("timeline", Node::Leaf),
            ("sample", Node::Leaf),
        ]),
    ),
    (
        "cluster",
        Node::Map(&[
            (
                "plan",
                Node::Map(&[("tp", Node::Leaf), ("pp", Node::Leaf), ("dp", Node::Leaf)]),
            ),
            ("microbatches", Node::Leaf),
            ("interconnect", Node::Leaf),
            ("router", Node::Leaf),
            ("serve", Node::Leaf),
            (
                "autoscale",
                Node::Map(&[
                    ("min_groups", Node::Leaf),
                    ("max_groups", Node::Leaf),
                    ("interval_ms", Node::Leaf),
                    ("up_queue_depth", Node::Leaf),
                    ("down_queue_depth", Node::Leaf),
                    ("slo_target", Node::Leaf),
                    ("cold_start_steps", Node::Leaf),
                ]),
            ),
            (
                "disaggregate",
                Node::Map(&[
                    (
                        "prefill",
                        Node::Map(&[("tp", Node::Leaf), ("pp", Node::Leaf), ("dp", Node::Leaf)]),
                    ),
                    (
                        "decode",
                        Node::Map(&[("tp", Node::Leaf), ("pp", Node::Leaf), ("dp", Node::Leaf)]),
                    ),
                    ("chunk_tokens", Node::Leaf),
                    ("shared_chips", Node::Leaf),
                ]),
            ),
            ("tenants", TENANTS),
            ("threads", Node::Leaf),
        ]),
    ),
    (
        "sweep",
        Node::Map(&[("command", Node::Leaf), ("axes", Node::Leaf)]),
    ),
]);

/// Checks a dotted sweep path against the schema. On an unknown key the
/// error lists every valid key at that level; descending *into* a leaf
/// value is also an error.
pub(crate) fn validate_path(path: &str) -> Result<(), String> {
    let mut node = &ROOT;
    let mut walked: Vec<&str> = Vec::new();
    for seg in path.split('.') {
        match node {
            Node::Map(entries) => match entries.iter().find(|(k, _)| *k == seg) {
                Some((_, child)) => {
                    node = child;
                    walked.push(seg);
                }
                None => {
                    let valid: Vec<&str> = entries.iter().map(|(k, _)| *k).collect();
                    let at = if walked.is_empty() {
                        "the scenario root".to_string()
                    } else {
                        format!("`{}`", walked.join("."))
                    };
                    return Err(format!(
                        "unknown key `{seg}` at {at}; valid keys: {}",
                        valid.join(", ")
                    ));
                }
            },
            Node::Leaf => {
                return Err(format!(
                    "`{}` is a value, not an object — cannot descend into `{seg}`",
                    walked.join(".")
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_paths_validate() {
        for path in [
            "workload.batch",
            "system.chip.cores",
            "system.chip.topology.mesh.total_gib_s",
            "system.hbm.capacity_gib",
            "model.layers",
            "model.transformer.hidden",
            "serving.trace.arrivals.Bursty.burst_factor",
            "serving.slo.tpot_ms",
            "workload.trace.file",
            "workload.trace.generate.rate.BurstTrain.burst_rps",
            "workload.trace.generate.prompt_len.HeavyTail.alpha",
            "cluster.plan.tp",
            "cluster.autoscale.max_groups",
            "cluster.autoscale.cold_start_steps",
            "cluster.disaggregate.prefill.tp",
            "cluster.disaggregate.decode.dp",
            "cluster.disaggregate.chunk_tokens",
            "cluster.disaggregate.shared_chips",
            "serving.tenants.shed_queue_depth",
            "serving.tenants.classes",
            "cluster.tenants.shed_policy",
            "cluster.tenants.defer_ms",
            "observe.enable",
            "observe.timeline",
            "observe.sample",
            "compiler.design",
            "system",
        ] {
            validate_path(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
    }

    #[test]
    fn typos_list_the_valid_keys_at_that_level() {
        let e = validate_path("system.chip.coers").unwrap_err();
        assert!(e.contains("unknown key `coers` at `system.chip`"), "{e}");
        assert!(
            e.contains("cores") && e.contains("sram_per_core_kib"),
            "{e}"
        );

        let e = validate_path("wrokload.batch").unwrap_err();
        assert!(e.contains("the scenario root"), "{e}");
        assert!(e.contains("workload") && e.contains("cluster"), "{e}");
    }

    #[test]
    fn descending_into_a_leaf_is_an_error() {
        let e = validate_path("workload.batch.x").unwrap_err();
        assert!(e.contains("value, not an object"), "{e}");
        assert!(e.contains("workload.batch"), "{e}");
    }

    /// Drift guard: every key the schema claims must be accepted by the
    /// strict parser when swept with a plausible value. (The converse —
    /// parser keys missing from the schema — is caught the moment
    /// someone sweeps the new key and hits `validate_path`.)
    #[test]
    fn schema_top_level_matches_the_strict_parser() {
        let doc: serde::Value = serde_json::from_str(
            r#"{"name": "t", "model": {"zoo": "llama13"},
                "cluster": {}, "sweep": {"axes": [{"path": "workload.batch", "values": [1]}]}}"#,
        )
        .unwrap();
        let spec = <crate::ScenarioSpec as serde::Deserialize>::from_value(&doc).unwrap();
        // Sections the schema names at the root must parse as sections.
        let Node::Map(entries) = &ROOT else {
            unreachable!()
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| *k).collect();
        for key in [
            "name", "system", "model", "workload", "compiler", "sim", "serving", "observe",
            "cluster", "sweep",
        ] {
            assert!(keys.contains(&key), "schema lost the `{key}` section");
        }
        assert_eq!(keys.len(), 10, "new root sections need schema entries");
        drop(spec);
    }
}
