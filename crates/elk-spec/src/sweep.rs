//! Grid sweeps over scenario fields: the design-space-exploration
//! driver behind `elk sweep`.
//!
//! A sweep works on the scenario's *JSON document*, not its parsed
//! struct: each axis names a dotted path (`"workload.batch"`,
//! `"system.chip.cores"`, `"compiler.design"`), and every grid point
//! clones the document, substitutes one value per axis, and re-parses.
//! Strict parsing then rejects typo'd paths that landed on unknown
//! keys, and any spec field — including ones the base file left to
//! defaults — is sweepable.
//!
//! Points fan out over an [`elk_par`] work pool and merge in grid
//! order, so the report is byte-identical at any `--threads` setting.

use serde::{Deserialize, Serialize, Value};

use crate::report::{SweepPoint, SweepReport};
use crate::spec::{ScenarioSpec, SweepCommand};
use crate::{runner, SpecError};

/// Substitutes `new` at dotted `path` inside `root`, creating missing
/// intermediate objects (strict re-parsing catches paths that create
/// keys the schema does not know).
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when a path segment lands on a
/// non-object value (e.g. `"name.x"`).
pub fn set_path(root: &mut Value, path: &str, new: Value) -> Result<(), SpecError> {
    let mut cur = root;
    let mut segments = path.split('.').peekable();
    while let Some(seg) = segments.next() {
        let Value::Map(entries) = cur else {
            return Err(SpecError::Invalid(format!(
                "sweep path `{path}`: segment `{seg}` lands inside a non-object value"
            )));
        };
        let idx = match entries.iter().position(|(k, _)| k == seg) {
            Some(idx) => idx,
            None => {
                entries.push((seg.to_string(), Value::Map(Vec::new())));
                entries.len() - 1
            }
        };
        if segments.peek().is_none() {
            entries[idx].1 = new;
            return Ok(());
        }
        cur = &mut entries[idx].1;
    }
    unreachable!("split('.') yields at least one segment")
}

/// One grid point's overrides: `(path, value)` per axis, in axis order.
type Overrides = Vec<(String, Value)>;

/// Expands the axes' cartesian product in row-major order (the last
/// axis varies fastest).
fn grid(axes: &[crate::spec::SweepAxis]) -> Vec<Overrides> {
    let mut points: Vec<Overrides> = vec![Vec::new()];
    for axis in axes {
        points = points
            .into_iter()
            .flat_map(|point| {
                axis.values.iter().map(move |v| {
                    let mut next = point.clone();
                    next.push((axis.path.clone(), v.clone()));
                    next
                })
            })
            .collect();
    }
    points
}

/// Runs the sweep described by the scenario document `doc`, fanning
/// grid points across `threads` workers (`0` = all available cores).
/// The merged report is in grid order and byte-identical at any thread
/// count.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when the document has no `sweep`
/// section or an override produces an ill-formed scenario, and
/// propagates the first failing point's error (in grid order).
pub fn run_sweep(doc: &Value, threads: usize) -> Result<SweepReport, SpecError> {
    let spec = ScenarioSpec::from_value(doc).map_err(SpecError::from)?;
    let Some(sweep) = spec.sweep else {
        return Err(SpecError::Invalid(format!(
            "scenario `{}` has no `sweep` section",
            spec.name
        )));
    };
    // Fail a typo'd axis up front, with the valid keys at that level —
    // not as an unknown-field parse error inside the first grid point.
    for axis in &sweep.axes {
        crate::schema::validate_path(&axis.path)
            .map_err(|e| SpecError::Invalid(format!("sweep axis `{}`: {e}", axis.path)))?;
    }

    // The base document is the scenario without its sweep section, so a
    // point's overrides re-parse as a plain (sweepless) scenario.
    let Value::Map(entries) = doc else {
        unreachable!("from_value above only accepts objects");
    };
    let base = Value::Map(
        entries
            .iter()
            .filter(|(k, _)| k != "sweep")
            .cloned()
            .collect(),
    );

    let points = grid(&sweep.axes);
    let results = elk_par::try_par_map(threads, &points, |_, overrides| {
        run_point(&base, &spec.name, sweep.command, overrides)
    })?;

    Ok(SweepReport {
        scenario: spec.name,
        command: sweep.command.name().to_string(),
        axes: sweep.axes.iter().map(|a| a.path.clone()).collect(),
        points: results,
    })
}

/// Applies one point's overrides and runs it through `command`.
fn run_point(
    base: &Value,
    base_name: &str,
    command: SweepCommand,
    overrides: &Overrides,
) -> Result<SweepPoint, SpecError> {
    let mut doc = base.clone();
    for (path, value) in overrides {
        set_path(&mut doc, path, value.clone())?;
    }
    let mut point_spec = ScenarioSpec::from_value(&doc)
        .map_err(|e| SpecError::Invalid(format!("sweep point {}: {e}", describe(overrides))))?;
    point_spec.name = format!("{base_name}[{}]", describe(overrides));

    let report = match command {
        SweepCommand::Compile => runner::run_compile(&point_spec)?.to_value(),
        SweepCommand::Simulate => runner::run_simulate(&point_spec)?.to_value(),
        SweepCommand::Serve => runner::run_serve(&point_spec)?.to_value(),
    };
    Ok(SweepPoint {
        name: point_spec.name,
        overrides: Value::Map(
            overrides
                .iter()
                .map(|(path, v)| (path.clone(), v.clone()))
                .collect(),
        ),
        report,
    })
}

/// `path=value` pairs, comma-joined — the point's display name.
fn describe(overrides: &Overrides) -> String {
    overrides
        .iter()
        .map(|(path, v)| {
            format!(
                "{path}={}",
                serde_json::to_string(v).expect("value serialization is infallible")
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(json: &str) -> Value {
        serde_json::from_str(json).expect("valid test JSON")
    }

    #[test]
    fn set_path_replaces_and_creates() {
        let mut v = doc(r#"{"workload": {"batch": 32}}"#);
        set_path(&mut v, "workload.batch", Value::U64(8)).unwrap();
        assert_eq!(
            v.get("workload").unwrap().get("batch"),
            Some(&Value::U64(8))
        );
        // Creating a section the base omitted.
        set_path(&mut v, "compiler.threads", Value::U64(2)).unwrap();
        assert_eq!(
            v.get("compiler").unwrap().get("threads"),
            Some(&Value::U64(2))
        );
        // Descending into a scalar is an error.
        let e = set_path(&mut v, "workload.batch.x", Value::U64(1)).unwrap_err();
        assert!(e.to_string().contains("non-object"), "{e}");
    }

    #[test]
    fn grid_is_row_major_with_last_axis_fastest() {
        let axes = vec![
            crate::spec::SweepAxis {
                path: "a".into(),
                values: vec![Value::U64(1), Value::U64(2)],
            },
            crate::spec::SweepAxis {
                path: "b".into(),
                values: vec![Value::U64(10), Value::U64(20)],
            },
        ];
        let points = grid(&axes);
        let flat: Vec<(u64, u64)> = points
            .iter()
            .map(|p| {
                let a = u64::from_value(&p[0].1).unwrap();
                let b = u64::from_value(&p[1].1).unwrap();
                (a, b)
            })
            .collect();
        assert_eq!(flat, vec![(1, 10), (1, 20), (2, 10), (2, 20)]);
    }

    #[test]
    fn sweep_runs_and_merges_deterministically() {
        let scenario = doc(r#"{
              "name": "s",
              "model": {"zoo": "llama13", "layers": 2},
              "workload": {"batch": 16, "seq_len": 512},
              "sweep": {"command": "compile",
                        "axes": [{"path": "workload.batch", "values": [8, 16]}]}
            }"#);
        let seq = run_sweep(&scenario, 1).unwrap();
        let par = run_sweep(&scenario, 8).unwrap();
        assert_eq!(seq.points.len(), 2);
        assert_eq!(seq.points[0].name, r#"s[workload.batch=8]"#);
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            serde_json::to_string(&par).unwrap(),
            "sweep must be byte-identical at any thread count"
        );
    }

    #[test]
    fn sweep_without_section_is_an_error() {
        let scenario = doc(r#"{"name": "s", "model": {"zoo": "llama13"}}"#);
        let e = run_sweep(&scenario, 1).unwrap_err();
        assert!(e.to_string().contains("no `sweep` section"), "{e}");
    }

    #[test]
    fn typo_in_a_swept_path_fails_up_front_with_valid_keys() {
        let scenario = doc(r#"{
              "name": "s",
              "model": {"zoo": "llama13", "layers": 2},
              "sweep": {"axes": [{"path": "workload.bach", "values": [8]}]}
            }"#);
        let e = run_sweep(&scenario, 1).unwrap_err().to_string();
        assert!(e.contains("bach"), "{e}");
        assert!(
            e.contains("valid keys") && e.contains("batch") && e.contains("seq_len"),
            "the error must list the valid keys at that level: {e}"
        );

        // Deeper typo: the chip level's keys are listed.
        let scenario = doc(r#"{
              "name": "s",
              "model": {"zoo": "llama13", "layers": 2},
              "sweep": {"axes": [{"path": "system.chip.coers", "values": [64]}]}
            }"#);
        let e = run_sweep(&scenario, 1).unwrap_err().to_string();
        assert!(e.contains("`coers` at `system.chip`"), "{e}");
        assert!(e.contains("cores"), "{e}");
    }
}
