//! Conversions from spec types into the engine's configuration types,
//! with the validation the engine constructors would otherwise enforce
//! by panicking.
//!
//! Scenario files are external input, so every invariant (positive
//! dimensions, power-of-two buckets, well-formed arrival processes) is
//! checked here and reported as a [`SpecError::Invalid`] instead of a
//! panic deep inside the engine.

use elk_cluster::{ClusterOptions, ParallelismPlan};
use elk_hw::{
    presets, ChipConfig, HbmConfig, InterChipTopology, SramContention, SystemConfig, Topology,
};
use elk_model::{ModelGraph, TransformerConfig, Workload};
use elk_serve::{ArrivalProcess, BatchConfig, LengthDist, ServeConfig, SloConfig, TraceConfig};
use elk_sim::SimOptions;
use elk_units::{ByteRate, Bytes, FlopRate, Seconds};

use elk_trace::{LengthModel, RateShape, TraceGenConfig};

use crate::spec::{
    AutoscaleSpec, ChipSpec, ClusterSpec, DisaggSpec, HbmSpec, ModelSpec, ScenarioSpec,
    ServingSpec, SimSpec, SystemSpec, TenancySpec, TopologySpec, TraceGenSpec, TraceSpec,
    WorkloadSpec,
};
use crate::SpecError;

fn invalid(msg: impl Into<String>) -> SpecError {
    SpecError::Invalid(msg.into())
}

/// Checks that `x` is a finite, strictly positive number.
fn positive(what: &str, x: f64) -> Result<f64, SpecError> {
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(invalid(format!(
            "{what} must be a positive number, got {x}"
        )))
    }
}

/// A preset alias paired with its constructor (mirrors
/// [`elk_model::zoo::LlmAlias`]).
pub type SystemPreset = (&'static str, fn() -> SystemConfig);

/// The system presets a scenario can name, with their constructors.
pub const SYSTEM_PRESETS: [SystemPreset; 3] = [
    ("ipu_pod4", presets::ipu_pod4),
    ("ipu_pod4_mesh", presets::ipu_pod4_mesh),
    ("single_chip", presets::single_chip),
];

impl SystemSpec {
    /// Builds the [`SystemConfig`] this spec describes.
    ///
    /// Preset scenarios resolve to the exact hardcoded preset, so
    /// results are byte-identical to the non-spec code path.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for an unknown preset name or an
    /// ill-formed custom description.
    pub fn to_system(&self) -> Result<SystemConfig, SpecError> {
        match self {
            SystemSpec::Preset(name) => SYSTEM_PRESETS
                .iter()
                .find(|(alias, _)| alias == name)
                .map(|(_, build)| build())
                .ok_or_else(|| {
                    let valid: Vec<&str> = SYSTEM_PRESETS.iter().map(|(a, _)| *a).collect();
                    invalid(format!(
                        "unknown system preset '{name}': expected one of {}",
                        valid.join(", ")
                    ))
                }),
            SystemSpec::Custom {
                chip,
                chips,
                hbm,
                inter_chip_bw_gib_s,
            } => {
                if *chips == 0 {
                    return Err(invalid("system.chips must be > 0"));
                }
                Ok(SystemConfig {
                    chip: chip.to_chip()?,
                    hbm: hbm.to_hbm()?,
                    chips: *chips,
                    inter_chip_bw: ByteRate::gib_per_sec(positive(
                        "system.inter_chip_bw_gib_s",
                        *inter_chip_bw_gib_s,
                    )?),
                    inter_chip_topology: elk_hw::InterChipTopology::Ring,
                })
            }
        }
    }
}

impl ChipSpec {
    /// Builds the [`ChipConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for zero cores, non-positive
    /// rates, or an unknown contention mode.
    pub fn to_chip(&self) -> Result<ChipConfig, SpecError> {
        if self.cores == 0 {
            return Err(invalid("chip.cores must be > 0"));
        }
        if self.sram_per_core_kib == 0 {
            return Err(invalid("chip.sram_per_core_kib must be > 0"));
        }
        if self.io_buffer_per_core_kib >= self.sram_per_core_kib {
            return Err(invalid(format!(
                "chip.io_buffer_per_core_kib ({}) must be smaller than sram_per_core_kib ({})",
                self.io_buffer_per_core_kib, self.sram_per_core_kib
            )));
        }
        let sram_contention = match self.sram_contention.as_str() {
            "blocking" => SramContention::Blocking,
            "concurrent" => SramContention::Concurrent,
            other => {
                return Err(invalid(format!(
                    "chip.sram_contention '{other}': expected blocking or concurrent"
                )))
            }
        };
        let cores = self.cores;
        let matmul = positive("chip.matmul_tflops", self.matmul_tflops)?;
        let vector = positive("chip.vector_tflops", self.vector_tflops)?;
        Ok(ChipConfig {
            name: self.name.clone(),
            cores,
            sram_per_core: Bytes::kib(self.sram_per_core_kib),
            io_buffer_per_core: Bytes::kib(self.io_buffer_per_core_kib),
            matmul_rate_per_core: FlopRate::new(matmul * 1e12 / cores as f64),
            vector_rate_per_core: FlopRate::new(vector * 1e12 / cores as f64),
            sram_bw_per_core: ByteRate::new(
                positive("chip.sram_bw_gb_s", self.sram_bw_gb_s)? * 1e9,
            ),
            sram_contention,
            topology: self.topology.to_topology(cores)?,
        })
    }
}

impl TopologySpec {
    /// Builds the [`Topology`] this spec describes for a `cores`-core
    /// chip.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for non-positive bandwidths.
    pub fn to_topology(&self, cores: u64) -> Result<Topology, SpecError> {
        match self {
            TopologySpec::AllToAll { core_link_gib_s } => Ok(Topology::AllToAll {
                core_link: ByteRate::gib_per_sec(positive(
                    "topology.all_to_all.core_link_gib_s",
                    *core_link_gib_s,
                )?),
            }),
            TopologySpec::Mesh { total_gib_s } => Ok(Topology::mesh_with_total(
                ByteRate::gib_per_sec(positive("topology.mesh.total_gib_s", *total_gib_s)?),
                cores,
            )),
        }
    }
}

impl HbmSpec {
    /// Builds the [`HbmConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for zero channels or non-positive
    /// bandwidth.
    pub fn to_hbm(&self) -> Result<HbmConfig, SpecError> {
        if self.channels == 0 {
            return Err(invalid("hbm.channels must be > 0"));
        }
        if self.capacity_gib == 0 {
            return Err(invalid("hbm.capacity_gib must be > 0"));
        }
        Ok(HbmConfig::new(
            self.channels,
            ByteRate::gib_per_sec(positive("hbm.channel_bw_gib_s", self.channel_bw_gib_s)?),
        )
        .with_capacity(Bytes::gib(self.capacity_gib)))
    }
}

/// A resolved model: zoo lookups done and layer overrides applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedModel {
    /// Dense transformer.
    Llm(elk_model::TransformerConfig),
    /// Mixture of experts.
    Moe(elk_model::moe::MoeConfig),
    /// Diffusion transformer.
    Dit(elk_model::dit::DitConfig),
}

impl ResolvedModel {
    /// Model name for reports.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ResolvedModel::Llm(cfg) => &cfg.name,
            ResolvedModel::Moe(cfg) => &cfg.name,
            ResolvedModel::Dit(cfg) => &cfg.name,
        }
    }

    /// Builds the operator graph for one `workload` step on `shards`
    /// tensor-parallel shards.
    #[must_use]
    pub fn build(&self, workload: Workload, shards: u64) -> ModelGraph {
        match self {
            ResolvedModel::Llm(cfg) => cfg.build(workload, shards),
            ResolvedModel::Moe(cfg) => cfg.build(workload, shards),
            ResolvedModel::Dit(cfg) => cfg.build(workload, shards),
        }
    }
}

impl ModelSpec {
    /// Resolves zoo names and applies the optional layer override.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for an unknown zoo alias, a zero
    /// layer override, or zero dimensions in an explicit config.
    pub fn resolve(&self) -> Result<ResolvedModel, SpecError> {
        let model = match self {
            ModelSpec::Zoo { zoo, layers } => {
                let mut model = match zoo.as_str() {
                    "mixtral" => ResolvedModel::Moe(elk_model::zoo::mixtral_8x7b()),
                    "dit" => ResolvedModel::Dit(elk_model::zoo::dit_xl()),
                    name => ResolvedModel::Llm(
                        elk_model::zoo::by_name(name)
                            .map_err(|e| invalid(format!("{e}, mixtral, dit")))?,
                    ),
                };
                if let Some(layers) = *layers {
                    if layers == 0 {
                        return Err(invalid("model.layers override must be > 0"));
                    }
                    match &mut model {
                        ResolvedModel::Llm(cfg) => cfg.layers = layers,
                        ResolvedModel::Moe(cfg) => cfg.layers = layers,
                        ResolvedModel::Dit(cfg) => cfg.layers = layers,
                    }
                }
                model
            }
            ModelSpec::Transformer(cfg) => ResolvedModel::Llm(cfg.clone()),
            ModelSpec::Moe(cfg) => ResolvedModel::Moe(cfg.clone()),
            ModelSpec::Dit(cfg) => ResolvedModel::Dit(cfg.clone()),
        };
        let layers = match &model {
            ResolvedModel::Llm(cfg) => cfg.layers,
            ResolvedModel::Moe(cfg) => cfg.layers,
            ResolvedModel::Dit(cfg) => cfg.layers,
        };
        if layers == 0 {
            return Err(invalid("model: layer count must be > 0"));
        }
        Ok(model)
    }

    /// The dense-transformer config, if this model is servable by
    /// `elk serve` (the serving engine batches dense transformers only).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for MoE and DiT models.
    pub fn as_transformer(&self) -> Result<TransformerConfig, SpecError> {
        match self.resolve()? {
            ResolvedModel::Llm(cfg) => Ok(cfg),
            other => Err(invalid(format!(
                "serving requires a dense transformer model, got {}",
                other.name()
            ))),
        }
    }
}

impl WorkloadSpec {
    /// Builds the [`Workload`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for zero batch or sequence length.
    pub fn to_workload(&self) -> Result<Workload, SpecError> {
        if self.batch == 0 || self.seq_len == 0 {
            return Err(invalid(format!(
                "workload.batch ({}) and workload.seq_len ({}) must be > 0",
                self.batch, self.seq_len
            )));
        }
        Ok(Workload {
            batch: self.batch,
            seq_len: self.seq_len,
            phase: self.phase,
        })
    }

    /// The tensor-parallel shard count, defaulting to the system's chip
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for a zero shard override.
    pub fn shards_for(&self, system: &SystemConfig) -> Result<u64, SpecError> {
        match self.shards {
            Some(0) => Err(invalid("workload.shards must be > 0")),
            Some(n) => Ok(n),
            None => Ok(system.chips),
        }
    }
}

impl SimSpec {
    /// Builds the [`SimOptions`] this spec describes. The Ideal design
    /// adds its dedicated-interconnect assumption itself (see
    /// [`elk_baselines::DesignRunner::run`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for a negative or non-finite
    /// noise magnitude.
    pub fn to_options(&self) -> Result<SimOptions, SpecError> {
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 {
            return Err(invalid(format!(
                "sim.noise_sigma must be >= 0, got {}",
                self.noise_sigma
            )));
        }
        Ok(SimOptions {
            noise_sigma: self.noise_sigma,
            noise_seed: self.noise_seed,
            dedicated_interconnects: false,
            trace_samples: self.trace_samples,
        })
    }
}

impl TraceSpec {
    /// Builds the [`TraceConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] when the arrival process or a
    /// length distribution violates the engine's invariants (the same
    /// conditions [`TraceConfig::generate`] would panic on).
    pub fn to_config(&self) -> Result<TraceConfig, SpecError> {
        if self.requests == 0 {
            return Err(invalid("trace.requests must be > 0"));
        }
        validate_arrivals(&self.arrivals)?;
        validate_lengths("trace.prompt_len", &self.prompt_len)?;
        validate_lengths("trace.output_len", &self.output_len)?;
        Ok(TraceConfig {
            seed: self.seed,
            requests: self.requests,
            arrivals: self.arrivals,
            prompt_len: self.prompt_len,
            output_len: self.output_len,
        })
    }
}

fn validate_arrivals(arrivals: &ArrivalProcess) -> Result<(), SpecError> {
    match *arrivals {
        ArrivalProcess::Poisson { rate_rps } => {
            positive("trace.arrivals.rate_rps", rate_rps)?;
        }
        ArrivalProcess::Bursty {
            rate_rps,
            burst_factor,
            period_s,
            duty,
        } => {
            positive("trace.arrivals.rate_rps", rate_rps)?;
            positive("trace.arrivals.period_s", period_s)?;
            if burst_factor < 1.0 {
                return Err(invalid("trace.arrivals.burst_factor must be >= 1"));
            }
            if !(duty > 0.0 && duty < 1.0) {
                return Err(invalid("trace.arrivals.duty must be in (0, 1)"));
            }
            if burst_factor * duty >= 1.0 {
                return Err(invalid(
                    "trace.arrivals: burst_factor * duty must be < 1 \
                     (the off-phase rate would be <= 0)",
                ));
            }
        }
    }
    Ok(())
}

fn validate_lengths(what: &str, dist: &LengthDist) -> Result<(), SpecError> {
    let ok = match *dist {
        LengthDist::Fixed(n) => n > 0,
        LengthDist::Uniform { lo, hi } => lo > 0 && lo <= hi,
        LengthDist::Bimodal {
            short,
            long,
            long_weight,
        } => {
            short.0 > 0
                && short.0 <= short.1
                && long.0 > 0
                && long.0 <= long.1
                && (0.0..=1.0).contains(&long_weight)
        }
    };
    if ok {
        Ok(())
    } else {
        Err(invalid(format!("{what}: ill-formed distribution {dist:?}")))
    }
}

impl TraceGenSpec {
    /// Builds the [`TraceGenConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] when the rate shape or a length
    /// model violates the generator's invariants (the same conditions
    /// [`TraceGenConfig::generate`] would panic on).
    pub fn to_config(&self) -> Result<TraceGenConfig, SpecError> {
        if self.requests == 0 {
            return Err(invalid("workload.trace.generate.requests must be > 0"));
        }
        validate_rate(&self.rate)?;
        validate_length_model("workload.trace.generate.prompt_len", &self.prompt_len)?;
        validate_length_model("workload.trace.generate.output_len", &self.output_len)?;
        Ok(TraceGenConfig {
            seed: self.seed,
            requests: self.requests,
            rate: self.rate,
            prompt_len: self.prompt_len,
            output_len: self.output_len,
            tenants: self.tenants,
        })
    }
}

fn validate_rate(rate: &RateShape) -> Result<(), SpecError> {
    let at = "workload.trace.generate.rate";
    match *rate {
        RateShape::Constant { rate_rps } => {
            positive(&format!("{at}.rate_rps"), rate_rps)?;
        }
        RateShape::Diurnal {
            mean_rps,
            amplitude,
            period_s,
        } => {
            positive(&format!("{at}.mean_rps"), mean_rps)?;
            positive(&format!("{at}.period_s"), period_s)?;
            if !(0.0..1.0).contains(&amplitude) {
                return Err(invalid(format!(
                    "{at}.amplitude must be in [0, 1) so the rate stays positive, got {amplitude}"
                )));
            }
        }
        RateShape::BurstTrain {
            base_rps,
            burst_rps,
            period_s,
            burst_s,
        } => {
            positive(&format!("{at}.base_rps"), base_rps)?;
            positive(&format!("{at}.period_s"), period_s)?;
            positive(&format!("{at}.burst_s"), burst_s)?;
            if burst_rps < base_rps {
                return Err(invalid(format!(
                    "{at}: burst_rps ({burst_rps}) must be >= base_rps ({base_rps})"
                )));
            }
            if burst_s >= period_s {
                return Err(invalid(format!(
                    "{at}: burst_s ({burst_s}) must be shorter than period_s ({period_s})"
                )));
            }
        }
    }
    Ok(())
}

fn validate_length_model(what: &str, model: &LengthModel) -> Result<(), SpecError> {
    let ok = match *model {
        LengthModel::Fixed { tokens } => tokens > 0,
        LengthModel::Uniform { lo, hi } => lo > 0 && lo <= hi,
        LengthModel::HeavyTail { lo, alpha, cap } => {
            lo > 0 && cap >= lo && alpha.is_finite() && alpha > 0.0
        }
    };
    if ok {
        Ok(())
    } else {
        Err(invalid(format!(
            "{what}: ill-formed length model {model:?}"
        )))
    }
}

impl AutoscaleSpec {
    /// Builds the [`elk_cluster::AutoscaleConfig`] this spec describes.
    /// Threshold/bounds validation happens in
    /// [`elk_cluster::AutoscaleServingSim::new`]; only the unit
    /// conversion is checked here.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for a non-positive interval.
    pub fn to_config(&self) -> Result<elk_cluster::AutoscaleConfig, SpecError> {
        positive("cluster.autoscale.interval_ms", self.interval_ms)?;
        Ok(elk_cluster::AutoscaleConfig {
            min_groups: self.min_groups,
            max_groups: self.max_groups,
            interval: Seconds::new(self.interval_ms / 1e3),
            up_queue_depth: self.up_queue_depth,
            down_queue_depth: self.down_queue_depth,
            slo_target: self.slo_target,
            cold_start_steps: self.cold_start_steps,
        })
    }
}

impl DisaggSpec {
    /// The two pool plans this spec pins, prefill first.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] when either pool has a zero
    /// degree (pod/model fit is checked by
    /// [`elk_cluster::DisaggServingSim::new`]).
    pub fn to_plans(&self) -> Result<(ParallelismPlan, ParallelismPlan), SpecError> {
        for (name, p) in [
            ("cluster.disaggregate.prefill", &self.prefill),
            ("cluster.disaggregate.decode", &self.decode),
        ] {
            if p.tp == 0 || p.pp == 0 || p.dp == 0 {
                return Err(invalid(format!("{name}: tp, pp, dp must all be >= 1")));
            }
        }
        Ok((
            ParallelismPlan::new(self.prefill.tp, self.prefill.pp, self.prefill.dp),
            ParallelismPlan::new(self.decode.tp, self.decode.pp, self.decode.dp),
        ))
    }
}

impl TenancySpec {
    /// Builds the [`elk_serve::TenancyConfig`] this spec describes.
    ///
    /// SLO bounds convert from ms to seconds and the shed policy name
    /// resolves here; the structural invariants (unique names, priority
    /// band, resolvable classes) are then checked by
    /// [`elk_serve::TenancyConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for an unknown shed policy, a
    /// non-positive SLO bound, an out-of-band priority, or any
    /// violation `validate` reports.
    pub fn to_config(&self) -> Result<elk_serve::TenancyConfig, SpecError> {
        let shed_policy = match self.shed_policy.as_str() {
            "reject" => elk_serve::ShedPolicy::Reject,
            "defer" => elk_serve::ShedPolicy::Defer,
            other => {
                return Err(invalid(format!(
                    "tenants.shed_policy '{other}': expected reject or defer"
                )))
            }
        };
        let mut classes = Vec::with_capacity(self.classes.len());
        for c in &self.classes {
            if c.priority > u64::from(elk_serve::MAX_CLASS_PRIORITY) {
                return Err(invalid(format!(
                    "tenants.classes '{}': priority {} exceeds the maximum {}",
                    c.name,
                    c.priority,
                    elk_serve::MAX_CLASS_PRIORITY
                )));
            }
            positive("tenants.classes slo.ttft_ms", c.slo.ttft_ms)?;
            positive("tenants.classes slo.tpot_ms", c.slo.tpot_ms)?;
            classes.push(elk_serve::TenantClass {
                name: c.name.clone(),
                priority: c.priority as u8,
                slo: SloConfig {
                    ttft: Seconds::new(c.slo.ttft_ms / 1e3),
                    tpot: Seconds::new(c.slo.tpot_ms / 1e3),
                },
                rate_rps: c.rate_rps,
                burst: c.burst,
                model: c.model.clone(),
                sheddable: c.sheddable,
            });
        }
        let config = elk_serve::TenancyConfig {
            classes,
            tenants: self.map.clone(),
            default_class: self.default_class.clone(),
            shed_queue_depth: self.shed_queue_depth,
            shed_policy,
            defer_s: self.defer_ms / 1e3,
        };
        config.validate().map_err(invalid)?;
        Ok(config)
    }
}

impl ServingSpec {
    /// Builds the [`ServeConfig`] for `model` on `shards`-way tensor
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for zero caps/replicas or an
    /// ill-formed bucket ladder (the conditions [`ServeConfig`]'s
    /// constructors would panic on).
    pub fn to_config(
        &self,
        model: TransformerConfig,
        shards: u64,
        sim: SimOptions,
    ) -> Result<ServeConfig, SpecError> {
        if self.replicas == 0 {
            return Err(invalid("serving.replicas must be > 0"));
        }
        if self.max_batch == 0 || self.max_prefill_tokens == 0 {
            return Err(invalid(
                "serving.max_batch and serving.max_prefill_tokens must be > 0",
            ));
        }
        let b = self.seq_buckets;
        if b.min == 0 || !b.min.is_power_of_two() || b.max < b.min {
            return Err(invalid(format!(
                "serving.seq_buckets: min ({}) must be a power of two and <= max ({})",
                b.min, b.max
            )));
        }
        positive("serving.slo.ttft_ms", self.slo.ttft_ms)?;
        positive("serving.slo.tpot_ms", self.slo.tpot_ms)?;
        let mut config = ServeConfig::new(model, shards)
            .with_replicas(self.replicas)
            .with_threads(self.threads);
        config.batch = BatchConfig {
            max_batch: self.max_batch,
            max_prefill_tokens: self.max_prefill_tokens,
            seq_buckets: elk_model::SeqBuckets::new(b.min, b.max),
            bucket_batch: self.bucket_batch,
        };
        config.slo = SloConfig {
            ttft: Seconds::new(self.slo.ttft_ms / 1e3),
            tpot: Seconds::new(self.slo.tpot_ms / 1e3),
        };
        config.sim = sim;
        Ok(config)
    }
}

impl ClusterSpec {
    /// The inter-chip link arrangement this spec names.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for an unknown name.
    pub fn to_interconnect(&self) -> Result<InterChipTopology, SpecError> {
        match self.interconnect.as_str() {
            "ring" => Ok(InterChipTopology::Ring),
            "fully_connected" => Ok(InterChipTopology::FullyConnected),
            other => Err(invalid(format!(
                "cluster.interconnect '{other}': expected ring or fully_connected"
            ))),
        }
    }

    /// The estimator options this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for a zero microbatch count or an
    /// ill-formed fixed plan.
    pub fn to_options(&self) -> Result<ClusterOptions, SpecError> {
        if self.microbatches == Some(0) {
            return Err(invalid("cluster.microbatches must be > 0"));
        }
        if let Some(p) = &self.plan {
            if p.tp == 0 || p.pp == 0 || p.dp == 0 {
                return Err(invalid("cluster.plan: tp, pp, dp must all be >= 1"));
            }
        }
        Ok(ClusterOptions {
            microbatches: self.microbatches,
            baseline: true,
            threads: self.threads,
        })
    }

    /// The fixed plan, if one is pinned (`None` = auto-search).
    #[must_use]
    pub fn to_plan(&self) -> Option<ParallelismPlan> {
        self.plan
            .as_ref()
            .map(|p| ParallelismPlan::new(p.tp, p.pp, p.dp))
    }
}

impl ScenarioSpec {
    /// `true` when `elk serve` can run this scenario (the model is a
    /// dense transformer).
    ///
    /// Note this is also `false` when the model fails to resolve at
    /// all; a caller that must distinguish "skip" from "broken" (the
    /// CLI does) should match [`ModelSpec::resolve`] instead and
    /// propagate its error.
    #[must_use]
    pub fn servable(&self) -> bool {
        matches!(self.model.resolve(), Ok(ResolvedModel::Llm(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeqBucketsSpec;

    #[test]
    fn preset_resolves_to_the_exact_hardcoded_system() {
        let spec = SystemSpec::Preset("ipu_pod4".into());
        assert_eq!(spec.to_system().unwrap(), presets::ipu_pod4());
        let mesh = SystemSpec::Preset("ipu_pod4_mesh".into());
        assert_eq!(mesh.to_system().unwrap(), presets::ipu_pod4_mesh());
        let e = SystemSpec::Preset("tpu".into()).to_system().unwrap_err();
        assert!(e.to_string().contains("ipu_pod4"), "{e}");
    }

    #[test]
    fn custom_chip_builds_and_validates() {
        let chip = ChipSpec {
            name: "toy".into(),
            cores: 64,
            sram_per_core_kib: 256,
            io_buffer_per_core_kib: 8,
            matmul_tflops: 16.0,
            vector_tflops: 2.0,
            sram_bw_gb_s: 21.3,
            sram_contention: "concurrent".into(),
            topology: TopologySpec::Mesh { total_gib_s: 512.0 },
        };
        let cfg = chip.to_chip().unwrap();
        assert_eq!(cfg.cores, 64);
        assert_eq!(cfg.sram_contention, SramContention::Concurrent);
        assert!((cfg.matmul_rate().as_tera() - 16.0).abs() < 1e-9);
        assert!(matches!(cfg.topology, Topology::Mesh2d { .. }));

        let bad = ChipSpec {
            io_buffer_per_core_kib: 256,
            ..chip
        };
        assert!(bad.to_chip().is_err());
    }

    #[test]
    fn zoo_layer_override_applies() {
        let spec = ModelSpec::Zoo {
            zoo: "llama13".into(),
            layers: Some(2),
        };
        let ResolvedModel::Llm(cfg) = spec.resolve().unwrap() else {
            panic!("llama13 is dense");
        };
        assert_eq!(cfg.layers, 2);
        assert_eq!(cfg.name, "Llama-2-13B");
    }

    #[test]
    fn moe_and_dit_resolve_but_are_not_servable() {
        for zoo in ["mixtral", "dit"] {
            let spec = ModelSpec::Zoo {
                zoo: zoo.into(),
                layers: None,
            };
            assert!(spec.resolve().is_ok(), "{zoo} must resolve");
            assert!(spec.as_transformer().is_err(), "{zoo} must not serve");
        }
        let unknown = ModelSpec::Zoo {
            zoo: "gpt5".into(),
            layers: None,
        };
        let e = unknown.resolve().unwrap_err().to_string();
        assert!(e.contains("mixtral"), "aliases listed: {e}");
    }

    #[test]
    fn workload_defaults_shards_to_chip_count() {
        let spec = WorkloadSpec::default();
        let sys = presets::ipu_pod4();
        assert_eq!(spec.shards_for(&sys).unwrap(), 4);
        assert_eq!(spec.to_workload().unwrap(), Workload::decode(32, 2048));
    }

    #[test]
    fn serving_invariants_are_checked() {
        let model = elk_model::zoo::llama2_13b();
        let sim = SimOptions::default();
        let mut spec = ServingSpec::default();
        assert!(spec.to_config(model.clone(), 4, sim).is_ok());
        spec.seq_buckets = SeqBucketsSpec { min: 3, max: 8 };
        assert!(spec.to_config(model, 4, sim).is_err());
    }

    #[test]
    fn overdriven_burst_is_an_error_not_a_panic() {
        let spec = TraceSpec {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 10.0,
                burst_factor: 5.0,
                period_s: 1.0,
                duty: 0.5,
            },
            ..TraceSpec::default()
        };
        let e = spec.to_config().unwrap_err().to_string();
        assert!(e.contains("burst_factor"), "{e}");
    }
}
