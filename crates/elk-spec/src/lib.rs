//! # elk-spec — declarative scenario specs for the Elk reproduction
//!
//! Every chip, model, and workload used to be a hardcoded Rust preset;
//! exploring a new ICCA design point — the paper's whole premise —
//! meant recompiling the workspace. This crate makes experiments data:
//! a JSON **scenario** describes the system ([`spec::SystemSpec`]),
//! model ([`spec::ModelSpec`]), workload, compiler options, simulator
//! options, and serving setup, and the runners in [`runner`] drive the
//! exact engine entry points the preset paths use — so a scenario that
//! names a preset is byte-identical to the hardcoded run.
//!
//! ## Pipeline
//!
//! ```text
//! scenarios/*.json --parse--> ScenarioSpec --convert--> SystemConfig /
//!        |                     (strict, defaulted)      ModelGraph /
//!        |                                              ServeConfig ...
//!        v
//! elk CLI: compile | simulate | serve | sweep --> results/<name>.<cmd>.json
//!                                  |
//!                                  `-- sweep: dotted-path overrides over
//!                                      the JSON document, fanned out via
//!                                      elk-par, merged in grid order
//! ```
//!
//! ## Example
//!
//! ```
//! use elk_spec::{runner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(
//!     r#"{
//!       "name": "doctest",
//!       "model": {"zoo": "llama13", "layers": 2},
//!       "workload": {"batch": 16, "seq_len": 512}
//!     }"#,
//! )?;
//! let report = runner::run_compile(&spec)?;
//! assert_eq!(report.model, "Llama-2-13B");
//! assert_eq!(report.designs[0].report.capacity_violations, 0);
//! # Ok::<(), elk_spec::SpecError>(())
//! ```

#![warn(missing_docs)]

mod de;
mod schema;

pub mod convert;
pub mod report;
pub mod runner;
pub mod spec;
pub mod sweep;

pub use convert::{ResolvedModel, SYSTEM_PRESETS};
pub use report::{CompileReport, ServeReport, SimulateReport, SweepReport, TraceGenReport};
pub use spec::{design_name, phase_name, ObserveSpec, ScenarioSpec, SweepCommand, TraceSourceSpec};
pub use sweep::run_sweep;

use std::fmt;

/// Why a scenario could not be parsed or run.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The JSON was malformed or did not match the schema.
    Parse(String),
    /// The spec parsed but violates an engine invariant.
    Invalid(String),
    /// The engine could not compile a plan for the scenario.
    Compile(elk_core::CompileError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "parse error: {msg}"),
            SpecError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            SpecError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde::Error> for SpecError {
    fn from(e: serde::Error) -> Self {
        SpecError::Parse(e.to_string())
    }
}

impl From<elk_core::CompileError> for SpecError {
    fn from(e: elk_core::CompileError) -> Self {
        SpecError::Compile(e)
    }
}
