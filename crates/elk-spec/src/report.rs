//! Machine-readable reports the scenario runners emit — the JSON the
//! `elk` CLI writes to `results/` and CI uploads as a build artifact.
//!
//! Every type here is `Serialize` over the vendored serde shim, so the
//! emitted files are deterministic (struct-declaration field order) and
//! round-trip through `serde_json` — the CI artifact step asserts this.

use serde::{Serialize, Value};

use elk_baselines::Design;
use elk_cluster::{
    AutoscaleReport, ClusterReport, ClusterServingReport, DisaggServingReport, PlanCandidate,
    TenancyServingReport,
};
use elk_core::CompileStats;
use elk_model::Workload;
use elk_serve::ServingReport;
use elk_sim::{SimReport, TimeBuckets};

/// The deterministic subset of [`CompileStats`]: everything except the
/// wall-clock compile time, which would break the byte-identity
/// guarantee of emitted reports (`elk sweep` at `--threads 1` vs `8`
/// must produce identical bytes).
#[derive(Debug, Clone, Serialize)]
pub struct PlanSearchStats {
    /// Preload orders generated (post pruning).
    pub orders_considered: usize,
    /// Orders that scheduled successfully.
    pub orders_feasible: usize,
    /// Edit distance of the winning order.
    pub chosen_edit_distance: usize,
    /// Distinct operator signatures (plan sets actually enumerated).
    pub distinct_signatures: usize,
    /// `P`: maximum feasible plans over all operators.
    pub max_plans_per_op: usize,
    /// Maximum simultaneously-resident operators observed.
    pub peak_resident_ops: usize,
    /// Mean preload number across operators.
    pub avg_preload_number: f64,
}

impl From<&CompileStats> for PlanSearchStats {
    fn from(s: &CompileStats) -> Self {
        PlanSearchStats {
            orders_considered: s.orders_considered,
            orders_feasible: s.orders_feasible,
            chosen_edit_distance: s.chosen_edit_distance,
            distinct_signatures: s.distinct_signatures,
            max_plans_per_op: s.max_plans_per_op,
            peak_resident_ops: s.peak_resident_ops,
            avg_preload_number: s.avg_preload_number,
        }
    }
}

/// Output of `elk compile`: per-design compiled-plan artifacts plus the
/// simulator measurement of each program.
#[derive(Debug, Clone, Serialize)]
pub struct CompileReport {
    /// Scenario name.
    pub scenario: String,
    /// Chip name of the target system.
    pub system: String,
    /// Chips in the pod.
    pub chips: u64,
    /// Model name.
    pub model: String,
    /// The compiled workload step.
    pub workload: Workload,
    /// Tensor-parallel shard count.
    pub shards: u64,
    /// One entry per design, in spec order.
    ///
    /// The worker-thread knob is deliberately *not* recorded: results
    /// are identical at any setting, and recording it would break the
    /// reports' byte-identity across `--threads` values.
    pub designs: Vec<DesignCompileReport>,
}

/// One design's compile outcome.
#[derive(Debug, Clone, Serialize)]
pub struct DesignCompileReport {
    /// The design.
    pub design: Design,
    /// Operators in the lowered device program.
    pub ops: usize,
    /// Device instructions emitted.
    pub instrs: usize,
    /// Compiler-side forward-timeline estimate of the makespan, ms.
    pub estimate_total_ms: f64,
    /// Elk plan-search statistics (`None` for the hand-built
    /// baselines).
    pub compile: Option<PlanSearchStats>,
    /// Simulator measurement of the compiled program.
    pub report: SimReport,
}

/// Output of `elk simulate`: the §6 design comparison on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct SimulateReport {
    /// Scenario name.
    pub scenario: String,
    /// Chip name of the target system.
    pub system: String,
    /// Model name.
    pub model: String,
    /// The simulated workload step.
    pub workload: Workload,
    /// Tensor-parallel shard count.
    pub shards: u64,
    /// One row per design, in spec order.
    pub designs: Vec<DesignSimRow>,
}

/// One design's simulator measurement, in comparison-table form.
#[derive(Debug, Clone, Serialize)]
pub struct DesignSimRow {
    /// The design.
    pub design: Design,
    /// Step makespan, ms.
    pub total_ms: f64,
    /// Basic's makespan over this design's (1.0 for Basic itself;
    /// `None` when Basic is not in the design list).
    pub speedup_vs_basic: Option<f64>,
    /// Makespan decomposition (Fig. 18/20 buckets).
    pub buckets: TimeBuckets,
    /// Mean HBM bandwidth utilization.
    pub hbm_util: f64,
    /// Mean interconnect utilization.
    pub noc_util: f64,
    /// Achieved compute throughput per chip, TFLOPS.
    pub achieved_tflops: f64,
    /// Fraction of the makespan with preload/execute overlapped.
    pub overlap_fraction: f64,
    /// Residency events exceeding per-core SRAM (0 for sound plans).
    pub capacity_violations: usize,
}

/// Output of `elk serve`: request-level serving metrics per design.
///
/// Byte-identical run-to-run at a fixed worker count. Across
/// `--threads` settings every field is invariant *except* each
/// design's `cache` hit/miss split — a concurrent cache miss warms all
/// designs at once, shifting hits to misses (see
/// `elk_serve::ServeConfig::threads`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Scenario name.
    pub scenario: String,
    /// Model name.
    pub model: String,
    /// Requests in the generated trace.
    pub requests: usize,
    /// Replica count.
    pub replicas: usize,
    /// Tensor-parallel shard count per replica.
    pub shards: u64,
    /// One full serving report per design, in spec order.
    pub designs: Vec<ServingReport>,
    /// Multi-tenant replay, one row per design (when the scenario has
    /// a `serving.tenants` section).
    pub tenancy: Option<Vec<TenancyServingReport>>,
}

/// Output of `elk cluster`: the (searched or pinned) parallelism plan's
/// estimate, plus the routed serving comparison when enabled.
///
/// Byte-identical across `--threads` settings: the search merges in
/// grid order, the serving event loop is sequential, and no cache
/// hit/miss counters are recorded.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterRunReport {
    /// Scenario name.
    pub scenario: String,
    /// Chip name of the target system.
    pub system: String,
    /// Chips in the pod.
    pub chips: u64,
    /// Model name.
    pub model: String,
    /// Design the plan was compiled with (first of the spec's list).
    pub design: Design,
    /// Inter-chip link arrangement collectives were priced on.
    pub interconnect: String,
    /// `true` when the plan came from the auto-parallelism search.
    pub auto: bool,
    /// Every `(tp, pp, dp)` candidate in grid order (auto mode only).
    pub candidates: Option<Vec<PlanCandidate>>,
    /// The chosen plan's full estimate: per-stage timeline, bubble
    /// fraction, scaling efficiency.
    pub estimate: ClusterReport,
    /// Routed serving comparison, one row per design × router policy
    /// (when the scenario's `cluster.serve` is on).
    pub serving: Option<Vec<ClusterServingReport>>,
    /// Elastic-fleet replay, one row per design (when the scenario has
    /// a `cluster.autoscale` section and `cluster.serve` is on).
    pub autoscale: Option<Vec<AutoscaleReport>>,
    /// Disaggregated prefill/decode replay, one row per design × router
    /// policy (when the scenario has a `cluster.disaggregate` section
    /// and `cluster.serve` is on).
    pub disagg: Option<Vec<DisaggServingReport>>,
    /// Multi-tenant replay, one row per design × router policy (when
    /// the scenario has a `cluster.tenants` section and `cluster.serve`
    /// is on).
    pub tenancy: Option<Vec<TenancyServingReport>>,
}

/// Output of `elk trace gen`: a summary of the emitted trace file.
/// Deterministic — trace content is a pure function of the generator
/// spec, and no wall-clock field is recorded (the `PlanSearchStats`
/// convention).
#[derive(Debug, Clone, Serialize)]
pub struct TraceGenReport {
    /// Scenario name (the trace file's stem).
    pub scenario: String,
    /// Generator seed.
    pub seed: u64,
    /// Records emitted.
    pub requests: usize,
    /// First-to-last arrival span, simulated seconds.
    pub duration_s: f64,
    /// Sum of prompt lengths.
    pub total_prompt_tokens: u64,
    /// Sum of output lengths.
    pub total_output_tokens: u64,
    /// Distinct tenant ids stamped on records.
    pub tenants: usize,
}

/// Output of `elk sweep`: one report per grid point, in grid order.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Base scenario name.
    pub scenario: String,
    /// The per-point runner (`compile`, `simulate`, `serve`).
    pub command: String,
    /// Swept paths, in axis order (last axis varies fastest).
    pub axes: Vec<String>,
    /// Grid points, row-major over the axes.
    pub points: Vec<SweepPoint>,
}

/// One sweep grid point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Point name: the base name plus the overrides applied.
    pub name: String,
    /// The path → value overrides of this point, as a JSON object.
    pub overrides: Value,
    /// The point's full report (a [`CompileReport`], [`SimulateReport`],
    /// or [`ServeReport`] as a JSON value, matching `command`).
    pub report: Value,
}
