//! Scenario runners: one function per `elk` CLI subcommand, shared by
//! the CLI, the sweep fan-out, and the test suite.
//!
//! Every runner goes through the exact engine entry points the
//! hardcoded-preset paths use ([`DesignRunner`], [`ServingSim`]), so a
//! scenario that names a preset produces byte-identical reports to the
//! equivalent non-spec run — the golden tests pin this.

use elk_baselines::DesignRunner;
use elk_cluster::{
    AutoscaleServingSim, ClusterError, ClusterEstimator, ClusterServeConfig, ClusterServingSim,
    DisaggConfig, DisaggServingSim, ParallelismPlan, TenantServingSim,
};
use elk_obs::Obs;
use elk_serve::{RequestTrace, RouterPolicy, ServingSim};
use elk_trace::TraceFile;
use elk_units::Seconds;

use crate::report::{
    ClusterRunReport, CompileReport, DesignCompileReport, DesignSimRow, ServeReport,
    SimulateReport, TraceGenReport,
};
use crate::spec::{ClusterSpec, ScenarioSpec, TraceSourceSpec};
use crate::SpecError;

impl From<ClusterError> for SpecError {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::Invalid(msg) => SpecError::Invalid(msg),
            ClusterError::Compile { source, .. } => SpecError::Compile(source),
        }
    }
}

/// Compiles the scenario's designs and simulates each compiled program.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] for an ill-formed spec and
/// [`SpecError::Compile`] when a design has no feasible plan.
pub fn run_compile(spec: &ScenarioSpec) -> Result<CompileReport, SpecError> {
    run_compile_observed(spec, &Obs::null())
}

/// Emits one compile-pipeline lane on `obs` for `design`: pseudo-time
/// spans (1 work unit = 1 µs of span width) sized by the run's
/// thread-invariant search counters, never by wall clock — so a
/// recorded compile timeline is byte-identical at any `threads`
/// setting.
fn record_compile_lane(obs: &Obs, design: elk_baselines::Design, d: &DesignCompileReport) {
    let track = format!("compile/{}", crate::spec::design_name(design));
    let unit = |n: usize| Seconds::from_micros(n as f64);
    let mut cursor = Seconds::ZERO;
    let mut phase = |name: &str, units: usize, args: &[(&str, String)]| {
        let dur = unit(units.max(1));
        obs.span(&track, name, cursor, dur, args);
        cursor += dur;
    };
    if let Some(s) = &d.compile {
        phase(
            "enumerate",
            s.distinct_signatures,
            &[("distinct_signatures", s.distinct_signatures.to_string())],
        );
        phase(
            "order_search",
            s.orders_considered,
            &[
                ("orders_considered", s.orders_considered.to_string()),
                ("orders_feasible", s.orders_feasible.to_string()),
            ],
        );
        obs.counter("compile.orders_considered", s.orders_considered as u64);
        obs.counter("compile.distinct_signatures", s.distinct_signatures as u64);
    }
    phase(
        "lower",
        d.ops,
        &[("ops", d.ops.to_string()), ("instrs", d.instrs.to_string())],
    );
    obs.counter("compile.designs", 1);
    obs.counter("compile.instrs", d.instrs as u64);
}

/// [`run_compile`] with an attached recorder: per-design compile lanes
/// and `compile.*` counters land on `obs`.
///
/// # Errors
///
/// Same as [`run_compile`].
pub fn run_compile_observed(spec: &ScenarioSpec, obs: &Obs) -> Result<CompileReport, SpecError> {
    let system = spec.system.to_system()?;
    let model = spec.model.resolve()?;
    let workload = spec.workload.to_workload()?;
    let shards = spec.workload.shards_for(&system)?;
    let sim = spec.sim.to_options()?;
    let graph = model.build(workload, shards);

    let runner = DesignRunner::new(system.clone()).with_threads(spec.compiler.threads);
    let catalog = runner.catalog(&graph)?;
    let designs = spec
        .compiler
        .design
        .iter()
        .map(|&design| {
            let out = runner.run(design, &graph, &catalog, &sim)?;
            let d = DesignCompileReport {
                design,
                ops: out.program.op_count(),
                instrs: out.program.instrs.len(),
                estimate_total_ms: out.estimate.total.as_millis(),
                compile: out.stats.as_ref().map(Into::into),
                report: out.report,
            };
            if obs.enabled() {
                record_compile_lane(obs, design, &d);
            }
            Ok(d)
        })
        .collect::<Result<Vec<_>, SpecError>>()?;

    Ok(CompileReport {
        scenario: spec.name.clone(),
        system: system.chip.name.clone(),
        chips: system.chips,
        model: model.name().to_string(),
        workload,
        shards,
        designs,
    })
}

/// Runs the scenario's designs through the chip simulator and reports
/// the comparison table (the §6 figures' view).
///
/// # Errors
///
/// Same as [`run_compile`].
pub fn run_simulate(spec: &ScenarioSpec) -> Result<SimulateReport, SpecError> {
    run_simulate_observed(spec, &Obs::null())
}

/// [`run_simulate`] with an attached recorder: the underlying compile
/// pass records one `compile/<design>` lane per design (see
/// [`run_compile_observed`]).
///
/// # Errors
///
/// Same as [`run_simulate`].
pub fn run_simulate_observed(spec: &ScenarioSpec, obs: &Obs) -> Result<SimulateReport, SpecError> {
    let compiled = run_compile_observed(spec, obs)?;
    let basic_total = compiled
        .designs
        .iter()
        .find(|d| d.design == elk_baselines::Design::Basic)
        .map(|d| d.report.total);
    let designs = compiled
        .designs
        .iter()
        .map(|d| DesignSimRow {
            design: d.design,
            total_ms: d.report.total.as_millis(),
            speedup_vs_basic: basic_total.map(|b| b / d.report.total),
            buckets: d.report.buckets,
            hbm_util: d.report.hbm_util,
            noc_util: d.report.noc_util,
            achieved_tflops: d.report.achieved.as_tera(),
            overlap_fraction: d.report.overlap_fraction(),
            capacity_violations: d.report.capacity_violations,
        })
        .collect();
    Ok(SimulateReport {
        scenario: compiled.scenario,
        system: compiled.system,
        model: compiled.model,
        workload: compiled.workload,
        shards: compiled.shards,
        designs,
    })
}

/// Resolves the request trace a replay command uses: the
/// `workload.trace` source when the scenario has one (a recorded
/// `elk-trace` file — relative paths resolve against the working
/// directory — or a seeded generator), else the synthetic
/// `serving.trace` recipe.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] for an unreadable or ill-formed
/// trace file (the message carries the path and the offending record)
/// or an ill-formed generator recipe.
pub fn resolve_trace(spec: &ScenarioSpec) -> Result<RequestTrace, SpecError> {
    resolve_trace_with_tenants(spec).map(|(trace, _)| trace)
}

/// Like [`resolve_trace`], but also returns the per-request tenant ids
/// (indexable by request id) for the multi-tenant replay. Trace sources
/// carry tenant labels; the synthetic `serving.trace` recipe does not,
/// so it yields an empty assignment (= every request on the default
/// tenant).
///
/// # Errors
///
/// Same conditions as [`resolve_trace`].
pub fn resolve_trace_with_tenants(
    spec: &ScenarioSpec,
) -> Result<(RequestTrace, Vec<String>), SpecError> {
    match &spec.workload.trace {
        Some(TraceSourceSpec::File(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| SpecError::Invalid(format!("workload.trace.file {path:?}: {e}")))?;
            let file = TraceFile::parse(&text)
                .map_err(|e| SpecError::Invalid(format!("workload.trace.file {path:?}: {e}")))?;
            if file.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "workload.trace.file {path:?}: the trace has no records"
                )));
            }
            Ok((file.to_request_trace(), file.tenant_assignments()))
        }
        Some(TraceSourceSpec::Generate(g)) => {
            let file = g.to_config()?.generate();
            let tenants = file.tenant_assignments();
            Ok((file.to_request_trace(), tenants))
        }
        None => Ok((spec.serving.trace.to_config()?.generate(), Vec::new())),
    }
}

/// Generates the scenario's `workload.trace.generate` recipe into a
/// versioned trace file plus its summary report.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when the scenario has no
/// `workload.trace.generate` section (a `file` source is already a
/// trace — nothing to generate) or the recipe is ill-formed.
pub fn run_trace_gen(spec: &ScenarioSpec) -> Result<(TraceFile, TraceGenReport), SpecError> {
    let g = match &spec.workload.trace {
        Some(TraceSourceSpec::Generate(g)) => g,
        Some(TraceSourceSpec::File(path)) => {
            return Err(SpecError::Invalid(format!(
                "trace gen needs a `workload.trace.generate` recipe, but this scenario \
                 replays the recorded file {path:?}"
            )))
        }
        None => {
            return Err(SpecError::Invalid(
                "trace gen needs a `workload.trace.generate` section".into(),
            ))
        }
    };
    let file = g.to_config()?.generate();
    let report = TraceGenReport {
        scenario: spec.name.clone(),
        seed: g.seed,
        requests: file.len(),
        duration_s: file.duration_s(),
        total_prompt_tokens: file.total_prompt_tokens(),
        total_output_tokens: file.total_output_tokens(),
        tenants: file.tenants().len(),
    };
    Ok((file, report))
}

/// Replays the scenario's request trace against each design.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when the model is not a dense
/// transformer (check [`ScenarioSpec::servable`] first to skip
/// gracefully), the spec is ill-formed, or a step shape has no
/// feasible plan.
pub fn run_serve(spec: &ScenarioSpec) -> Result<ServeReport, SpecError> {
    run_serve_observed(spec, &Obs::null())
}

/// [`run_serve`] with an attached recorder: the flat-pool replay (and
/// the tenancy replay, when configured) record kernel spans, request
/// lanes, and `serve.*`/`tenancy.*` metrics onto `obs`.
///
/// # Errors
///
/// Same as [`run_serve`].
pub fn run_serve_observed(spec: &ScenarioSpec, obs: &Obs) -> Result<ServeReport, SpecError> {
    let system = spec.system.to_system()?;
    let model = spec.model.as_transformer()?;
    let shards = spec.workload.shards_for(&system)?;
    let sim_opts = spec.sim.to_options()?;
    let config = spec.serving.to_config(model.clone(), shards, sim_opts)?;
    let (trace, tenant_ids) = resolve_trace_with_tenants(spec)?;

    let mut sim = ServingSim::new(system.clone(), config.clone());
    sim.set_obs(obs.clone());
    let designs = spec
        .compiler
        .design
        .iter()
        .map(|&design| Ok(sim.run(design, &trace)?))
        .collect::<Result<Vec<_>, SpecError>>()?;

    let tenancy = match &spec.serving.tenants {
        Some(t) => {
            let mut engine = TenantServingSim::new(
                system,
                ClusterServeConfig {
                    model: model.clone(),
                    plan: ParallelismPlan::new(shards, 1, spec.serving.replicas as u64),
                    batch: config.batch,
                    slo: config.slo,
                    sim: sim_opts,
                    threads: spec.serving.threads,
                },
                t.to_config()?,
            )?;
            engine.set_obs(obs.clone());
            let mut rows = Vec::new();
            for &design in &spec.compiler.design {
                rows.push(engine.run(design, RouterPolicy::RoundRobin, &trace, &tenant_ids)?);
            }
            Some(rows)
        }
        None => None,
    };

    Ok(ServeReport {
        scenario: spec.name.clone(),
        model: model.name,
        requests: trace.len(),
        replicas: spec.serving.replicas,
        shards,
        designs,
        tenancy,
    })
}

/// Plans (or auto-searches) the scenario's multi-chip parallelism and
/// estimates the chosen plan; when the scenario's `cluster.serve` flag
/// is on (the default), also replays the serving trace across the
/// plan's replica groups once per design × router policy.
///
/// The scenario's `cluster` section is optional — a scenario without
/// one runs a full auto-parallelism search with defaults.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when the model is not a dense
/// transformer or the spec/plan is ill-formed, and [`SpecError::Compile`]
/// when a stage has no feasible on-chip plan.
pub fn run_cluster(spec: &ScenarioSpec) -> Result<ClusterRunReport, SpecError> {
    run_cluster_observed(spec, &Obs::null())
}

/// [`run_cluster`] with an attached recorder: every serving engine the
/// scenario exercises (colocated, autoscaled, disaggregated, tenancy)
/// records kernel spans, request lanes, and metrics onto `obs`.
///
/// # Errors
///
/// Same as [`run_cluster`].
pub fn run_cluster_observed(spec: &ScenarioSpec, obs: &Obs) -> Result<ClusterRunReport, SpecError> {
    let cluster = spec.cluster.clone().unwrap_or_default();
    let interconnect = cluster.to_interconnect()?;
    let system = spec
        .system
        .to_system()?
        .with_inter_chip_topology(interconnect);
    let model = spec.model.as_transformer()?;
    let workload = spec.workload.to_workload()?;
    let sim = spec.sim.to_options()?;
    let design = *spec
        .compiler
        .design
        .first()
        .expect("the design list is never empty (parse rejects it)");

    let estimator = ClusterEstimator::new(system.clone(), cluster.to_options()?);
    let (auto, candidates, estimate) = match cluster.to_plan() {
        Some(plan) => {
            let report = estimator.estimate(&model, workload, design, &sim, plan)?;
            (false, None, report)
        }
        None => {
            let outcome = estimator.search(&model, workload, design, &sim)?;
            (true, Some(outcome.candidates), outcome.best)
        }
    };

    let serving = if cluster.serve {
        Some(run_cluster_serving(
            spec, &cluster, &system, &estimate, &sim, obs,
        )?)
    } else {
        None
    };
    let autoscale = match (&cluster.autoscale, cluster.serve) {
        (Some(auto), true) => Some(run_cluster_autoscale(
            spec, &cluster, auto, &system, &estimate, &sim, obs,
        )?),
        _ => None,
    };
    let disagg = match (&cluster.disaggregate, cluster.serve) {
        (Some(d), true) => Some(run_cluster_disagg(spec, &cluster, d, &system, &sim, obs)?),
        _ => None,
    };
    let tenancy = match (&cluster.tenants, cluster.serve) {
        (Some(t), true) => Some(run_cluster_tenancy(
            spec, &cluster, t, &system, &estimate, &sim, obs,
        )?),
        _ => None,
    };

    Ok(ClusterRunReport {
        scenario: spec.name.clone(),
        system: system.chip.name.clone(),
        chips: system.chips,
        model: model.name.clone(),
        design,
        interconnect: interconnect.name().to_string(),
        auto,
        candidates,
        estimate,
        serving,
        autoscale,
        disagg,
        tenancy,
    })
}

/// The serving half of `elk cluster`: one routed replay per design ×
/// router policy, sharing one engine (and therefore one plan cache).
fn run_cluster_serving(
    spec: &ScenarioSpec,
    cluster: &ClusterSpec,
    system: &elk_hw::SystemConfig,
    estimate: &elk_cluster::ClusterReport,
    sim: &elk_sim::SimOptions,
    obs: &Obs,
) -> Result<Vec<elk_cluster::ClusterServingReport>, SpecError> {
    let model = spec.model.as_transformer()?;
    // Reuse the serving spec's validated batching/SLO conversion; the
    // replica/thread knobs it carries are the flat-pool ones and are
    // superseded by the cluster layout.
    let serve_cfg = spec
        .serving
        .to_config(model.clone(), estimate.plan.tp, *sim)?;
    let trace = resolve_trace(spec)?;

    let mut engine = ClusterServingSim::new(
        system.clone(),
        ClusterServeConfig {
            model,
            plan: estimate.plan,
            batch: serve_cfg.batch,
            slo: serve_cfg.slo,
            sim: *sim,
            threads: cluster.threads,
        },
    )?;
    engine.set_obs(obs.clone());
    let mut rows = Vec::new();
    for &design in &spec.compiler.design {
        for &policy in &cluster.router {
            rows.push(engine.run(design, policy, &trace)?);
        }
    }
    Ok(rows)
}

/// The autoscaled half of `elk cluster`: one elastic-fleet replay per
/// design, on `(tp, pp)` groups of the estimated plan.
#[allow(clippy::too_many_arguments)]
fn run_cluster_autoscale(
    spec: &ScenarioSpec,
    cluster: &ClusterSpec,
    auto: &crate::spec::AutoscaleSpec,
    system: &elk_hw::SystemConfig,
    estimate: &elk_cluster::ClusterReport,
    sim: &elk_sim::SimOptions,
    obs: &Obs,
) -> Result<Vec<elk_cluster::AutoscaleReport>, SpecError> {
    let model = spec.model.as_transformer()?;
    let serve_cfg = spec
        .serving
        .to_config(model.clone(), estimate.plan.tp, *sim)?;
    let trace = resolve_trace(spec)?;
    let mut engine = AutoscaleServingSim::new(
        system.clone(),
        ClusterServeConfig {
            model,
            plan: estimate.plan,
            batch: serve_cfg.batch,
            slo: serve_cfg.slo,
            sim: *sim,
            threads: cluster.threads,
        },
        auto.to_config()?,
    )?;
    engine.set_obs(obs.clone());
    let mut rows = Vec::new();
    for &design in &spec.compiler.design {
        rows.push(engine.run(design, &trace)?);
    }
    Ok(rows)
}

/// The multi-tenant half of `elk cluster`: one admission-controlled
/// replay per design × router policy, sharing one engine (and
/// therefore one plan cache across every class model).
#[allow(clippy::too_many_arguments)]
fn run_cluster_tenancy(
    spec: &ScenarioSpec,
    cluster: &ClusterSpec,
    tenants: &crate::spec::TenancySpec,
    system: &elk_hw::SystemConfig,
    estimate: &elk_cluster::ClusterReport,
    sim: &elk_sim::SimOptions,
    obs: &Obs,
) -> Result<Vec<elk_cluster::TenancyServingReport>, SpecError> {
    let model = spec.model.as_transformer()?;
    let serve_cfg = spec
        .serving
        .to_config(model.clone(), estimate.plan.tp, *sim)?;
    let (trace, tenant_ids) = resolve_trace_with_tenants(spec)?;
    let mut engine = TenantServingSim::new(
        system.clone(),
        ClusterServeConfig {
            model,
            plan: estimate.plan,
            batch: serve_cfg.batch,
            slo: serve_cfg.slo,
            sim: *sim,
            threads: cluster.threads,
        },
        tenants.to_config()?,
    )?;
    engine.set_obs(obs.clone());
    let mut rows = Vec::new();
    for &design in &spec.compiler.design {
        for &policy in &cluster.router {
            rows.push(engine.run(design, policy, &trace, &tenant_ids)?);
        }
    }
    Ok(rows)
}

/// The disaggregated half of `elk cluster`: one two-pool replay per
/// design × router policy, sharing one engine (and therefore one plan
/// cache across both pools).
fn run_cluster_disagg(
    spec: &ScenarioSpec,
    cluster: &ClusterSpec,
    disagg: &crate::spec::DisaggSpec,
    system: &elk_hw::SystemConfig,
    sim: &elk_sim::SimOptions,
    obs: &Obs,
) -> Result<Vec<elk_cluster::DisaggServingReport>, SpecError> {
    let model = spec.model.as_transformer()?;
    let (prefill, decode) = disagg.to_plans()?;
    let serve_cfg = spec.serving.to_config(model.clone(), prefill.tp, *sim)?;
    let trace = resolve_trace(spec)?;
    let mut engine = DisaggServingSim::new(
        system.clone(),
        DisaggConfig {
            batch: serve_cfg.batch,
            slo: serve_cfg.slo,
            sim: *sim,
            threads: cluster.threads,
            chunk_tokens: disagg.chunk_tokens,
            shared_chips: disagg.shared_chips,
            ..DisaggConfig::new(model, prefill, decode)
        },
    )?;
    engine.set_obs(obs.clone());
    let mut rows = Vec::new();
    for &design in &spec.compiler.design {
        for &policy in &cluster.router {
            rows.push(engine.run(design, policy, &trace)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_baselines::Design;

    fn tiny(extra: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&format!(
            r#"{{"name": "tiny", "model": {{"zoo": "llama13", "layers": 2}},
                "workload": {{"batch": 16, "seq_len": 512}}{extra}}}"#
        ))
        .expect("valid test scenario")
    }

    #[test]
    fn compile_runs_the_default_design() {
        let report = run_compile(&tiny("")).unwrap();
        assert_eq!(report.designs.len(), 1);
        let d = &report.designs[0];
        assert_eq!(d.design, Design::ElkFull);
        assert!(d.compile.is_some(), "Elk designs report compile stats");
        assert_eq!(d.report.capacity_violations, 0);
        assert!(d.report.total.as_millis() > 0.0);
        assert_eq!(report.shards, 4, "defaults to the pod's chip count");
    }

    #[test]
    fn simulate_reports_speedups_relative_to_basic() {
        let spec = tiny(r#", "compiler": {"design": ["basic", "elk_full"]}"#);
        let report = run_simulate(&spec).unwrap();
        assert_eq!(report.designs.len(), 2);
        let basic = &report.designs[0];
        let full = &report.designs[1];
        assert!((basic.speedup_vs_basic.unwrap() - 1.0).abs() < 1e-12);
        assert!(full.speedup_vs_basic.unwrap() >= 1.0, "Elk-Full >= Basic");
    }

    #[test]
    fn serve_completes_every_request() {
        let spec = tiny(r#", "serving": {"trace": {"requests": 6}}"#);
        let report = run_serve(&spec).unwrap();
        assert_eq!(report.requests, 6);
        assert_eq!(report.designs[0].completed, 6);
    }

    #[test]
    fn cluster_runs_a_fixed_plan_with_serving() {
        let spec = tiny(
            r#", "cluster": {"plan": {"tp": 2, "pp": 1, "dp": 2},
                             "router": ["round_robin", "least_outstanding"]},
                "serving": {"trace": {"requests": 5}}"#,
        );
        let report = run_cluster(&spec).unwrap();
        assert!(!report.auto);
        assert!(report.candidates.is_none());
        assert_eq!(
            report.estimate.plan,
            elk_cluster::ParallelismPlan::new(2, 1, 2)
        );
        let rows = report.serving.expect("serve defaults on");
        assert_eq!(rows.len(), 2, "one row per router policy");
        for row in &rows {
            assert_eq!(row.completed, 5);
        }
    }

    #[test]
    fn cluster_auto_search_lists_candidates() {
        let spec = tiny(r#", "cluster": {"serve": false}"#);
        let report = run_cluster(&spec).unwrap();
        assert!(report.auto);
        let candidates = report.candidates.expect("auto mode records the grid");
        assert!(candidates.len() >= 8);
        assert!(report.serving.is_none());
        assert!(report.estimate.scaling_efficiency.is_some());
    }

    #[test]
    fn cluster_rejects_non_transformer_models() {
        let spec =
            ScenarioSpec::from_json(r#"{"name": "moe", "model": {"zoo": "mixtral", "layers": 2}}"#)
                .unwrap();
        let e = run_cluster(&spec).unwrap_err().to_string();
        assert!(e.contains("dense transformer"), "{e}");
    }

    /// Like [`tiny`] but with a `workload.trace` source in place of the
    /// default steady-state workload.
    fn traced(workload_trace: &str, extra: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&format!(
            r#"{{"name": "traced", "model": {{"zoo": "llama13", "layers": 2}},
                "workload": {{"batch": 16, "seq_len": 512, "trace": {workload_trace}}}{extra}}}"#
        ))
        .expect("valid test scenario")
    }

    #[test]
    fn workload_trace_supersedes_the_serving_recipe() {
        let spec = traced(
            r#"{"generate": {"requests": 7,
                 "rate": {"Constant": {"rate_rps": 200.0}},
                 "prompt_len": {"Uniform": {"lo": 128, "hi": 256}},
                 "output_len": {"Fixed": 3}}}"#,
            r#", "serving": {"trace": {"requests": 99}}"#,
        );
        let report = run_serve(&spec).unwrap();
        assert_eq!(report.requests, 7, "the workload trace wins");
        assert_eq!(report.designs[0].completed, 7);
    }

    #[test]
    fn trace_gen_requires_a_generator_recipe() {
        let e = run_trace_gen(&tiny("")).unwrap_err().to_string();
        assert!(e.contains("workload.trace.generate"), "{e}");

        let spec = traced(r#"{"file": "nope.jsonl"}"#, "");
        let e = run_trace_gen(&spec).unwrap_err().to_string();
        assert!(e.contains("nope.jsonl"), "{e}");
        // And replaying a missing file names the path.
        let e = run_serve(&spec).unwrap_err().to_string();
        assert!(e.contains("nope.jsonl"), "{e}");
    }

    #[test]
    fn trace_gen_emits_a_parsable_file_and_summary() {
        let spec = traced(
            r#"{"generate": {"seed": 11, "requests": 12,
                 "rate": {"BurstTrain": {"base_rps": 50.0, "burst_rps": 400.0,
                                         "period_s": 1.0, "burst_s": 0.2}},
                 "output_len": {"HeavyTail": {"lo": 4, "alpha": 1.5, "cap": 64}},
                 "tenants": 2}}"#,
            "",
        );
        let (file, report) = run_trace_gen(&spec).unwrap();
        assert_eq!(report.requests, 12);
        assert_eq!(file.len(), 12);
        assert!(report.tenants >= 1 && report.tenants <= 2);
        assert!(report.duration_s >= 0.0);
        let reparsed = elk_trace::TraceFile::parse(&file.to_jsonl()).unwrap();
        assert_eq!(reparsed, file);
    }

    #[test]
    fn cluster_autoscale_section_adds_elastic_rows() {
        let spec = traced(
            r#"{"generate": {"requests": 24,
                 "rate": {"BurstTrain": {"base_rps": 20.0, "burst_rps": 2000.0,
                                         "period_s": 2.0, "burst_s": 0.5}},
                 "prompt_len": {"Uniform": {"lo": 128, "hi": 256}},
                 "output_len": {"Uniform": {"lo": 2, "hi": 6}}}}"#,
            r#", "cluster": {"plan": {"tp": 1, "pp": 1, "dp": 1},
                             "autoscale": {"min_groups": 1, "max_groups": 2,
                                           "interval_ms": 100.0,
                                           "up_queue_depth": 1.0}}"#,
        );
        let report = run_cluster(&spec).unwrap();
        let rows = report.autoscale.expect("autoscale section ran");
        assert_eq!(rows.len(), 1, "one row per design");
        let row = &rows[0];
        assert_eq!(row.completed, row.requests);
        assert_eq!(row.max_groups, 2);
        assert!(!row.transitions.is_empty());
        // The plain serving comparison still runs alongside.
        assert!(report.serving.is_some());
    }

    #[test]
    fn serve_tenants_section_adds_per_tenant_rows() {
        let spec = tiny(r#", "serving": {"trace": {"requests": 6}}"#);
        assert!(run_serve(&spec).unwrap().tenancy.is_none());

        let spec = tiny(
            r#", "serving": {"trace": {"requests": 6},
                 "tenants": {"classes": [{"name": "premium"},
                                         {"name": "bulk", "priority": 16}],
                             "map": {"t0": "premium"},
                             "default_class": "bulk"}}"#,
        );
        let report = run_serve(&spec).unwrap();
        let rows = report.tenancy.expect("tenants section ran");
        assert_eq!(rows.len(), report.designs.len(), "one row per design");
        let row = &rows[0];
        assert_eq!(row.admitted + row.rejected + row.deferred, 6);
        assert_eq!(row.base.completed, row.admitted + row.deferred);
        // The synthetic serving trace carries no tenant tags, so every
        // request lands on the default class under one "default" tenant.
        assert_eq!(row.tenants.len(), 1);
        assert_eq!(row.tenants[0].class, "bulk");
    }

    #[test]
    fn cluster_trivial_tenancy_base_matches_plain_serving_rows() {
        let serving = r#""serving": {"trace": {"requests": 5}}"#;
        let cluster = r#""cluster": {"plan": {"tp": 1, "pp": 1, "dp": 2},
                          "router": ["round_robin", "least_outstanding"]"#;
        let plain = tiny(&format!(", {cluster}}}, {serving}"));
        let trivial = tiny(&format!(
            r#", {cluster}, "tenants": {{"classes": [{{"name": "default"}}]}}}}, {serving}"#
        ));

        let plain = run_cluster(&plain).unwrap();
        assert!(plain.tenancy.is_none(), "no tenants section, no rows");
        let trivial = run_cluster(&trivial).unwrap();

        // A single permissive default class must not perturb the
        // simulation: each tenancy row's whole-run aggregate serializes
        // byte-identically to the plain serving row it shadows.
        let serving_rows = trivial.serving.as_ref().expect("serve defaults on");
        let tenancy_rows = trivial.tenancy.expect("tenants section ran");
        assert_eq!(tenancy_rows.len(), serving_rows.len());
        for (t, s) in tenancy_rows.iter().zip(serving_rows) {
            assert_eq!(t.admitted, 5, "a trivial class admits everything");
            assert_eq!(t.rejected + t.deferred, 0);
            assert_eq!(
                serde_json::to_string(&t.base).unwrap(),
                serde_json::to_string(s).unwrap(),
                "trivial tenancy must shadow the plain engine byte-for-byte"
            );
        }
        // And the plain rows themselves match the no-tenancy run.
        assert_eq!(
            serde_json::to_string(&plain.serving).unwrap(),
            serde_json::to_string(&trivial.serving).unwrap()
        );
    }

    #[test]
    fn serve_rejects_non_transformer_models() {
        let spec =
            ScenarioSpec::from_json(r#"{"name": "moe", "model": {"zoo": "mixtral", "layers": 2}}"#)
                .unwrap();
        assert!(!spec.servable());
        let e = run_serve(&spec).unwrap_err().to_string();
        assert!(e.contains("dense transformer"), "{e}");
    }
}
