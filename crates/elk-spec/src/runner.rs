//! Scenario runners: one function per `elk` CLI subcommand, shared by
//! the CLI, the sweep fan-out, and the test suite.
//!
//! Every runner goes through the exact engine entry points the
//! hardcoded-preset paths use ([`DesignRunner`], [`ServingSim`]), so a
//! scenario that names a preset produces byte-identical reports to the
//! equivalent non-spec run — the golden tests pin this.

use elk_baselines::DesignRunner;
use elk_serve::ServingSim;

use crate::report::{
    CompileReport, DesignCompileReport, DesignSimRow, ServeReport, SimulateReport,
};
use crate::spec::ScenarioSpec;
use crate::SpecError;

/// Compiles the scenario's designs and simulates each compiled program.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] for an ill-formed spec and
/// [`SpecError::Compile`] when a design has no feasible plan.
pub fn run_compile(spec: &ScenarioSpec) -> Result<CompileReport, SpecError> {
    let system = spec.system.to_system()?;
    let model = spec.model.resolve()?;
    let workload = spec.workload.to_workload()?;
    let shards = spec.workload.shards_for(&system)?;
    let sim = spec.sim.to_options()?;
    let graph = model.build(workload, shards);

    let runner = DesignRunner::new(system.clone()).with_threads(spec.compiler.threads);
    let catalog = runner.catalog(&graph)?;
    let designs = spec
        .compiler
        .design
        .iter()
        .map(|&design| {
            let out = runner.run(design, &graph, &catalog, &sim)?;
            Ok(DesignCompileReport {
                design,
                ops: out.program.op_count(),
                instrs: out.program.instrs.len(),
                estimate_total_ms: out.estimate.total.as_millis(),
                compile: out.stats.as_ref().map(Into::into),
                report: out.report,
            })
        })
        .collect::<Result<Vec<_>, SpecError>>()?;

    Ok(CompileReport {
        scenario: spec.name.clone(),
        system: system.chip.name.clone(),
        chips: system.chips,
        model: model.name().to_string(),
        workload,
        shards,
        designs,
    })
}

/// Runs the scenario's designs through the chip simulator and reports
/// the comparison table (the §6 figures' view).
///
/// # Errors
///
/// Same as [`run_compile`].
pub fn run_simulate(spec: &ScenarioSpec) -> Result<SimulateReport, SpecError> {
    let compiled = run_compile(spec)?;
    let basic_total = compiled
        .designs
        .iter()
        .find(|d| d.design == elk_baselines::Design::Basic)
        .map(|d| d.report.total);
    let designs = compiled
        .designs
        .iter()
        .map(|d| DesignSimRow {
            design: d.design,
            total_ms: d.report.total.as_millis(),
            speedup_vs_basic: basic_total.map(|b| b / d.report.total),
            buckets: d.report.buckets,
            hbm_util: d.report.hbm_util,
            noc_util: d.report.noc_util,
            achieved_tflops: d.report.achieved.as_tera(),
            overlap_fraction: d.report.overlap_fraction(),
            capacity_violations: d.report.capacity_violations,
        })
        .collect();
    Ok(SimulateReport {
        scenario: compiled.scenario,
        system: compiled.system,
        model: compiled.model,
        workload: compiled.workload,
        shards: compiled.shards,
        designs,
    })
}

/// Replays the scenario's request trace against each design.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] when the model is not a dense
/// transformer (check [`ScenarioSpec::servable`] first to skip
/// gracefully), the spec is ill-formed, or a step shape has no
/// feasible plan.
pub fn run_serve(spec: &ScenarioSpec) -> Result<ServeReport, SpecError> {
    let system = spec.system.to_system()?;
    let model = spec.model.as_transformer()?;
    let shards = spec.workload.shards_for(&system)?;
    let sim_opts = spec.sim.to_options()?;
    let config = spec.serving.to_config(model.clone(), shards, sim_opts)?;
    let trace = spec.serving.trace.to_config()?.generate();

    let mut sim = ServingSim::new(system, config);
    let designs = spec
        .compiler
        .design
        .iter()
        .map(|&design| Ok(sim.run(design, &trace)?))
        .collect::<Result<Vec<_>, SpecError>>()?;

    Ok(ServeReport {
        scenario: spec.name.clone(),
        model: model.name,
        requests: trace.len(),
        replicas: spec.serving.replicas,
        shards,
        designs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_baselines::Design;

    fn tiny(extra: &str) -> ScenarioSpec {
        ScenarioSpec::from_json(&format!(
            r#"{{"name": "tiny", "model": {{"zoo": "llama13", "layers": 2}},
                "workload": {{"batch": 16, "seq_len": 512}}{extra}}}"#
        ))
        .expect("valid test scenario")
    }

    #[test]
    fn compile_runs_the_default_design() {
        let report = run_compile(&tiny("")).unwrap();
        assert_eq!(report.designs.len(), 1);
        let d = &report.designs[0];
        assert_eq!(d.design, Design::ElkFull);
        assert!(d.compile.is_some(), "Elk designs report compile stats");
        assert_eq!(d.report.capacity_violations, 0);
        assert!(d.report.total.as_millis() > 0.0);
        assert_eq!(report.shards, 4, "defaults to the pod's chip count");
    }

    #[test]
    fn simulate_reports_speedups_relative_to_basic() {
        let spec = tiny(r#", "compiler": {"design": ["basic", "elk_full"]}"#);
        let report = run_simulate(&spec).unwrap();
        assert_eq!(report.designs.len(), 2);
        let basic = &report.designs[0];
        let full = &report.designs[1];
        assert!((basic.speedup_vs_basic.unwrap() - 1.0).abs() < 1e-12);
        assert!(full.speedup_vs_basic.unwrap() >= 1.0, "Elk-Full >= Basic");
    }

    #[test]
    fn serve_completes_every_request() {
        let spec = tiny(r#", "serving": {"trace": {"requests": 6}}"#);
        let report = run_serve(&spec).unwrap();
        assert_eq!(report.requests, 6);
        assert_eq!(report.designs[0].completed, 6);
    }

    #[test]
    fn serve_rejects_non_transformer_models() {
        let spec =
            ScenarioSpec::from_json(r#"{"name": "moe", "model": {"zoo": "mixtral", "layers": 2}}"#)
                .unwrap();
        assert!(!spec.servable());
        let e = run_serve(&spec).unwrap_err().to_string();
        assert!(e.contains("dense transformer"), "{e}");
    }
}
