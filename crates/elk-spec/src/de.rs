//! Strict, default-aware field reading over the vendored serde
//! [`Value`] tree.
//!
//! The derive-generated `Deserialize` impls in the serde shim require
//! every field to be present and silently ignore unknown keys — the
//! wrong trade-off for hand-authored scenario files, where most fields
//! should default and a typo should be an error. [`MapReader`] inverts
//! both: fields read through [`MapReader::or`] fall back to a default
//! when absent, and [`MapReader::finish`] rejects any key the reader
//! never consumed.

use serde::{Deserialize, Error, Value};

/// Cursor over one JSON object: typed field access plus unknown-key
/// rejection.
#[derive(Debug)]
pub(crate) struct MapReader<'a> {
    ty: &'static str,
    entries: &'a [(String, Value)],
    taken: Vec<bool>,
}

impl<'a> MapReader<'a> {
    /// Wraps `v`, which must be a JSON object without duplicate keys
    /// (a duplicate is always an authoring mistake, and different
    /// consumers — this reader, the derive shim, `sweep::set_path` —
    /// could otherwise disagree on which occurrence wins).
    pub fn new(ty: &'static str, v: &'a Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                for (i, (k, _)) in entries.iter().enumerate() {
                    if entries[..i].iter().any(|(prev, _)| prev == k) {
                        return Err(Error::msg(format!("{ty}: duplicate key `{k}`")));
                    }
                }
                Ok(MapReader {
                    ty,
                    entries,
                    taken: vec![false; entries.len()],
                })
            }
            other => Err(Error::msg(format!(
                "{ty}: expected a JSON object, found {}",
                other.kind()
            ))),
        }
    }

    /// Marks `key` consumed and returns its value.
    pub fn raw(&mut self, key: &str) -> Option<&'a Value> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        self.taken[pos] = true;
        Some(&self.entries[pos].1)
    }

    /// `true` if the object has `key` (without consuming it).
    pub fn has(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Reads a required field.
    pub fn req<T: Deserialize>(&mut self, key: &str) -> Result<T, Error> {
        let ty = self.ty;
        match self.raw(key) {
            Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("{ty}.{key}: {e}"))),
            None => Err(Error::msg(format!("{ty}: missing required field `{key}`"))),
        }
    }

    /// Reads an optional field (`None` when absent or JSON `null`).
    pub fn opt<T: Deserialize>(&mut self, key: &str) -> Result<Option<T>, Error> {
        let ty = self.ty;
        match self.raw(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => T::from_value(v)
                .map(Some)
                .map_err(|e| Error::msg(format!("{ty}.{key}: {e}"))),
        }
    }

    /// Reads a field, falling back to `default` when absent.
    pub fn or<T: Deserialize>(&mut self, key: &str, default: T) -> Result<T, Error> {
        Ok(self.opt(key)?.unwrap_or(default))
    }

    /// Reads a field, falling back to `default()` when absent.
    pub fn or_else<T: Deserialize>(
        &mut self,
        key: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        Ok(self.opt(key)?.unwrap_or_else(default))
    }

    /// Rejects any key no reader call consumed — the typo guard.
    pub fn finish(self) -> Result<(), Error> {
        let unknown: Vec<&str> = self
            .entries
            .iter()
            .zip(&self.taken)
            .filter(|(_, &taken)| !taken)
            .map(|((k, _), _)| k.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "{}: unknown field(s) `{}`",
                self.ty,
                unknown.join("`, `")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(json: &str) -> Value {
        serde_json::from_str(json).expect("valid test JSON")
    }

    #[test]
    fn defaults_and_required_fields() {
        let v = obj(r#"{"a": 3}"#);
        let mut r = MapReader::new("T", &v).unwrap();
        assert_eq!(r.req::<u64>("a").unwrap(), 3);
        assert_eq!(r.or("b", 7u64).unwrap(), 7);
        r.finish().unwrap();
    }

    #[test]
    fn missing_required_field_names_the_type() {
        let v = obj("{}");
        let mut r = MapReader::new("T", &v).unwrap();
        let e = r.req::<u64>("a").unwrap_err().to_string();
        assert!(e.contains("T") && e.contains("`a`"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let v = obj(r#"{"a": 1, "tpyo": 2}"#);
        let mut r = MapReader::new("T", &v).unwrap();
        let _ = r.or("a", 0u64).unwrap();
        let e = r.finish().unwrap_err().to_string();
        assert!(e.contains("tpyo"), "{e}");
    }

    #[test]
    fn null_reads_as_absent() {
        let v = obj(r#"{"a": null}"#);
        let mut r = MapReader::new("T", &v).unwrap();
        assert_eq!(r.or("a", 5u64).unwrap(), 5);
        r.finish().unwrap();
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        let e = MapReader::new("T", &v).unwrap_err().to_string();
        assert!(e.contains("duplicate key `a`"), "{e}");
    }
}
