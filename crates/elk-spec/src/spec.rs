//! The scenario schema: serde-backed spec types mirroring the engine's
//! configuration surface in hand-authorable JSON.
//!
//! Every section except `name` and `model` is optional and defaults to
//! the paper's evaluation setup (§6.1), so the smallest valid scenario
//! is:
//!
//! ```json
//! { "name": "smallest", "model": { "zoo": "llama13" } }
//! ```
//!
//! Unknown keys anywhere in the spec are parse errors (see the
//! crate-private `de` module's `MapReader`), so a typo'd knob never
//! silently runs with defaults.

use serde::{Deserialize, Error, Serialize, Value};

use elk_baselines::Design;
use elk_model::Phase;
use elk_serve::{ArrivalProcess, LengthDist, RouterPolicy};
use elk_trace::{LengthModel, RateShape};

use crate::de::MapReader;
use crate::SpecError;

/// One fully-described experiment: chip, model, workload, compiler,
/// simulator, and serving configuration, plus an optional sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name — the stem of every report file it produces.
    pub name: String,
    /// Target system (preset or custom chip description).
    pub system: SystemSpec,
    /// Model under test.
    pub model: ModelSpec,
    /// Steady-state workload for `compile` / `simulate`.
    pub workload: WorkloadSpec,
    /// Compiler options: designs to run and worker threads.
    pub compiler: CompilerSpec,
    /// Chip-simulator options.
    pub sim: SimSpec,
    /// Request-level serving configuration for `serve`.
    pub serving: ServingSpec,
    /// Deterministic observability: timeline/metrics export knobs.
    pub observe: ObserveSpec,
    /// Optional multi-chip parallelism section for `elk cluster`.
    pub cluster: Option<ClusterSpec>,
    /// Optional sweep grid for `elk sweep`.
    pub sweep: Option<SweepSpec>,
}

impl ScenarioSpec {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON, a missing
    /// required field, an unknown key, or a type mismatch.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        serde_json::from_str(json).map_err(SpecError::from)
    }

    /// Renders the spec as canonical pretty JSON (all fields explicit).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("scenario", v)?;
        let name: String = r.req("name")?;
        if name.trim().is_empty() {
            return Err(Error::msg(
                "scenario: `name` must be non-empty (it is the report-file stem)",
            ));
        }
        let spec = ScenarioSpec {
            name,
            system: r.or_else("system", SystemSpec::default)?,
            model: r.req("model")?,
            workload: r.or_else("workload", WorkloadSpec::default)?,
            compiler: r.or_else("compiler", CompilerSpec::default)?,
            sim: r.or_else("sim", SimSpec::default)?,
            serving: r.or_else("serving", ServingSpec::default)?,
            observe: r.or_else("observe", ObserveSpec::default)?,
            cluster: r.opt("cluster")?,
            sweep: r.opt("sweep")?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("name".into(), self.name.to_value()),
            ("system".into(), self.system.to_value()),
            ("model".into(), self.model.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("compiler".into(), self.compiler.to_value()),
            ("sim".into(), self.sim.to_value()),
            ("serving".into(), self.serving.to_value()),
            ("observe".into(), self.observe.to_value()),
        ];
        if let Some(cluster) = &self.cluster {
            m.push(("cluster".into(), cluster.to_value()));
        }
        if let Some(sweep) = &self.sweep {
            m.push(("sweep".into(), sweep.to_value()));
        }
        Value::Map(m)
    }
}

// ---- system ----

/// Target system: a named preset or an explicit chip/pod description.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemSpec {
    /// One of the paper's evaluation platforms by name
    /// (`ipu_pod4`, `ipu_pod4_mesh`, `single_chip`).
    Preset(String),
    /// A custom design point — the design-space-exploration path.
    Custom {
        /// Chip description.
        chip: ChipSpec,
        /// Chips in the pod.
        chips: u64,
        /// Per-chip HBM.
        hbm: HbmSpec,
        /// Aggregate inter-chip bandwidth in GiB/s.
        inter_chip_bw_gib_s: f64,
    },
}

impl Default for SystemSpec {
    /// The paper's default platform, `ipu_pod4`.
    fn default() -> Self {
        SystemSpec::Preset("ipu_pod4".into())
    }
}

impl Deserialize for SystemSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("system", v)?;
        let spec = if r.has("preset") {
            SystemSpec::Preset(r.req("preset")?)
        } else {
            SystemSpec::Custom {
                chip: r.req("chip")?,
                chips: r.or("chips", 4)?,
                hbm: r.or_else("hbm", HbmSpec::default)?,
                inter_chip_bw_gib_s: r.or("inter_chip_bw_gib_s", 640.0)?,
            }
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SystemSpec {
    fn to_value(&self) -> Value {
        match self {
            SystemSpec::Preset(name) => Value::Map(vec![("preset".into(), name.to_value())]),
            SystemSpec::Custom {
                chip,
                chips,
                hbm,
                inter_chip_bw_gib_s,
            } => Value::Map(vec![
                ("chip".into(), chip.to_value()),
                ("chips".into(), chips.to_value()),
                ("hbm".into(), hbm.to_value()),
                ("inter_chip_bw_gib_s".into(), inter_chip_bw_gib_s.to_value()),
            ]),
        }
    }
}

/// One custom ICCA chip. Compute rates are whole-chip numbers (the
/// paper quotes per-chip TFLOPS); per-core rates are derived by
/// dividing by `cores`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Chip name for reports.
    pub name: String,
    /// Core count.
    pub cores: u64,
    /// Scratchpad SRAM per core, in KiB.
    pub sram_per_core_kib: u64,
    /// Reserved inter-core transfer buffer per core, in KiB.
    pub io_buffer_per_core_kib: u64,
    /// Whole-chip peak MatMul throughput, in TFLOPS.
    pub matmul_tflops: f64,
    /// Whole-chip peak vector throughput, in TFLOPS.
    pub vector_tflops: f64,
    /// Local SRAM port bandwidth per core, in decimal GB/s.
    pub sram_bw_gb_s: f64,
    /// `"blocking"` (IPU-style) or `"concurrent"` SRAM arbitration.
    pub sram_contention: String,
    /// On-chip interconnect.
    pub topology: TopologySpec,
}

impl Deserialize for ChipSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("chip", v)?;
        let spec = ChipSpec {
            name: r.or_else("name", || "custom".to_string())?,
            cores: r.req("cores")?,
            sram_per_core_kib: r.or("sram_per_core_kib", 624)?,
            io_buffer_per_core_kib: r.or("io_buffer_per_core_kib", 8)?,
            matmul_tflops: r.req("matmul_tflops")?,
            vector_tflops: r.req("vector_tflops")?,
            sram_bw_gb_s: r.or("sram_bw_gb_s", 21.3)?,
            sram_contention: r.or_else("sram_contention", || "blocking".to_string())?,
            topology: r.or_else("topology", TopologySpec::default)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for ChipSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), self.name.to_value()),
            ("cores".into(), self.cores.to_value()),
            (
                "sram_per_core_kib".into(),
                self.sram_per_core_kib.to_value(),
            ),
            (
                "io_buffer_per_core_kib".into(),
                self.io_buffer_per_core_kib.to_value(),
            ),
            ("matmul_tflops".into(), self.matmul_tflops.to_value()),
            ("vector_tflops".into(), self.vector_tflops.to_value()),
            ("sram_bw_gb_s".into(), self.sram_bw_gb_s.to_value()),
            ("sram_contention".into(), self.sram_contention.to_value()),
            ("topology".into(), self.topology.to_value()),
        ])
    }
}

/// On-chip interconnect spec.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Non-blocking all-to-all exchange with the given per-core link
    /// bandwidth in GiB/s (IPU MK2: 5.5).
    AllToAll {
        /// Per-core link bandwidth in GiB/s.
        core_link_gib_s: f64,
    },
    /// Near-square 2D mesh provisioned to the given aggregate bandwidth
    /// in GiB/s.
    Mesh {
        /// Aggregate interconnect bandwidth in GiB/s.
        total_gib_s: f64,
    },
}

impl Default for TopologySpec {
    /// IPU MK2's 5.5 GiB/s per-core all-to-all exchange.
    fn default() -> Self {
        TopologySpec::AllToAll {
            core_link_gib_s: 5.5,
        }
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("topology", v)?;
        let spec = if r.has("all_to_all") {
            let body = r.raw("all_to_all").expect("checked by has");
            let mut b = MapReader::new("topology.all_to_all", body)?;
            let t = TopologySpec::AllToAll {
                core_link_gib_s: b.or("core_link_gib_s", 5.5)?,
            };
            b.finish()?;
            t
        } else if r.has("mesh") {
            let body = r.raw("mesh").expect("checked by has");
            let mut b = MapReader::new("topology.mesh", body)?;
            let t = TopologySpec::Mesh {
                total_gib_s: b.req("total_gib_s")?,
            };
            b.finish()?;
            t
        } else {
            return Err(Error::msg(
                "topology: expected an `all_to_all` or `mesh` object",
            ));
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        match self {
            TopologySpec::AllToAll { core_link_gib_s } => Value::Map(vec![(
                "all_to_all".into(),
                Value::Map(vec![("core_link_gib_s".into(), core_link_gib_s.to_value())]),
            )]),
            TopologySpec::Mesh { total_gib_s } => Value::Map(vec![(
                "mesh".into(),
                Value::Map(vec![("total_gib_s".into(), total_gib_s.to_value())]),
            )]),
        }
    }
}

/// Per-chip HBM spec.
#[derive(Debug, Clone, PartialEq)]
pub struct HbmSpec {
    /// HBM channels (controller nodes) per chip.
    pub channels: u64,
    /// Sustained bandwidth per channel in GiB/s.
    pub channel_bw_gib_s: f64,
    /// Per-chip capacity in GiB (the cluster planner's HBM-feasibility
    /// bound).
    pub capacity_gib: u64,
}

impl Default for HbmSpec {
    /// The paper's emulated platform: 4 HBM3E channels at 1 TiB/s each,
    /// 96 GiB per chip.
    fn default() -> Self {
        HbmSpec {
            channels: 4,
            channel_bw_gib_s: 1024.0,
            capacity_gib: 96,
        }
    }
}

impl Deserialize for HbmSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("hbm", v)?;
        let spec = HbmSpec {
            channels: r.or("channels", 4)?,
            channel_bw_gib_s: r.or("channel_bw_gib_s", 1024.0)?,
            capacity_gib: r.or("capacity_gib", 96)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for HbmSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("channels".into(), self.channels.to_value()),
            ("channel_bw_gib_s".into(), self.channel_bw_gib_s.to_value()),
            ("capacity_gib".into(), self.capacity_gib.to_value()),
        ])
    }
}

// ---- model ----

/// Model under test: a zoo name (with an optional depth override for
/// quick runs) or explicit architecture hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A model from [`elk_model::zoo`] by CLI alias (`llama13`,
    /// `gemma27`, `opt30`, `llama70`, `mixtral`, `dit`).
    Zoo {
        /// The alias.
        zoo: String,
        /// Optional layer-count override (doctest-sized runs).
        layers: Option<u32>,
    },
    /// Explicit dense-transformer hyper-parameters.
    Transformer(elk_model::TransformerConfig),
    /// Explicit mixture-of-experts hyper-parameters.
    Moe(elk_model::moe::MoeConfig),
    /// Explicit diffusion-transformer hyper-parameters.
    Dit(elk_model::dit::DitConfig),
}

/// Strict reader for an explicit transformer body: the derive shim's
/// `Deserialize` would silently ignore unknown keys, so the spec layer
/// reads every engine config field by hand and rejects the rest.
fn parse_transformer(v: &Value) -> Result<elk_model::TransformerConfig, Error> {
    let mut r = MapReader::new("model.transformer", v)?;
    let cfg = elk_model::TransformerConfig {
        name: r.req("name")?,
        layers: r.req("layers")?,
        hidden: r.req("hidden")?,
        heads: r.req("heads")?,
        kv_heads: r.req("kv_heads")?,
        head_dim: r.req("head_dim")?,
        intermediate: r.req("intermediate")?,
        vocab: r.req("vocab")?,
        glu: r.req("glu")?,
        norm: r.req("norm")?,
        rope: r.req("rope")?,
        post_norms: r.req("post_norms")?,
    };
    r.finish()?;
    Ok(cfg)
}

/// Strict reader for an explicit MoE body (see [`parse_transformer`]).
fn parse_moe(v: &Value) -> Result<elk_model::moe::MoeConfig, Error> {
    let mut r = MapReader::new("model.moe", v)?;
    let cfg = elk_model::moe::MoeConfig {
        name: r.req("name")?,
        layers: r.req("layers")?,
        hidden: r.req("hidden")?,
        heads: r.req("heads")?,
        kv_heads: r.req("kv_heads")?,
        head_dim: r.req("head_dim")?,
        expert_intermediate: r.req("expert_intermediate")?,
        experts: r.req("experts")?,
        experts_per_token: r.req("experts_per_token")?,
        vocab: r.req("vocab")?,
    };
    r.finish()?;
    Ok(cfg)
}

/// Strict reader for an explicit DiT body (see [`parse_transformer`]).
fn parse_dit(v: &Value) -> Result<elk_model::dit::DitConfig, Error> {
    let mut r = MapReader::new("model.dit", v)?;
    let cfg = elk_model::dit::DitConfig {
        name: r.req("name")?,
        layers: r.req("layers")?,
        hidden: r.req("hidden")?,
        heads: r.req("heads")?,
        head_dim: r.req("head_dim")?,
        mlp_ratio: r.req("mlp_ratio")?,
        tokens: r.req("tokens")?,
    };
    r.finish()?;
    Ok(cfg)
}

impl Deserialize for ModelSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("model", v)?;
        let spec = if r.has("zoo") {
            ModelSpec::Zoo {
                zoo: r.req("zoo")?,
                layers: r.opt("layers")?,
            }
        } else if let Some(body) = r.raw("transformer") {
            ModelSpec::Transformer(parse_transformer(body)?)
        } else if let Some(body) = r.raw("moe") {
            ModelSpec::Moe(parse_moe(body)?)
        } else if let Some(body) = r.raw("dit") {
            ModelSpec::Dit(parse_dit(body)?)
        } else {
            return Err(Error::msg(
                "model: expected one of `zoo`, `transformer`, `moe`, `dit`",
            ));
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for ModelSpec {
    fn to_value(&self) -> Value {
        match self {
            ModelSpec::Zoo { zoo, layers } => {
                let mut m = vec![("zoo".into(), zoo.to_value())];
                if let Some(layers) = layers {
                    m.push(("layers".into(), layers.to_value()));
                }
                Value::Map(m)
            }
            ModelSpec::Transformer(cfg) => Value::Map(vec![("transformer".into(), cfg.to_value())]),
            ModelSpec::Moe(cfg) => Value::Map(vec![("moe".into(), cfg.to_value())]),
            ModelSpec::Dit(cfg) => Value::Map(vec![("dit".into(), cfg.to_value())]),
        }
    }
}

// ---- workload ----

/// Steady-state workload for `compile` / `simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// `"decode"`, `"prefill"`, or `"training_forward"`.
    pub phase: Phase,
    /// Requests per batch.
    pub batch: u64,
    /// Context length.
    pub seq_len: u64,
    /// Tensor-parallel shard count; defaults to the system's chip count.
    pub shards: Option<u64>,
    /// Request trace for replay commands (`serve`, `cluster`,
    /// `trace gen`): a recorded `elk-trace` file or a seeded generator.
    /// When set it supersedes `serving.trace`, so recorded and
    /// synthetic traces flow through one path.
    pub trace: Option<TraceSourceSpec>,
}

impl Default for WorkloadSpec {
    /// The paper's default serving workload: decode, batch 32, seq 2048.
    fn default() -> Self {
        WorkloadSpec {
            phase: Phase::Decode,
            batch: 32,
            seq_len: 2048,
            shards: None,
            trace: None,
        }
    }
}

/// Where a replayed request trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSourceSpec {
    /// A recorded `elk-trace` JSONL file (versioned header + one record
    /// per line), resolved relative to the working directory.
    File(String),
    /// A seeded production-shaped generator, emitted in the same format.
    Generate(TraceGenSpec),
}

impl Deserialize for TraceSourceSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("workload.trace", v)?;
        let spec = if r.has("file") {
            TraceSourceSpec::File(r.req("file")?)
        } else if r.has("generate") {
            TraceSourceSpec::Generate(r.req("generate")?)
        } else {
            return Err(Error::msg(
                "workload.trace: expected a `file` or `generate` key",
            ));
        };
        r.finish()?;
        match &spec {
            TraceSourceSpec::File(path) if path.trim().is_empty() => {
                Err(Error::msg("workload.trace.file: path must be non-empty"))
            }
            _ => Ok(spec),
        }
    }
}

impl Serialize for TraceSourceSpec {
    fn to_value(&self) -> Value {
        match self {
            TraceSourceSpec::File(path) => Value::Map(vec![("file".into(), path.to_value())]),
            TraceSourceSpec::Generate(g) => Value::Map(vec![("generate".into(), g.to_value())]),
        }
    }
}

/// Seeded trace-generator recipe (mirrors [`elk_trace::TraceGenConfig`]).
///
/// `rate` takes the [`RateShape`] variants as externally-tagged objects
/// — `{"Constant": {"rate_rps": 100.0}}`, `{"Diurnal": {...}}`,
/// `{"BurstTrain": {...}}` — and the length models take
/// `{"Fixed": n}`, `{"Uniform": {...}}`, or `{"HeavyTail": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenSpec {
    /// RNG seed.
    pub seed: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Arrival-rate shape over time.
    pub rate: RateShape,
    /// Prompt-length model.
    pub prompt_len: LengthModel,
    /// Output-length model.
    pub output_len: LengthModel,
    /// Distinct tenant ids to stamp on records (0 = untagged).
    pub tenants: u64,
}

/// Strict reader for the externally-tagged [`RateShape`] form; an
/// unknown variant or stray knob is an error instead of silently
/// ignored (see `parse_arrivals`).
fn parse_rate(v: &Value) -> Result<RateShape, Error> {
    let mut r = MapReader::new("rate", v)?;
    let rate = if let Some(body) = r.raw("Constant") {
        let mut b = MapReader::new("rate.Constant", body)?;
        let shape = RateShape::Constant {
            rate_rps: b.req("rate_rps")?,
        };
        b.finish()?;
        shape
    } else if let Some(body) = r.raw("Diurnal") {
        let mut b = MapReader::new("rate.Diurnal", body)?;
        let shape = RateShape::Diurnal {
            mean_rps: b.req("mean_rps")?,
            amplitude: b.req("amplitude")?,
            period_s: b.req("period_s")?,
        };
        b.finish()?;
        shape
    } else if let Some(body) = r.raw("BurstTrain") {
        let mut b = MapReader::new("rate.BurstTrain", body)?;
        let shape = RateShape::BurstTrain {
            base_rps: b.req("base_rps")?,
            burst_rps: b.req("burst_rps")?,
            period_s: b.req("period_s")?,
            burst_s: b.req("burst_s")?,
        };
        b.finish()?;
        shape
    } else {
        return Err(Error::msg(
            "rate: expected a `Constant`, `Diurnal`, or `BurstTrain` object",
        ));
    };
    r.finish()?;
    Ok(rate)
}

/// Strict reader for the externally-tagged [`LengthModel`] form; see
/// [`parse_rate`].
fn parse_length_model(what: &'static str, v: &Value) -> Result<LengthModel, Error> {
    let mut r = MapReader::new(what, v)?;
    let model = if let Some(body) = r.raw("Fixed") {
        LengthModel::Fixed {
            tokens: u64::from_value(body).map_err(|e| Error::msg(format!("{what}.Fixed: {e}")))?,
        }
    } else if let Some(body) = r.raw("Uniform") {
        let mut b = MapReader::new("Uniform", body)?;
        let m = LengthModel::Uniform {
            lo: b.req("lo")?,
            hi: b.req("hi")?,
        };
        b.finish()?;
        m
    } else if let Some(body) = r.raw("HeavyTail") {
        let mut b = MapReader::new("HeavyTail", body)?;
        let m = LengthModel::HeavyTail {
            lo: b.req("lo")?,
            alpha: b.req("alpha")?,
            cap: b.req("cap")?,
        };
        b.finish()?;
        m
    } else {
        return Err(Error::msg(format!(
            "{what}: expected a `Fixed`, `Uniform`, or `HeavyTail` object"
        )));
    };
    r.finish()?;
    Ok(model)
}

/// Canonical serialization of one length model.
fn length_model_to_value(model: &LengthModel) -> Value {
    match *model {
        LengthModel::Fixed { tokens } => Value::Map(vec![("Fixed".into(), tokens.to_value())]),
        LengthModel::Uniform { lo, hi } => Value::Map(vec![(
            "Uniform".into(),
            Value::Map(vec![
                ("lo".into(), lo.to_value()),
                ("hi".into(), hi.to_value()),
            ]),
        )]),
        LengthModel::HeavyTail { lo, alpha, cap } => Value::Map(vec![(
            "HeavyTail".into(),
            Value::Map(vec![
                ("lo".into(), lo.to_value()),
                ("alpha".into(), alpha.to_value()),
                ("cap".into(), cap.to_value()),
            ]),
        )]),
    }
}

/// Canonical serialization of one rate shape.
fn rate_to_value(rate: &RateShape) -> Value {
    match *rate {
        RateShape::Constant { rate_rps } => Value::Map(vec![(
            "Constant".into(),
            Value::Map(vec![("rate_rps".into(), rate_rps.to_value())]),
        )]),
        RateShape::Diurnal {
            mean_rps,
            amplitude,
            period_s,
        } => Value::Map(vec![(
            "Diurnal".into(),
            Value::Map(vec![
                ("mean_rps".into(), mean_rps.to_value()),
                ("amplitude".into(), amplitude.to_value()),
                ("period_s".into(), period_s.to_value()),
            ]),
        )]),
        RateShape::BurstTrain {
            base_rps,
            burst_rps,
            period_s,
            burst_s,
        } => Value::Map(vec![(
            "BurstTrain".into(),
            Value::Map(vec![
                ("base_rps".into(), base_rps.to_value()),
                ("burst_rps".into(), burst_rps.to_value()),
                ("period_s".into(), period_s.to_value()),
                ("burst_s".into(), burst_s.to_value()),
            ]),
        )]),
    }
}

impl Deserialize for TraceGenSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = elk_trace::TraceGenConfig::default();
        let mut r = MapReader::new("workload.trace.generate", v)?;
        let rate = match r.raw("rate") {
            None | Some(Value::Null) => d.rate,
            Some(body) => parse_rate(body)?,
        };
        let prompt_len = match r.raw("prompt_len") {
            None | Some(Value::Null) => d.prompt_len,
            Some(body) => parse_length_model("prompt_len", body)?,
        };
        let output_len = match r.raw("output_len") {
            None | Some(Value::Null) => d.output_len,
            Some(body) => parse_length_model("output_len", body)?,
        };
        let spec = TraceGenSpec {
            seed: r.or("seed", d.seed)?,
            requests: r.or("requests", d.requests)?,
            rate,
            prompt_len,
            output_len,
            tenants: r.or("tenants", d.tenants)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for TraceGenSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("seed".into(), self.seed.to_value()),
            ("requests".into(), self.requests.to_value()),
            ("rate".into(), rate_to_value(&self.rate)),
            ("prompt_len".into(), length_model_to_value(&self.prompt_len)),
            ("output_len".into(), length_model_to_value(&self.output_len)),
            ("tenants".into(), self.tenants.to_value()),
        ])
    }
}

/// Parses a lowercase phase name.
fn parse_phase(name: &str) -> Result<Phase, Error> {
    match name {
        "decode" => Ok(Phase::Decode),
        "prefill" => Ok(Phase::Prefill),
        "training_forward" => Ok(Phase::TrainingForward),
        other => Err(Error::msg(format!(
            "unknown phase '{other}': expected decode, prefill, training_forward"
        ))),
    }
}

/// Canonical lowercase phase name.
#[must_use]
pub fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Decode => "decode",
        Phase::Prefill => "prefill",
        Phase::TrainingForward => "training_forward",
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("workload", v)?;
        let phase = match r.opt::<String>("phase")? {
            Some(name) => parse_phase(&name)?,
            None => Phase::Decode,
        };
        let spec = WorkloadSpec {
            phase,
            batch: r.or("batch", 32)?,
            seq_len: r.or("seq_len", 2048)?,
            shards: r.opt("shards")?,
            trace: r.opt("trace")?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("phase".into(), phase_name(self.phase).to_value()),
            ("batch".into(), self.batch.to_value()),
            ("seq_len".into(), self.seq_len.to_value()),
        ];
        if let Some(shards) = self.shards {
            m.push(("shards".into(), shards.to_value()));
        }
        if let Some(trace) = &self.trace {
            m.push(("trace".into(), trace.to_value()));
        }
        Value::Map(m)
    }
}

// ---- compiler ----

/// Compiler options: designs to run and worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerSpec {
    /// Designs to compile, in run order. The JSON accepts a single
    /// name, `"all"`, or an array of names.
    pub design: Vec<Design>,
    /// Worker threads for catalog construction and order search
    /// (`0` = all available cores). Outputs are byte-identical at any
    /// setting.
    pub threads: usize,
}

impl Default for CompilerSpec {
    /// Full Elk on one worker thread.
    fn default() -> Self {
        CompilerSpec {
            design: vec![Design::ElkFull],
            threads: 1,
        }
    }
}

/// Parses a lowercase design name.
fn parse_design(name: &str) -> Result<Design, Error> {
    match name {
        "basic" => Ok(Design::Basic),
        "static" => Ok(Design::Static),
        "elk_dyn" => Ok(Design::ElkDyn),
        "elk_full" => Ok(Design::ElkFull),
        "ideal" => Ok(Design::Ideal),
        other => Err(Error::msg(format!(
            "unknown design '{other}': expected basic, static, elk_dyn, elk_full, ideal, or all"
        ))),
    }
}

/// Canonical lowercase design name.
#[must_use]
pub fn design_name(design: Design) -> &'static str {
    match design {
        Design::Basic => "basic",
        Design::Static => "static",
        Design::ElkDyn => "elk_dyn",
        Design::ElkFull => "elk_full",
        Design::Ideal => "ideal",
    }
}

/// Parses the `design` key: one name, `"all"`, or an array of names.
fn parse_designs(v: &Value) -> Result<Vec<Design>, Error> {
    let names: Vec<String> = match v {
        Value::Str(s) if s == "all" => return Ok(Design::ALL.to_vec()),
        Value::Str(s) => vec![s.clone()],
        Value::Seq(_) => Vec::<String>::from_value(v)?,
        other => {
            return Err(Error::msg(format!(
                "design: expected a name or an array of names, found {}",
                other.kind()
            )))
        }
    };
    if names.is_empty() {
        return Err(Error::msg("design: the list must not be empty"));
    }
    names.iter().map(|n| parse_design(n)).collect()
}

impl Deserialize for CompilerSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("compiler", v)?;
        let design = match r.raw("design") {
            Some(v) => parse_designs(v).map_err(|e| Error::msg(format!("compiler.{e}")))?,
            None => vec![Design::ElkFull],
        };
        let spec = CompilerSpec {
            design,
            threads: r.or("threads", 1)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for CompilerSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "design".into(),
                Value::Seq(
                    self.design
                        .iter()
                        .map(|&d| design_name(d).to_value())
                        .collect(),
                ),
            ),
            ("threads".into(), self.threads.to_value()),
        ])
    }
}

// ---- simulator ----

/// Chip-simulator options (mirrors [`elk_sim::SimOptions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Relative magnitude of the deterministic timing noise.
    pub noise_sigma: f64,
    /// Timing-noise seed.
    pub noise_seed: u64,
    /// Bandwidth-trace samples (0 = no trace).
    pub trace_samples: usize,
}

impl Default for SimSpec {
    fn default() -> Self {
        let d = elk_sim::SimOptions::default();
        SimSpec {
            noise_sigma: d.noise_sigma,
            noise_seed: d.noise_seed,
            trace_samples: d.trace_samples,
        }
    }
}

impl Deserialize for SimSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = SimSpec::default();
        let mut r = MapReader::new("sim", v)?;
        let spec = SimSpec {
            noise_sigma: r.or("noise_sigma", d.noise_sigma)?,
            noise_seed: r.or("noise_seed", d.noise_seed)?,
            trace_samples: r.or("trace_samples", d.trace_samples)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SimSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("noise_sigma".into(), self.noise_sigma.to_value()),
            ("noise_seed".into(), self.noise_seed.to_value()),
            ("trace_samples".into(), self.trace_samples.to_value()),
        ])
    }
}

// ---- serving ----

/// Request-level serving configuration for `elk serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSpec {
    /// Synthetic trace recipe.
    pub trace: TraceSpec,
    /// Independent chip-group replicas (round-robin routing).
    pub replicas: usize,
    /// Concurrent requests per replica.
    pub max_batch: u64,
    /// Prompt-token budget per prefill step.
    pub max_prefill_tokens: u64,
    /// Sequence-length bucket ladder `[min, max]` for plan-cache keys.
    pub seq_buckets: SeqBucketsSpec,
    /// Round step batch sizes up to powers of two.
    pub bucket_batch: bool,
    /// Latency SLO scored by goodput.
    pub slo: SloSpec,
    /// Optional multi-tenant section: when present, the replay also
    /// runs through the tenancy engine with SLO classes and admission
    /// control.
    pub tenants: Option<TenancySpec>,
    /// Worker threads for the serving pool (`0` = all cores).
    pub threads: usize,
}

impl Default for ServingSpec {
    /// A small smoke-sized serving setup: 16 requests, one replica,
    /// batch cap 32.
    fn default() -> Self {
        ServingSpec {
            trace: TraceSpec::default(),
            replicas: 1,
            max_batch: 32,
            max_prefill_tokens: 8192,
            seq_buckets: SeqBucketsSpec::default(),
            bucket_batch: true,
            slo: SloSpec::default(),
            tenants: None,
            threads: 1,
        }
    }
}

impl Deserialize for ServingSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = ServingSpec::default();
        let mut r = MapReader::new("serving", v)?;
        let spec = ServingSpec {
            trace: r.or_else("trace", TraceSpec::default)?,
            replicas: r.or("replicas", d.replicas)?,
            max_batch: r.or("max_batch", d.max_batch)?,
            max_prefill_tokens: r.or("max_prefill_tokens", d.max_prefill_tokens)?,
            seq_buckets: r.or("seq_buckets", d.seq_buckets)?,
            bucket_batch: r.or("bucket_batch", d.bucket_batch)?,
            slo: r.or("slo", d.slo)?,
            tenants: r.opt("tenants")?,
            threads: r.or("threads", d.threads)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for ServingSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("trace".into(), self.trace.to_value()),
            ("replicas".into(), self.replicas.to_value()),
            ("max_batch".into(), self.max_batch.to_value()),
            (
                "max_prefill_tokens".into(),
                self.max_prefill_tokens.to_value(),
            ),
            ("seq_buckets".into(), self.seq_buckets.to_value()),
            ("bucket_batch".into(), self.bucket_batch.to_value()),
            ("slo".into(), self.slo.to_value()),
        ];
        if let Some(tenants) = &self.tenants {
            m.push(("tenants".into(), tenants.to_value()));
        }
        m.push(("threads".into(), self.threads.to_value()));
        Value::Map(m)
    }
}

/// Synthetic request-trace recipe (mirrors [`elk_serve::TraceConfig`]).
///
/// The `arrivals`, `prompt_len`, and `output_len` fields reuse the
/// engine enums' serde form directly — externally tagged with the Rust
/// variant name, e.g. `{"Poisson": {"rate_rps": 100.0}}` or
/// `{"Uniform": {"lo": 128, "hi": 512}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// RNG seed.
    pub seed: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Prompt-length distribution.
    pub prompt_len: LengthDist,
    /// Output-length distribution.
    pub output_len: LengthDist,
}

impl Default for TraceSpec {
    /// 16 Poisson arrivals at 100 req/s with short prompts and outputs —
    /// sized so a scenario smoke run stays fast.
    fn default() -> Self {
        TraceSpec {
            seed: 0x5eed,
            requests: 16,
            arrivals: ArrivalProcess::Poisson { rate_rps: 100.0 },
            prompt_len: LengthDist::Uniform { lo: 128, hi: 512 },
            output_len: LengthDist::Uniform { lo: 4, hi: 16 },
        }
    }
}

/// Strict reader for the externally-tagged [`ArrivalProcess`] form
/// (`{"Poisson": {...}}` / `{"Bursty": {...}}`): same JSON shape as
/// the derived impl, but an unknown variant or stray knob — e.g.
/// `burst_factor` inside a `Poisson` body — is an error instead of
/// silently ignored.
fn parse_arrivals(v: &Value) -> Result<ArrivalProcess, Error> {
    let mut r = MapReader::new("arrivals", v)?;
    let arrivals = if let Some(body) = r.raw("Poisson") {
        let mut b = MapReader::new("arrivals.Poisson", body)?;
        let a = ArrivalProcess::Poisson {
            rate_rps: b.req("rate_rps")?,
        };
        b.finish()?;
        a
    } else if let Some(body) = r.raw("Bursty") {
        let mut b = MapReader::new("arrivals.Bursty", body)?;
        let a = ArrivalProcess::Bursty {
            rate_rps: b.req("rate_rps")?,
            burst_factor: b.req("burst_factor")?,
            period_s: b.req("period_s")?,
            duty: b.req("duty")?,
        };
        b.finish()?;
        a
    } else {
        return Err(Error::msg(
            "arrivals: expected a `Poisson` or `Bursty` object",
        ));
    };
    r.finish()?;
    Ok(arrivals)
}

/// Strict reader for the externally-tagged [`LengthDist`] form
/// (`{"Fixed": n}` / `{"Uniform": {...}}` / `{"Bimodal": {...}}`); see
/// [`parse_arrivals`] for why the derived impl is not enough.
fn parse_lengths(what: &'static str, v: &Value) -> Result<LengthDist, Error> {
    let mut r = MapReader::new(what, v)?;
    let dist = if let Some(body) = r.raw("Fixed") {
        LengthDist::Fixed(
            u64::from_value(body).map_err(|e| Error::msg(format!("{what}.Fixed: {e}")))?,
        )
    } else if let Some(body) = r.raw("Uniform") {
        let mut b = MapReader::new("Uniform", body)?;
        let d = LengthDist::Uniform {
            lo: b.req("lo")?,
            hi: b.req("hi")?,
        };
        b.finish()?;
        d
    } else if let Some(body) = r.raw("Bimodal") {
        let mut b = MapReader::new("Bimodal", body)?;
        let d = LengthDist::Bimodal {
            short: b.req("short")?,
            long: b.req("long")?,
            long_weight: b.req("long_weight")?,
        };
        b.finish()?;
        d
    } else {
        return Err(Error::msg(format!(
            "{what}: expected a `Fixed`, `Uniform`, or `Bimodal` object"
        )));
    };
    r.finish()?;
    Ok(dist)
}

impl Deserialize for TraceSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = TraceSpec::default();
        let mut r = MapReader::new("trace", v)?;
        let arrivals = match r.raw("arrivals") {
            None | Some(Value::Null) => d.arrivals,
            Some(body) => parse_arrivals(body)?,
        };
        let prompt_len = match r.raw("prompt_len") {
            None | Some(Value::Null) => d.prompt_len,
            Some(body) => parse_lengths("prompt_len", body)?,
        };
        let output_len = match r.raw("output_len") {
            None | Some(Value::Null) => d.output_len,
            Some(body) => parse_lengths("output_len", body)?,
        };
        let spec = TraceSpec {
            seed: r.or("seed", d.seed)?,
            requests: r.or("requests", d.requests)?,
            arrivals,
            prompt_len,
            output_len,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for TraceSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("seed".into(), self.seed.to_value()),
            ("requests".into(), self.requests.to_value()),
            ("arrivals".into(), self.arrivals.to_value()),
            ("prompt_len".into(), self.prompt_len.to_value()),
            ("output_len".into(), self.output_len.to_value()),
        ])
    }
}

/// Sequence-length bucket ladder (mirrors [`elk_model::SeqBuckets`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqBucketsSpec {
    /// Smallest bucket (must be a power of two).
    pub min: u64,
    /// Largest bucket.
    pub max: u64,
}

impl Default for SeqBucketsSpec {
    fn default() -> Self {
        let d = elk_model::SeqBuckets::default();
        SeqBucketsSpec {
            min: d.min,
            max: d.max,
        }
    }
}

impl Deserialize for SeqBucketsSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = SeqBucketsSpec::default();
        let mut r = MapReader::new("seq_buckets", v)?;
        let spec = SeqBucketsSpec {
            min: r.or("min", d.min)?,
            max: r.or("max", d.max)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SeqBucketsSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("min".into(), self.min.to_value()),
            ("max".into(), self.max.to_value()),
        ])
    }
}

/// Latency SLO in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Time-to-first-token bound, ms.
    pub ttft_ms: f64,
    /// Mean time-per-output-token bound, ms.
    pub tpot_ms: f64,
}

impl Default for SloSpec {
    /// The serving layer's interactive-chat default: 2 s TTFT, 60 ms
    /// TPOT.
    fn default() -> Self {
        SloSpec {
            ttft_ms: 2000.0,
            tpot_ms: 60.0,
        }
    }
}

impl Deserialize for SloSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = SloSpec::default();
        let mut r = MapReader::new("slo", v)?;
        let spec = SloSpec {
            ttft_ms: r.or("ttft_ms", d.ttft_ms)?,
            tpot_ms: r.or("tpot_ms", d.tpot_ms)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SloSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("ttft_ms".into(), self.ttft_ms.to_value()),
            ("tpot_ms".into(), self.tpot_ms.to_value()),
        ])
    }
}

// ---- tenancy ----

/// One tenant SLO class (mirrors [`elk_serve::TenantClass`], with SLO
/// bounds in ms like the `slo` section).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClassSpec {
    /// Class name; tenant ids map onto it.
    pub name: String,
    /// Scheduling priority, `0` (highest) ..= `63`.
    pub priority: u64,
    /// Per-class latency SLO.
    pub slo: SloSpec,
    /// Token-bucket refill rate, requests/s; omit for unlimited.
    pub rate_rps: Option<f64>,
    /// Token-bucket capacity (burst allowance).
    pub burst: u64,
    /// Model-zoo alias served for this class; omit for the scenario's
    /// base model. Layer count is inherited from the base model.
    pub model: Option<String>,
    /// Whether load shedding may reject or defer this class.
    pub sheddable: bool,
}

impl Default for TenantClassSpec {
    /// Highest priority, default SLO, unlimited and never shed.
    fn default() -> Self {
        TenantClassSpec {
            name: "default".into(),
            priority: 0,
            slo: SloSpec::default(),
            rate_rps: None,
            burst: 1,
            model: None,
            sheddable: false,
        }
    }
}

impl Deserialize for TenantClassSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = TenantClassSpec::default();
        let mut r = MapReader::new("tenants.classes", v)?;
        let spec = TenantClassSpec {
            name: r.req("name")?,
            priority: r.or("priority", d.priority)?,
            slo: r.or("slo", d.slo)?,
            rate_rps: r.opt("rate_rps")?,
            burst: r.or("burst", d.burst)?,
            model: r.opt("model")?,
            sheddable: r.or("sheddable", d.sheddable)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for TenantClassSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("name".into(), self.name.to_value()),
            ("priority".into(), self.priority.to_value()),
            ("slo".into(), self.slo.to_value()),
        ];
        if let Some(rate) = self.rate_rps {
            m.push(("rate_rps".into(), rate.to_value()));
        }
        m.push(("burst".into(), self.burst.to_value()));
        if let Some(model) = &self.model {
            m.push(("model".into(), model.to_value()));
        }
        m.push(("sheddable".into(), self.sheddable.to_value()));
        Value::Map(m)
    }
}

/// Multi-tenant serving configuration (mirrors
/// [`elk_serve::TenancyConfig`]).
///
/// The `map` object assigns tenant ids to class names
/// (`{"acme": "premium"}`); unmapped tenants fall back to
/// `default_class`, which itself defaults to the first class.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancySpec {
    /// SLO classes, highest-priority first by convention.
    pub classes: Vec<TenantClassSpec>,
    /// Tenant id → class name assignments, in file order.
    pub map: Vec<(String, String)>,
    /// Class for tenants absent from `map`.
    pub default_class: String,
    /// Shed sheddable classes when the time-weighted mean pooled
    /// waiting depth crosses this; omit to never shed.
    pub shed_queue_depth: Option<f64>,
    /// What shedding does: `"reject"` or `"defer"`.
    pub shed_policy: String,
    /// One-shot re-admission delay for deferred requests, ms.
    pub defer_ms: f64,
}

impl Default for TenancySpec {
    /// A single default class: every tenant admitted, nothing shed —
    /// the config that reproduces the plain engines bit-for-bit.
    fn default() -> Self {
        TenancySpec {
            classes: vec![TenantClassSpec::default()],
            map: Vec::new(),
            default_class: "default".into(),
            shed_queue_depth: None,
            shed_policy: "reject".into(),
            defer_ms: 50.0,
        }
    }
}

impl Deserialize for TenancySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = TenancySpec::default();
        let mut r = MapReader::new("tenants", v)?;
        let classes: Vec<TenantClassSpec> = r.or_else("classes", || d.classes.clone())?;
        let map = match r.raw("map") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Map(entries)) => {
                let mut pairs = Vec::with_capacity(entries.len());
                for (tenant, class) in entries {
                    match class {
                        Value::Str(c) => pairs.push((tenant.clone(), c.clone())),
                        other => {
                            return Err(Error::msg(format!(
                                "tenants.map.{tenant}: expected a class name, found {}",
                                other.kind()
                            )))
                        }
                    }
                }
                pairs
            }
            Some(other) => {
                return Err(Error::msg(format!(
                    "tenants.map: expected a JSON object, found {}",
                    other.kind()
                )))
            }
        };
        let default_class = r.or_else("default_class", || {
            classes
                .first()
                .map(|c| c.name.clone())
                .unwrap_or_else(|| d.default_class.clone())
        })?;
        let spec = TenancySpec {
            classes,
            map,
            default_class,
            shed_queue_depth: r.opt("shed_queue_depth")?,
            shed_policy: r.or_else("shed_policy", || d.shed_policy.clone())?,
            defer_ms: r.or("defer_ms", d.defer_ms)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for TenancySpec {
    fn to_value(&self) -> Value {
        let mut m = vec![(
            "classes".into(),
            Value::Seq(self.classes.iter().map(|c| c.to_value()).collect()),
        )];
        if !self.map.is_empty() {
            m.push((
                "map".into(),
                Value::Map(
                    self.map
                        .iter()
                        .map(|(t, c)| (t.clone(), c.to_value()))
                        .collect(),
                ),
            ));
        }
        m.push(("default_class".into(), self.default_class.to_value()));
        if let Some(depth) = self.shed_queue_depth {
            m.push(("shed_queue_depth".into(), depth.to_value()));
        }
        m.push(("shed_policy".into(), self.shed_policy.to_value()));
        m.push(("defer_ms".into(), self.defer_ms.to_value()));
        Value::Map(m)
    }
}

// ---- observe ----

/// Deterministic observability knobs for `elk-obs` recording: whether
/// runs record at all, where the Chrome-trace timeline lands, and how
/// many per-request lanes are sampled. Recording is purely additive —
/// it never changes a report — and recorded streams are byte-identical
/// at any thread count. The `--timeline <path>` CLI flag overrides
/// `timeline` and implies `enable`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveSpec {
    /// Record spans/counters/histograms during runs.
    pub enable: bool,
    /// Chrome-trace output path (relative to the working directory);
    /// omit to derive `<out>/<name>.timeline.json` when enabled.
    pub timeline: Option<String>,
    /// Per-request lane sampling cap: the first `sample` requests of a
    /// trace get individual timeline lanes (metrics always cover all).
    pub sample: u64,
}

impl Default for ObserveSpec {
    /// Recording off; 64 request lanes when switched on.
    fn default() -> Self {
        ObserveSpec {
            enable: false,
            timeline: None,
            sample: 64,
        }
    }
}

impl Deserialize for ObserveSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = ObserveSpec::default();
        let mut r = MapReader::new("observe", v)?;
        let spec = ObserveSpec {
            enable: r.or("enable", d.enable)?,
            timeline: r.opt("timeline")?,
            sample: r.or("sample", d.sample)?,
        };
        r.finish()?;
        match &spec.timeline {
            Some(path) if path.trim().is_empty() => {
                Err(Error::msg("observe.timeline: path must be non-empty"))
            }
            _ => Ok(spec),
        }
    }
}

impl Serialize for ObserveSpec {
    fn to_value(&self) -> Value {
        let mut m = vec![("enable".into(), self.enable.to_value())];
        if let Some(timeline) = &self.timeline {
            m.push(("timeline".into(), timeline.to_value()));
        }
        m.push(("sample".into(), self.sample.to_value()));
        Value::Map(m)
    }
}

// ---- cluster ----

/// A fixed `(tp, pp, dp)` parallelism assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Pipeline-parallel degree.
    pub pp: u64,
    /// Data-parallel degree (replica groups).
    pub dp: u64,
}

impl Deserialize for PlanSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        plan_from("cluster.plan", v)
    }
}

/// [`PlanSpec`] parsing with an explicit error context, so the nested
/// pool plans under `cluster.disaggregate` report their own paths.
fn plan_from(ctx: &'static str, v: &Value) -> Result<PlanSpec, Error> {
    let mut r = MapReader::new(ctx, v)?;
    let spec = PlanSpec {
        tp: r.req("tp")?,
        pp: r.req("pp")?,
        dp: r.req("dp")?,
    };
    r.finish()?;
    Ok(spec)
}

impl Serialize for PlanSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("tp".into(), self.tp.to_value()),
            ("pp".into(), self.pp.to_value()),
            ("dp".into(), self.dp.to_value()),
        ])
    }
}

/// Multi-chip parallelism configuration for `elk cluster`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Fixed `(tp, pp, dp)` assignment; omit for auto-parallelism
    /// search over the whole grid.
    pub plan: Option<PlanSpec>,
    /// Microbatches per pipeline round (default: the pipeline depth).
    pub microbatches: Option<u64>,
    /// Inter-chip link arrangement: `"ring"` or `"fully_connected"`.
    pub interconnect: String,
    /// Router policies for cluster serving, compared in order. The JSON
    /// accepts a single name, an array of names, or
    /// `{"power_of_two": {"seed": N}}` objects.
    pub router: Vec<RouterPolicy>,
    /// Also replay the scenario's serving trace across the replica
    /// groups (`true` by default; estimate-only scenarios switch it
    /// off).
    pub serve: bool,
    /// Optional autoscaling controller: when present (and `serve` is
    /// on), the replay also runs with an elastic dp fleet between
    /// `min_groups` and `max_groups` of the plan's `(tp, pp)` groups.
    pub autoscale: Option<AutoscaleSpec>,
    /// Optional disaggregated prefill/decode pools: when present (and
    /// `serve` is on), the replay also runs with separate prefill and
    /// decode pools and KV-cache handoff priced on the interconnect.
    pub disaggregate: Option<DisaggSpec>,
    /// Optional multi-tenant section: when present (and `serve` is
    /// on), the replay also runs through the tenancy engine with SLO
    /// classes, admission control, and multi-model pods.
    pub tenants: Option<TenancySpec>,
    /// Worker threads for the plan search and compile fan-out (`0` =
    /// all cores). Reports are byte-identical at any setting.
    pub threads: usize,
}

impl Default for ClusterSpec {
    /// Auto-search on ring links, round-robin serving, one thread.
    fn default() -> Self {
        ClusterSpec {
            plan: None,
            microbatches: None,
            interconnect: "ring".into(),
            router: vec![RouterPolicy::RoundRobin],
            serve: true,
            autoscale: None,
            disaggregate: None,
            tenants: None,
            threads: 1,
        }
    }
}

/// Disaggregated prefill/decode pool configuration (mirrors
/// [`elk_cluster::DisaggConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggSpec {
    /// The prefill pool's `(tp, pp, dp)` layout.
    pub prefill: PlanSpec,
    /// The decode pool's `(tp, pp, dp)` layout.
    pub decode: PlanSpec,
    /// Prompt-token cap per prefill step (`0` disables chunking).
    pub chunk_tokens: u64,
    /// Map both pools onto the same groups of one pod (the degenerate
    /// config that equals colocated serving).
    pub shared_chips: bool,
}

impl Deserialize for DisaggSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("cluster.disaggregate", v)?;
        let prefill = r
            .raw("prefill")
            .ok_or_else(|| Error::msg("cluster.disaggregate: missing required key 'prefill'"))
            .and_then(|body| plan_from("cluster.disaggregate.prefill", body))?;
        let decode = r
            .raw("decode")
            .ok_or_else(|| Error::msg("cluster.disaggregate: missing required key 'decode'"))
            .and_then(|body| plan_from("cluster.disaggregate.decode", body))?;
        let spec = DisaggSpec {
            prefill,
            decode,
            chunk_tokens: r.or("chunk_tokens", 0)?,
            shared_chips: r.or("shared_chips", false)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for DisaggSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("prefill".into(), self.prefill.to_value()),
            ("decode".into(), self.decode.to_value()),
            ("chunk_tokens".into(), self.chunk_tokens.to_value()),
            ("shared_chips".into(), self.shared_chips.to_value()),
        ])
    }
}

/// Autoscaling controller knobs (mirrors
/// [`elk_cluster::AutoscaleConfig`], with the interval in ms like the
/// SLO section).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleSpec {
    /// Fleet floor (always-on groups).
    pub min_groups: u64,
    /// Fleet ceiling.
    pub max_groups: u64,
    /// Controller decision cadence, ms.
    pub interval_ms: f64,
    /// Scale up above this time-weighted waiting depth per ready group.
    pub up_queue_depth: f64,
    /// Scale down below this depth (when the SLO target holds).
    pub down_queue_depth: f64,
    /// Windowed SLO-attainment floor.
    pub slo_target: f64,
    /// Cold-start size in warm-up step latencies.
    pub cold_start_steps: f64,
}

impl Default for AutoscaleSpec {
    fn default() -> Self {
        let d = elk_cluster::AutoscaleConfig::default();
        AutoscaleSpec {
            min_groups: d.min_groups,
            max_groups: d.max_groups,
            interval_ms: d.interval.as_secs() * 1e3,
            up_queue_depth: d.up_queue_depth,
            down_queue_depth: d.down_queue_depth,
            slo_target: d.slo_target,
            cold_start_steps: d.cold_start_steps,
        }
    }
}

impl Deserialize for AutoscaleSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = AutoscaleSpec::default();
        let mut r = MapReader::new("cluster.autoscale", v)?;
        let spec = AutoscaleSpec {
            min_groups: r.or("min_groups", d.min_groups)?,
            max_groups: r.or("max_groups", d.max_groups)?,
            interval_ms: r.or("interval_ms", d.interval_ms)?,
            up_queue_depth: r.or("up_queue_depth", d.up_queue_depth)?,
            down_queue_depth: r.or("down_queue_depth", d.down_queue_depth)?,
            slo_target: r.or("slo_target", d.slo_target)?,
            cold_start_steps: r.or("cold_start_steps", d.cold_start_steps)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for AutoscaleSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("min_groups".into(), self.min_groups.to_value()),
            ("max_groups".into(), self.max_groups.to_value()),
            ("interval_ms".into(), self.interval_ms.to_value()),
            ("up_queue_depth".into(), self.up_queue_depth.to_value()),
            ("down_queue_depth".into(), self.down_queue_depth.to_value()),
            ("slo_target".into(), self.slo_target.to_value()),
            ("cold_start_steps".into(), self.cold_start_steps.to_value()),
        ])
    }
}

/// Strict reader for one router policy: a lowercase name or a
/// `{"power_of_two": {"seed": N}}` object.
fn parse_router(v: &Value) -> Result<RouterPolicy, Error> {
    match v {
        Value::Str(s) => match s.as_str() {
            "round_robin" => Ok(RouterPolicy::RoundRobin),
            "least_outstanding" => Ok(RouterPolicy::LeastOutstanding),
            "power_of_two" => Ok(RouterPolicy::PowerOfTwoChoices { seed: 2 }),
            other => Err(Error::msg(format!(
                "unknown router policy '{other}': expected round_robin, \
                 least_outstanding, power_of_two"
            ))),
        },
        Value::Map(_) => {
            let mut r = MapReader::new("router", v)?;
            let body = r.raw("power_of_two").ok_or_else(|| {
                Error::msg("router: expected a policy name or a `power_of_two` object")
            })?;
            let mut b = MapReader::new("router.power_of_two", body)?;
            let policy = RouterPolicy::PowerOfTwoChoices {
                seed: b.or("seed", 2)?,
            };
            b.finish()?;
            r.finish()?;
            Ok(policy)
        }
        other => Err(Error::msg(format!(
            "router: expected a name or object, found {}",
            other.kind()
        ))),
    }
}

/// Parses the `router` key: one policy or an array of policies.
fn parse_routers(v: &Value) -> Result<Vec<RouterPolicy>, Error> {
    let policies = match v {
        Value::Seq(items) => items
            .iter()
            .map(parse_router)
            .collect::<Result<Vec<_>, _>>()?,
        single => vec![parse_router(single)?],
    };
    if policies.is_empty() {
        return Err(Error::msg("cluster.router: the list must not be empty"));
    }
    Ok(policies)
}

/// Canonical serialization of one router policy.
fn router_to_value(policy: RouterPolicy) -> Value {
    match policy {
        RouterPolicy::PowerOfTwoChoices { seed } => Value::Map(vec![(
            "power_of_two".into(),
            Value::Map(vec![("seed".into(), seed.to_value())]),
        )]),
        other => other.name().to_value(),
    }
}

impl Deserialize for ClusterSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let d = ClusterSpec::default();
        let mut r = MapReader::new("cluster", v)?;
        let router = match r.raw("router") {
            None | Some(Value::Null) => d.router,
            Some(body) => parse_routers(body).map_err(|e| Error::msg(format!("cluster.{e}")))?,
        };
        let spec = ClusterSpec {
            plan: r.opt("plan")?,
            microbatches: r.opt("microbatches")?,
            interconnect: r.or_else("interconnect", || d.interconnect.clone())?,
            router,
            serve: r.or("serve", d.serve)?,
            autoscale: r.opt("autoscale")?,
            disaggregate: r.opt("disaggregate")?,
            tenants: r.opt("tenants")?,
            threads: r.or("threads", d.threads)?,
        };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for ClusterSpec {
    fn to_value(&self) -> Value {
        let mut m = Vec::new();
        if let Some(plan) = &self.plan {
            m.push(("plan".into(), plan.to_value()));
        }
        if let Some(microbatches) = self.microbatches {
            m.push(("microbatches".into(), microbatches.to_value()));
        }
        m.push(("interconnect".into(), self.interconnect.to_value()));
        m.push((
            "router".into(),
            Value::Seq(self.router.iter().map(|&p| router_to_value(p)).collect()),
        ));
        m.push(("serve".into(), self.serve.to_value()));
        if let Some(autoscale) = &self.autoscale {
            m.push(("autoscale".into(), autoscale.to_value()));
        }
        if let Some(disaggregate) = &self.disaggregate {
            m.push(("disaggregate".into(), disaggregate.to_value()));
        }
        if let Some(tenants) = &self.tenants {
            m.push(("tenants".into(), tenants.to_value()));
        }
        m.push(("threads".into(), self.threads.to_value()));
        Value::Map(m)
    }
}

// ---- sweep ----

/// A grid sweep over arbitrary spec fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Which runner each grid point goes through.
    pub command: SweepCommand,
    /// Sweep axes; the grid is their cartesian product in file order
    /// (last axis fastest).
    pub axes: Vec<SweepAxis>,
}

impl Deserialize for SweepSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("sweep", v)?;
        let command = match r.opt::<String>("command")? {
            Some(name) => SweepCommand::parse(&name)?,
            None => SweepCommand::Compile,
        };
        let axes: Vec<SweepAxis> = r.req("axes")?;
        if axes.is_empty() {
            return Err(Error::msg("sweep.axes: must contain at least one axis"));
        }
        let spec = SweepSpec { command, axes };
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SweepSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("command".into(), self.command.name().to_value()),
            (
                "axes".into(),
                Value::Seq(self.axes.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// The runner a sweep fans its grid points through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepCommand {
    /// `elk compile` per point.
    Compile,
    /// `elk simulate` per point.
    Simulate,
    /// `elk serve` per point.
    Serve,
}

impl SweepCommand {
    /// Parses a lowercase command name.
    ///
    /// # Errors
    ///
    /// Errors on anything but `compile`, `simulate`, `serve`.
    pub fn parse(name: &str) -> Result<Self, Error> {
        match name {
            "compile" => Ok(SweepCommand::Compile),
            "simulate" => Ok(SweepCommand::Simulate),
            "serve" => Ok(SweepCommand::Serve),
            other => Err(Error::msg(format!(
                "unknown sweep command '{other}': expected compile, simulate, serve"
            ))),
        }
    }

    /// Canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SweepCommand::Compile => "compile",
            SweepCommand::Simulate => "simulate",
            SweepCommand::Serve => "serve",
        }
    }
}

/// One sweep axis: a dotted path into the scenario document and the
/// values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Dotted path, e.g. `"workload.batch"` or `"system.chip.cores"`.
    pub path: String,
    /// Values substituted at `path`, one grid column per value.
    pub values: Vec<Value>,
}

impl Deserialize for SweepAxis {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut r = MapReader::new("sweep axis", v)?;
        let spec = SweepAxis {
            path: r.req("path")?,
            values: r.req("values")?,
        };
        if spec.path.is_empty() || spec.path.split('.').any(str::is_empty) {
            return Err(Error::msg(format!(
                "sweep axis: malformed path {:?}",
                spec.path
            )));
        }
        if spec.values.is_empty() {
            return Err(Error::msg(format!(
                "sweep axis `{}`: needs at least one value",
                spec.path
            )));
        }
        r.finish()?;
        Ok(spec)
    }
}

impl Serialize for SweepAxis {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("path".into(), self.path.to_value()),
            ("values".into(), Value::Seq(self.values.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = ScenarioSpec::from_json(r#"{"name": "t", "model": {"zoo": "llama13"}}"#).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.system, SystemSpec::Preset("ipu_pod4".into()));
        assert_eq!(s.workload.batch, 32);
        assert_eq!(s.compiler.design, vec![Design::ElkFull]);
        assert!(s.sweep.is_none());
    }

    #[test]
    fn empty_name_is_rejected() {
        for name in ["", "  "] {
            let e = ScenarioSpec::from_json(&format!(
                r#"{{"name": "{name}", "model": {{"zoo": "llama13"}}}}"#
            ))
            .unwrap_err();
            assert!(e.to_string().contains("non-empty"), "{e}");
        }
    }

    #[test]
    fn unknown_top_level_key_is_an_error() {
        let e = ScenarioSpec::from_json(
            r#"{"name": "t", "model": {"zoo": "llama13"}, "wrokload": {}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("wrokload"), "{e}");
    }

    #[test]
    fn design_accepts_string_all_and_array() {
        let one: CompilerSpec = serde_json::from_str(r#"{"design": "basic"}"#).unwrap();
        assert_eq!(one.design, vec![Design::Basic]);
        let all: CompilerSpec = serde_json::from_str(r#"{"design": "all"}"#).unwrap();
        assert_eq!(all.design, Design::ALL.to_vec());
        let arr: CompilerSpec =
            serde_json::from_str(r#"{"design": ["ideal", "elk_dyn"]}"#).unwrap();
        assert_eq!(arr.design, vec![Design::Ideal, Design::ElkDyn]);
        let err: Result<CompilerSpec, _> = serde_json::from_str(r#"{"design": "elkful"}"#);
        assert!(err.unwrap_err().to_string().contains("elkful"));
    }

    #[test]
    fn canonical_serialization_round_trips() {
        let s = ScenarioSpec::from_json(
            r#"{
              "name": "rt",
              "model": {"zoo": "gemma27", "layers": 3},
              "system": {"chip": {"cores": 64, "matmul_tflops": 10.0, "vector_tflops": 1.0,
                                  "topology": {"mesh": {"total_gib_s": 512.0}}},
                         "chips": 2},
              "workload": {"phase": "prefill", "batch": 4, "seq_len": 256, "shards": 2},
              "compiler": {"design": "all", "threads": 2},
              "serving": {"trace": {"requests": 5, "output_len": {"Fixed": 8}}},
              "sweep": {"command": "simulate",
                        "axes": [{"path": "workload.batch", "values": [4, 8]}]}
            }"#,
        )
        .unwrap();
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn nested_engine_sections_reject_unknown_keys() {
        // Typo inside an explicit transformer body.
        let e = ScenarioSpec::from_json(
            r#"{"name": "t", "model": {"transformer": {
                "name": "x", "layers": 2, "hidden": 1024, "heads": 8, "kv_heads": 8,
                "head_dim": 128, "intermediate": 3072, "vocab": 32000, "glu": true,
                "norm": "Rms", "rope": true, "post_norms": false, "tpyo_knob": 99}}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("tpyo_knob"), "{e}");

        // A Bursty-only knob smuggled into a Poisson arrivals body.
        let e = ScenarioSpec::from_json(
            r#"{"name": "t", "model": {"zoo": "llama13"},
                "serving": {"trace": {"arrivals":
                  {"Poisson": {"rate_rps": 10.0, "burst_factor": 3.0}}}}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("burst_factor"), "{e}");

        // Stray field in a length distribution.
        let e = ScenarioSpec::from_json(
            r#"{"name": "t", "model": {"zoo": "llama13"},
                "serving": {"trace": {"prompt_len":
                  {"Uniform": {"lo": 1, "hi": 2, "mean": 3}}}}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("mean"), "{e}");
    }

    #[test]
    fn duplicate_keys_anywhere_are_parse_errors() {
        let e = ScenarioSpec::from_json(
            r#"{"name": "t", "model": {"zoo": "llama13"},
                "workload": {"batch": 16, "batch": 32}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate key `batch`"), "{e}");
    }

    #[test]
    fn cluster_section_parses_with_defaults_and_strictness() {
        let s = ScenarioSpec::from_json(
            r#"{"name": "c", "model": {"zoo": "llama13"},
                "cluster": {}}"#,
        )
        .unwrap();
        let c = s.cluster.expect("cluster section present");
        assert_eq!(c, ClusterSpec::default());

        let s = ScenarioSpec::from_json(
            r#"{"name": "c", "model": {"zoo": "llama13"},
                "cluster": {"plan": {"tp": 2, "pp": 2, "dp": 1},
                            "microbatches": 4,
                            "interconnect": "fully_connected",
                            "router": ["round_robin", {"power_of_two": {"seed": 7}}],
                            "serve": false}}"#,
        )
        .unwrap();
        let c = s.cluster.unwrap();
        assert_eq!(
            c.plan,
            Some(PlanSpec {
                tp: 2,
                pp: 2,
                dp: 1
            })
        );
        assert_eq!(c.microbatches, Some(4));
        assert_eq!(c.interconnect, "fully_connected");
        assert_eq!(
            c.router,
            vec![
                RouterPolicy::RoundRobin,
                RouterPolicy::PowerOfTwoChoices { seed: 7 }
            ]
        );
        assert!(!c.serve);

        // Typos anywhere in the section are errors.
        for bad in [
            r#"{"plan": {"tp": 2, "pp": 1, "dp": 1, "ep": 1}}"#,
            r#"{"router": "fastest"}"#,
            r#"{"mircobatches": 2}"#,
        ] {
            let e = ScenarioSpec::from_json(&format!(
                r#"{{"name": "c", "model": {{"zoo": "llama13"}}, "cluster": {bad}}}"#
            ))
            .unwrap_err();
            let msg = e.to_string();
            assert!(
                msg.contains("ep") || msg.contains("fastest") || msg.contains("mircobatches"),
                "{msg}"
            );
        }
    }

    #[test]
    fn cluster_section_round_trips() {
        let s = ScenarioSpec::from_json(
            r#"{"name": "c", "model": {"zoo": "llama13"},
                "cluster": {"plan": {"tp": 4, "pp": 1, "dp": 1},
                            "router": ["least_outstanding", "power_of_two"]}}"#,
        )
        .unwrap();
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn workload_trace_and_autoscale_sections_round_trip() {
        let s = ScenarioSpec::from_json(
            r#"{"name": "tr", "model": {"zoo": "llama13"},
                "workload": {"trace": {"generate": {
                    "seed": 7, "requests": 32,
                    "rate": {"Diurnal": {"mean_rps": 80.0, "amplitude": 0.6,
                                         "period_s": 4.0}},
                    "prompt_len": {"HeavyTail": {"lo": 64, "alpha": 1.2, "cap": 2048}},
                    "output_len": {"Fixed": 8},
                    "tenants": 3}}},
                "cluster": {"autoscale": {"max_groups": 3, "interval_ms": 125.0}}}"#,
        )
        .unwrap();
        let trace = s.workload.trace.clone().expect("trace parsed");
        let TraceSourceSpec::Generate(g) = &trace else {
            panic!("generator source");
        };
        assert_eq!(g.seed, 7);
        assert!(matches!(g.rate, RateShape::Diurnal { amplitude, .. } if amplitude == 0.6));
        assert_eq!(g.tenants, 3);
        let auto = s.cluster.as_ref().unwrap().autoscale.expect("autoscale");
        assert_eq!(auto.max_groups, 3);
        assert_eq!(auto.min_groups, 1, "unset knobs default");
        let back = ScenarioSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);

        // File sources round-trip too, and empty paths are rejected.
        let s = ScenarioSpec::from_json(
            r#"{"name": "tr", "model": {"zoo": "llama13"},
                "workload": {"trace": {"file": "traces/golden_small.jsonl"}}}"#,
        )
        .unwrap();
        assert_eq!(
            s.workload.trace,
            Some(TraceSourceSpec::File("traces/golden_small.jsonl".into()))
        );
        assert_eq!(ScenarioSpec::from_json(&s.to_json()).unwrap(), s);
        let e = ScenarioSpec::from_json(
            r#"{"name": "tr", "model": {"zoo": "llama13"},
                "workload": {"trace": {"file": " "}}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("non-empty"), "{e}");

        // Typos inside the new sections are errors.
        for bad in [
            r#""workload": {"trace": {"generate": {"rtae": {}}}}"#,
            r#""workload": {"trace": {"generate": {"rate": {"Constant": {"rps": 1.0}}}}}"#,
            r#""cluster": {"autoscale": {"max_gruops": 2}}"#,
        ] {
            let e = ScenarioSpec::from_json(&format!(
                r#"{{"name": "tr", "model": {{"zoo": "llama13"}}, {bad}}}"#
            ))
            .unwrap_err();
            let msg = e.to_string();
            assert!(
                msg.contains("rtae") || msg.contains("rps") || msg.contains("max_gruops"),
                "{msg}"
            );
        }
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in [Phase::Decode, Phase::Prefill, Phase::TrainingForward] {
            assert_eq!(parse_phase(phase_name(phase)).unwrap(), phase);
        }
        assert!(parse_phase("Decode").is_err(), "names are lowercase");
    }

    #[test]
    fn design_names_round_trip() {
        for design in Design::ALL {
            assert_eq!(parse_design(design_name(design)).unwrap(), design);
        }
    }
}
