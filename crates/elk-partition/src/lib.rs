//! Single-operator partition plans for ICCA chips (§2.2, §4.3, §5).
//!
//! Elk does not invent its own intra-operator execution model: it consumes
//! partition plans produced by compute-shift-style compilers (T10, the
//! paper's reference \[34\]) and
//! trades them off globally. This crate is that plan generator, built from
//! scratch:
//!
//! * An **execute-state plan** ([`ExecutePlan`]) slices an operator's
//!   iteration space over the cores (the paper's "list of integers", e.g.
//!   `<90,9>`), and picks a *replication factor* for every shared operand:
//!   a core may hold its group's full slice (fast, large footprint) or a
//!   `1/g` rotation share (small footprint, `g−1` compute-shift rounds of
//!   inter-core traffic). This produces the memory↔time Pareto behaviour
//!   of Fig. 5.
//! * A **preload-state plan** ([`PreloadPlan`]) chooses how many copies of
//!   the operator's HBM-resident operand the controllers broadcast at
//!   preload time; the *data-distribution phase* at execution start gathers
//!   the remainder from peer cores (Fig. 3(b) vs (c), §4.3 Tradeoffs 2–3).
//!
//! ```
//! use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//! use elk_partition::Partitioner;
//!
//! let sys = presets::ipu_pod4();
//! let device = AnalyticDevice::of_chip(&sys.chip);
//! let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
//! let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
//! let partitioner = Partitioner::new(&sys.chip, &cost);
//! let plans = partitioner.plans(&graph.ops()[1]); // attn_norm
//! assert!(!plans.is_empty());
//! ```

#![warn(missing_docs)]

mod enumerate;
mod plan;

pub use enumerate::{split_candidates, Partitioner};
pub use plan::{ExecutePlan, PlanFactors, PreloadPlan};
