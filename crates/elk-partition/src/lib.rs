//! Single-operator partition plans for ICCA chips (§2.2, §4.3, §5).
//!
//! Elk does not invent its own intra-operator execution model: it consumes
//! partition plans produced by compute-shift-style compilers (T10, the
//! paper's reference \[34\]) and
//! trades them off globally. This crate is that plan generator, built from
//! scratch:
//!
//! * An **execute-state plan** ([`ExecutePlan`]) slices an operator's
//!   iteration space over the cores (the paper's "list of integers", e.g.
//!   `<90,9>`), and picks a *replication factor* for every shared operand:
//!   a core may hold its group's full slice (fast, large footprint) or a
//!   `1/g` rotation share (small footprint, `g−1` compute-shift rounds of
//!   inter-core traffic). This produces the memory↔time Pareto behaviour
//!   of Fig. 5.
//! * A **preload-state plan** ([`PreloadPlan`]) chooses how many copies of
//!   the operator's HBM-resident operand the controllers broadcast at
//!   preload time; the *data-distribution phase* at execution start gathers
//!   the remainder from peer cores (Fig. 3(b) vs (c), §4.3 Tradeoffs 2–3).
//!
//! ## The enumeration grid and its invariants
//!
//! [`Partitioner::plans`] is exhaustive over a finite grid; these are
//! the invariants downstream layers (frontier extraction, scheduling,
//! allocation) rely on:
//!
//! 1. **Geometric split grid.** Candidate split factors per iteration
//!    dimension come from [`split_candidates`]: a ×1.5 geometric ladder
//!    from `1` up to `min(dim, cores)`, always containing both `1` and
//!    the maximum feasible split. The ladder keeps the grid ≲25 points
//!    per dimension on a 1472-core chip, so the cross-product over
//!    `(pb, pm, pk, pn)` stays enumerable while still reaching every
//!    memory↔time regime of Fig. 5.
//! 2. **Replication ladder.** Within each operand's sharing group of `g`
//!    cores, the replication factor ranges over `{1, 4, 16, …} ∪ {g}`
//!    (powers of four plus full broadcast): `r = g` pins the whole
//!    group slice in every core (no compute-shift traffic), `r = 1` is
//!    the minimal 1/g rotation share, intermediates trade footprint for
//!    shift rounds. Preload-state copies are a subset: `r_preload ≤
//!    r_exec`, sorted by decreasing footprint, deduplicated.
//! 3. **SRAM/core feasibility.** Every returned plan satisfies
//!    `exec_space ≤ usable_sram_per_core()` **and** `cores() ≤
//!    chip.cores` **and** (on 2-D meshes) splits at most two
//!    dimensions; infeasible grid points are dropped, never clamped. A
//!    plan list is non-empty for any operator whose minimal footprint
//!    fits the chip at all, and plans below the chip-relative
//!    parallelism floor are pruned unless the operator is too small to
//!    reach it.
//!
//! Batch enumeration over many operators fans out across a scoped
//! work pool ([`Partitioner::enumerate_all_par`]) with index-ordered,
//! byte-identical merging — see the `elk-par` crate for the
//! determinism contract.
//!
//! ```
//! use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//! use elk_partition::Partitioner;
//!
//! let sys = presets::ipu_pod4();
//! let device = AnalyticDevice::of_chip(&sys.chip);
//! let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
//! let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
//! let partitioner = Partitioner::new(&sys.chip, &cost);
//! let plans = partitioner.plans(&graph.ops()[1]); // attn_norm
//! assert!(!plans.is_empty());
//! // Invariant 3: everything returned fits the chip.
//! for plan in &plans {
//!     assert!(plan.exec_space <= sys.chip.usable_sram_per_core());
//!     assert!(plan.cores_used <= sys.chip.cores);
//! }
//! ```

#![warn(missing_docs)]

mod enumerate;
mod plan;

pub use enumerate::{split_candidates, Partitioner};
pub use plan::{ExecutePlan, PlanFactors, PreloadPlan};
