use std::fmt;

use serde::{Deserialize, Serialize};

use elk_cost::TileShape;
use elk_units::{Bytes, Seconds};

/// The split and replication factors of an execute-state plan — the
/// paper's "list of integers" plan representation (§5).
///
/// Not every factor applies to every operator class; unused factors are 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanFactors {
    /// Split of the independent batch dimension (BatchMatMul).
    pub pb: u64,
    /// Split of the row dimension `m` (or rows / elems).
    pub pm: u64,
    /// Split of the contraction dimension `k`.
    pub pk: u64,
    /// Split of the column dimension `n` (or cols).
    pub pn: u64,
    /// Execute-state replication copies of the moving operand within its
    /// sharing group of `pn` cores (1 = rotate everything, `pn` = fully
    /// replicated).
    pub ra: u64,
    /// Execute-state replication copies of the stationary operand within
    /// its sharing group of `pm` cores.
    pub rb: u64,
}

impl PlanFactors {
    /// Cores used by the plan.
    #[must_use]
    pub fn cores(&self) -> u64 {
        self.pb * self.pm * self.pk * self.pn
    }

    /// Number of dimensions split more than one way (mesh chips restrict
    /// this to the mesh dimensionality, §5).
    #[must_use]
    pub fn split_dims(&self) -> u32 {
        [self.pb, self.pm, self.pk, self.pn]
            .iter()
            .filter(|&&p| p > 1)
            .count() as u32
    }
}

impl fmt::Display for PlanFactors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{},{},{},{}|r{},{}>",
            self.pb, self.pm, self.pk, self.pn, self.ra, self.rb
        )
    }
}

/// One preload-state plan of an operator under a given execute-state plan
/// (§4.3). `split_copies` copies of the HBM-resident operand are broadcast
/// at preload time; the data-distribution phase at execution start raises
/// the on-chip replication to the execute-state level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreloadPlan {
    /// Copies broadcast at preload time (`rP ≤ rb`).
    pub split_copies: u64,
    /// Per-core SRAM held from preload start until execution completes.
    pub preload_space: Bytes,
    /// DRAM-side read volume (independent of the broadcast factor).
    pub hbm_bytes: Bytes,
    /// Total bytes injected into the interconnect during preload.
    pub noc_preload_bytes: Bytes,
    /// Per-core inbound bytes during the data-distribution phase.
    pub distribute_traffic: Bytes,
    /// Serialized duration of the data-distribution phase.
    pub distribute_time: Seconds,
}

impl PreloadPlan {
    /// A trivial preload plan for operators with nothing in HBM.
    #[must_use]
    pub fn empty() -> Self {
        PreloadPlan {
            split_copies: 1,
            preload_space: Bytes::ZERO,
            hbm_bytes: Bytes::ZERO,
            noc_preload_bytes: Bytes::ZERO,
            distribute_traffic: Bytes::ZERO,
            distribute_time: Seconds::ZERO,
        }
    }
}

/// An execute-state partition plan with per-core accounting and its
/// preload-state alternatives.
///
/// All byte quantities are **per core** unless suffixed otherwise; times
/// are per-operator (cores run the homogeneous tiles in lock-step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutePlan {
    /// Split/replication factors.
    pub factors: PlanFactors,
    /// Cores the plan occupies.
    pub cores_used: u64,
    /// Per-core SRAM footprint while executing.
    pub exec_space: Bytes,
    /// Pure per-core compute time (all shift rounds).
    pub compute_time: Seconds,
    /// Per-core inbound inter-core traffic during execution
    /// (compute-shift rotations + cross-core reductions).
    pub shift_traffic: Bytes,
    /// Rotation micro-steps.
    pub chunks: u64,
    /// The per-core, per-chunk compute tile (what one core runs `chunks`
    /// times) — lets downstream consumers (the simulator) re-cost the
    /// plan with their own device model.
    pub tile: TileShape,
    /// End-to-end per-operator execution time under the chip's SRAM
    /// contention policy, excluding the data-distribution phase.
    pub exec_time: Seconds,
    /// Preload-state alternatives, sorted by decreasing `preload_space`
    /// (the first entry is maximum broadcast — fastest distribution).
    pub preload_plans: Vec<PreloadPlan>,
}

impl ExecutePlan {
    /// The preload plan with the largest footprint (maximum broadcast,
    /// zero or minimal distribution) — `MaxPreload` in Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no preload alternatives (never produced by
    /// the enumerator).
    #[must_use]
    pub fn max_preload(&self) -> &PreloadPlan {
        self.preload_plans.first().expect("plan without preload")
    }

    /// The preload plan with the smallest footprint — `MinPreload` in
    /// Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no preload alternatives.
    #[must_use]
    pub fn min_preload(&self) -> &PreloadPlan {
        self.preload_plans.last().expect("plan without preload")
    }

    /// Execution time including a given preload plan's data-distribution
    /// phase — the quantity the allocator trades off.
    #[must_use]
    pub fn time_with(&self, preload: &PreloadPlan) -> Seconds {
        self.exec_time + preload.distribute_time
    }
}

impl fmt::Display for ExecutePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores={} space={} time={} ({} preload plans)",
            self.factors,
            self.cores_used,
            self.exec_space,
            self.exec_time,
            self.preload_plans.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_cores_and_split_dims() {
        let f = PlanFactors {
            pb: 2,
            pm: 4,
            pk: 1,
            pn: 8,
            ra: 1,
            rb: 1,
        };
        assert_eq!(f.cores(), 64);
        assert_eq!(f.split_dims(), 3);
    }

    #[test]
    fn empty_preload_is_all_zero() {
        let p = PreloadPlan::empty();
        assert!(p.preload_space.is_zero());
        assert!(p.hbm_bytes.is_zero());
        assert_eq!(p.distribute_time, Seconds::ZERO);
    }
}
