use elk_cost::{CostModel, TileShape};
use elk_hw::{ChipConfig, SramContention, Topology};
use elk_model::{OpKind, Operator};
use elk_units::{Bytes, Seconds};

use crate::{ExecutePlan, PlanFactors, PreloadPlan};

/// Enumerates feasible execute-state plans (and their preload-state
/// alternatives) for single operators on a given chip.
///
/// See the crate docs for the model. The enumerator is exhaustive over a
/// geometric grid of split factors (the paper enumerates "all possible
/// partition plans" from compilers like T10 and checks hardware
/// compatibility, §4.3) and over power-of-two replication factors.
#[derive(Debug)]
pub struct Partitioner<'a> {
    chip: &'a ChipConfig,
    cost: &'a dyn CostModel,
    min_parallelism: u64,
}

impl<'a> Partitioner<'a> {
    /// Creates a partitioner for `chip` using `cost` for per-tile and
    /// per-link estimates.
    #[must_use]
    pub fn new(chip: &'a ChipConfig, cost: &'a dyn CostModel) -> Self {
        Partitioner {
            chip,
            cost,
            min_parallelism: (chip.cores / 16).max(1),
        }
    }

    /// Overrides the minimum cores a plan must occupy (plans below the
    /// maximum achievable parallelism of tiny operators are always kept).
    #[must_use]
    pub fn with_min_parallelism(mut self, cores: u64) -> Self {
        self.min_parallelism = cores.max(1);
        self
    }

    /// All feasible execute-state plans for `op`, unsorted.
    ///
    /// Every returned plan fits the per-core SRAM and the core count; the
    /// list is non-empty for any operator whose minimal footprint fits the
    /// chip at all.
    #[must_use]
    pub fn plans(&self, op: &Operator) -> Vec<ExecutePlan> {
        let combos = self.factor_combos(op);
        if combos.is_empty() {
            return Vec::new();
        }
        let max_par = combos.iter().map(PlanFactors::cores).max().unwrap_or(1);
        let floor = self.min_parallelism.min(max_par);
        let mut out = Vec::new();
        for f in combos {
            if f.cores() < floor {
                continue;
            }
            if let Some(plan) = self.build(op, f) {
                out.push(plan);
            }
        }
        out
    }

    /// Enumerates [`Partitioner::plans`] for a batch of operators,
    /// fanning the per-operator searches across a scoped work pool of
    /// `threads` workers (`0` = all available cores).
    ///
    /// Results come back **in input order** and are byte-identical at
    /// any thread count: each operator's enumeration is independent
    /// (the partitioner and cost model are immutable), and
    /// [`elk_par::par_map`] merges by input index. This is the fan-out
    /// the compiler's catalog construction builds on — callers should
    /// deduplicate operators by signature first so identical
    /// transformer layers are enumerated once.
    ///
    /// ```
    /// use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
    /// use elk_hw::presets;
    /// use elk_model::{zoo, Workload};
    /// use elk_partition::Partitioner;
    ///
    /// let sys = presets::ipu_pod4();
    /// let device = AnalyticDevice::of_chip(&sys.chip);
    /// let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
    /// let mut cfg = zoo::llama2_13b();
    /// cfg.layers = 1; // doctest-sized
    /// let graph = cfg.build(Workload::decode(16, 512), 4);
    /// let partitioner = Partitioner::new(&sys.chip, &cost);
    ///
    /// let ops: Vec<&elk_model::Operator> = graph.iter().collect();
    /// let parallel = partitioner.enumerate_all_par(&ops, 4);
    /// let sequential = partitioner.enumerate_all_par(&ops, 1);
    /// assert_eq!(parallel, sequential); // deterministic merge
    /// assert_eq!(parallel.len(), graph.len());
    /// ```
    #[must_use]
    pub fn enumerate_all_par(&self, ops: &[&Operator], threads: usize) -> Vec<Vec<ExecutePlan>> {
        elk_par::par_map(threads, ops, |_, op| self.plans(op))
    }

    /// Split-factor combinations for the operator class (before SRAM
    /// feasibility).
    fn factor_combos(&self, op: &Operator) -> Vec<PlanFactors> {
        let cores = self.chip.cores;
        let mesh_dims = match self.chip.topology {
            Topology::AllToAll { .. } => u32::MAX,
            Topology::Mesh2d { .. } => 2,
        };
        let mut combos = Vec::new();
        let mut push = |pb: u64, pm: u64, pk: u64, pn: u64, ga: u64, gb: u64| {
            let base = PlanFactors {
                pb,
                pm,
                pk,
                pn,
                ra: 1,
                rb: 1,
            };
            if base.cores() > cores || base.split_dims() > mesh_dims {
                return;
            }
            for ra in rep_candidates(ga) {
                for rb in rep_candidates(gb) {
                    combos.push(PlanFactors { ra, rb, ..base });
                }
            }
        };

        match *op.kind() {
            OpKind::MatMul { m, k, n } => {
                for pm in split_candidates(m, cores) {
                    for pk in [1, 2, 4].into_iter().filter(|&p| p <= k) {
                        for pn in split_candidates(n, cores) {
                            push(1, pm, pk, pn, pn, pm);
                        }
                    }
                }
            }
            OpKind::BatchMatMul { batch, m, k, n } => {
                let _ = k;
                for pb in split_candidates(batch, cores) {
                    for pm in split_candidates(m, 64) {
                        for pn in split_candidates(n, cores) {
                            push(pb, pm, 1, pn, pn, pm);
                        }
                    }
                }
            }
            OpKind::RowReduce { rows, cols, .. } => {
                for pm in split_candidates(rows, cores) {
                    for pk in [1, 2, 4].into_iter().filter(|&p| p <= cols) {
                        // Stationary scale vector is shared by the `pm`
                        // cores covering different rows; inputs are
                        // exclusive (ga = 1).
                        push(1, pm, pk, 1, 1, pm);
                    }
                }
            }
            OpKind::Elementwise { elems, .. } => {
                for pm in split_candidates(elems, cores) {
                    push(1, pm, 1, 1, 1, 1);
                }
            }
            OpKind::Gather {
                rows, table_rows, ..
            } => {
                let _ = rows;
                for pm in split_candidates(table_rows, cores) {
                    push(1, pm, 1, 1, 1, 1);
                }
            }
        }
        combos
    }

    /// Builds and feasibility-checks one plan.
    fn build(&self, op: &Operator, f: PlanFactors) -> Option<ExecutePlan> {
        let cores_used = f.cores();
        let moving = op.input_bytes();
        let stationary = op.stationary_bytes();
        let output = op.output_bytes();
        let (ga, gb) = sharing_groups(op.kind(), &f);
        debug_assert!(f.ra <= ga && f.rb <= gb);

        // Per-core footprints: `r` copies of each group tile spread over
        // the group (see crate docs).
        let mem_a = frac(moving, f.ra, cores_used);
        let mem_b = frac(stationary, f.rb, cores_used);
        let mem_out = frac(output, f.pk, cores_used);
        let exec_space = mem_a + mem_b + mem_out;
        if exec_space > self.chip.usable_sram_per_core() {
            return None;
        }

        // Inbound per-core traffic during execution: rotation of the
        // missing shares plus cross-core reduction of partials.
        let shift_a = frac(moving, ga - f.ra, cores_used);
        let shift_b = frac(stationary, gb - f.rb, cores_used);
        let reduce = if f.pk > 1 {
            frac(output, f.pk - 1, cores_used)
        } else {
            Bytes::ZERO
        };
        let gather_fetch = if matches!(op.kind(), OpKind::Gather { .. }) && cores_used > 1 {
            frac(output, 1, cores_used)
        } else {
            Bytes::ZERO
        };
        let shift_traffic = shift_a + shift_b + reduce + gather_fetch;

        // Rotation micro-steps and the per-chunk compute tile.
        let chunks = (ga / f.ra).max(gb / f.rb).max(f.pk).max(1);
        let tile = chunk_tile(op.kind(), &f, chunks);
        let compute_time = self.cost.tile_time(&tile) * chunks as f64;
        let shift_time = if shift_traffic.is_zero() {
            Seconds::ZERO
        } else {
            self.cost.link_time(shift_traffic / chunks) * chunks as f64
        };
        let exec_time = match self.chip.sram_contention {
            SramContention::Blocking => compute_time + shift_time,
            SramContention::Concurrent => compute_time.max(shift_time),
        };

        let preload_plans = self.preload_plans(op, &f, gb, cores_used);
        if preload_plans
            .last()
            .is_some_and(|p| p.preload_space > self.chip.usable_sram_per_core())
        {
            return None;
        }

        Some(ExecutePlan {
            factors: f,
            cores_used,
            exec_space,
            compute_time,
            shift_traffic,
            chunks,
            tile,
            exec_time,
            preload_plans,
        })
    }

    /// Preload-state alternatives for the stationary operand, sorted by
    /// decreasing footprint (max broadcast first).
    fn preload_plans(
        &self,
        op: &Operator,
        f: &PlanFactors,
        gb: u64,
        cores_used: u64,
    ) -> Vec<PreloadPlan> {
        let stationary = op.stationary_bytes();
        if !op.stationary().is_hbm() || stationary.is_zero() {
            return vec![PreloadPlan::empty()];
        }
        let hop = group_hop_factor(&self.chip.topology, gb);
        let mut plans: Vec<PreloadPlan> = rep_candidates(gb)
            .into_iter()
            .filter(|&rp| rp <= f.rb)
            .map(|rp| {
                let distribute_traffic = frac(stationary, f.rb - rp, cores_used);
                let distribute_time = if distribute_traffic.is_zero() {
                    Seconds::ZERO
                } else {
                    self.cost.link_time(distribute_traffic) * hop
                };
                PreloadPlan {
                    split_copies: rp,
                    preload_space: frac(stationary, rp, cores_used),
                    hbm_bytes: stationary,
                    noc_preload_bytes: stationary * rp,
                    distribute_traffic,
                    distribute_time,
                }
            })
            .collect();
        plans.sort_by_key(|p| std::cmp::Reverse(p.preload_space));
        plans.dedup_by_key(|p| p.preload_space);
        plans
    }
}

/// Sharing-group sizes `(ga, gb)` of the moving and stationary operands.
fn sharing_groups(kind: &OpKind, f: &PlanFactors) -> (u64, u64) {
    match kind {
        OpKind::MatMul { .. } | OpKind::BatchMatMul { .. } => (f.pn, f.pm),
        OpKind::RowReduce { .. } => (1, f.pm),
        OpKind::Elementwise { .. } | OpKind::Gather { .. } => (1, 1),
    }
}

/// The per-core, per-rotation-chunk tile handed to the cost model.
fn chunk_tile(kind: &OpKind, f: &PlanFactors, chunks: u64) -> TileShape {
    match *kind {
        OpKind::MatMul { m, k, n } => TileShape::matmul(
            m.div_ceil(f.pm),
            k.div_ceil(f.pk).div_ceil(chunks).max(1),
            n.div_ceil(f.pn),
        ),
        OpKind::BatchMatMul { batch, m, k, n } => TileShape::batch_matmul(
            batch.div_ceil(f.pb),
            m.div_ceil(f.pm),
            k.div_ceil(chunks).max(1),
            n.div_ceil(f.pn),
        ),
        OpKind::RowReduce { rows, cols, .. } => {
            TileShape::reduce(rows.div_ceil(f.pm), cols.div_ceil(f.pk))
        }
        OpKind::Elementwise { elems, arity, .. } => {
            TileShape::elementwise(elems.div_ceil(f.pm), arity)
        }
        OpKind::Gather { rows, width, .. } => TileShape::gather(rows.div_ceil(f.pm).max(1), width),
    }
}

/// `total · num / den`, rounded up — exact in u128.
fn frac(total: Bytes, num: u64, den: u64) -> Bytes {
    if num == 0 {
        return Bytes::ZERO;
    }
    let v = (total.get() as u128 * num as u128).div_ceil(den as u128);
    Bytes::new(v as u64)
}

/// Geometric candidate split factors for a dimension of size `dim`,
/// bounded by `cap` (usually the core count). Always contains 1 and the
/// maximum feasible split.
///
/// # Examples
///
/// ```
/// use elk_partition::split_candidates;
///
/// let c = split_candidates(3840, 1472);
/// assert_eq!(c[0], 1);
/// assert_eq!(*c.last().unwrap(), 1472);
/// assert!(c.len() < 25);
/// ```
#[must_use]
pub fn split_candidates(dim: u64, cap: u64) -> Vec<u64> {
    let hi = dim.min(cap).max(1);
    let mut v = Vec::new();
    let mut x = 1u64;
    while x < hi {
        v.push(x);
        x = (x * 3 / 2).max(x + 1);
    }
    v.push(hi);
    v
}

/// Replication candidates within a sharing group of `g` cores: powers
/// of four plus full broadcast, `{1, 4, 16, …} ∪ {g}`.
fn rep_candidates(g: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = 1u64;
    while x < g {
        v.push(x);
        x *= 4;
    }
    v.push(g);
    v
}

/// Average hop count for intra-group gathers on the topology (1 on
/// all-to-all; ~⅔·√g on a mesh where group members are laid out in a
/// near-square patch).
fn group_hop_factor(topology: &Topology, group: u64) -> f64 {
    match topology {
        Topology::AllToAll { .. } => 1.0,
        Topology::Mesh2d { .. } => (0.66 * (group as f64).sqrt()).max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_cost::AnalyticDevice;
    use elk_hw::presets;
    use elk_model::{zoo, Workload};

    fn fixtures() -> (elk_hw::SystemConfig, AnalyticDevice) {
        let sys = presets::ipu_pod4();
        let dev = AnalyticDevice::of_chip(&sys.chip);
        (sys, dev)
    }

    #[test]
    fn every_zoo_operator_has_plans() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        for cfg in [zoo::llama2_13b(), zoo::opt_30b()] {
            let g = cfg.build(Workload::decode(32, 2048), 4);
            // Layer 0 + head/embed cover all distinct shapes.
            let span = g.layer_spans()[0].ops.clone();
            for op in &g.ops()[span] {
                let plans = p.plans(op);
                assert!(!plans.is_empty(), "{}: no plans", op.name());
            }
        }
    }

    #[test]
    fn plans_fit_sram_and_cores() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        for op in g.ops().iter().take(60) {
            for plan in p.plans(op) {
                assert!(plan.exec_space <= sys.chip.usable_sram_per_core());
                assert!(plan.cores_used <= sys.chip.cores);
                assert!(plan.exec_time > Seconds::ZERO);
            }
        }
    }

    #[test]
    fn memory_time_tradeoff_exists_for_weight_matmuls() {
        // Fig. 5: faster plans need more execution space.
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let qkv = g
            .iter()
            .find(|o| o.name() == "l0.attn_qkv")
            .expect("qkv op");
        let plans = p.plans(qkv);
        let fastest = plans.iter().min_by_key(|p| p.exec_time).expect("non-empty");
        let smallest = plans
            .iter()
            .min_by_key(|p| p.exec_space)
            .expect("non-empty");
        assert!(
            fastest.exec_space > smallest.exec_space,
            "fastest plan ({}) should use more memory than smallest ({})",
            fastest.exec_space,
            smallest.exec_space
        );
        assert!(fastest.exec_time < smallest.exec_time);
    }

    #[test]
    fn replication_trades_shift_traffic_for_space() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let qkv = g.iter().find(|o| o.name() == "l0.attn_qkv").unwrap();
        let plans = p.plans(qkv);
        // Fix a split; vary replication.
        let mut by_factors: Vec<&ExecutePlan> = plans
            .iter()
            .filter(|p| p.factors.pm == 4 && p.factors.pk == 1)
            .collect();
        by_factors.sort_by_key(|p| p.exec_space);
        if by_factors.len() >= 2 {
            let small = by_factors.first().unwrap();
            let large = by_factors.last().unwrap();
            assert!(small.shift_traffic >= large.shift_traffic);
        }
    }

    #[test]
    fn preload_plans_ordered_and_consistent() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let qkv = g.iter().find(|o| o.name() == "l0.attn_qkv").unwrap();
        for plan in p.plans(qkv) {
            let pl = &plan.preload_plans;
            assert!(!pl.is_empty());
            for w in pl.windows(2) {
                assert!(w[0].preload_space > w[1].preload_space);
                // Less broadcast => more distribution.
                assert!(w[0].distribute_time <= w[1].distribute_time);
            }
            // Max broadcast at execute-state replication: no distribution.
            assert_eq!(plan.max_preload().distribute_traffic, Bytes::ZERO);
            for q in pl {
                assert_eq!(q.hbm_bytes, qkv.stationary_bytes());
            }
        }
    }

    #[test]
    fn kv_cache_ops_have_fixed_preload_footprint() {
        // Decode attention KV slices are exclusive per core (gb = 1): a
        // single preload plan whose space equals the execute-state slice.
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let scores = g.iter().find(|o| o.name() == "l0.attn_scores").unwrap();
        for plan in p.plans(scores) {
            if plan.factors.pm == 1 {
                assert_eq!(plan.preload_plans.len(), 1);
            }
        }
    }

    #[test]
    fn onchip_operators_have_empty_preload() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::training_forward(2, 1024), 4);
        let scores = g.iter().find(|o| o.name() == "l0.attn_scores").unwrap();
        let plans = p.plans(scores);
        assert!(!plans.is_empty());
        for plan in plans {
            assert_eq!(plan.preload_plans.len(), 1);
            assert!(plan.max_preload().hbm_bytes.is_zero());
        }
    }

    #[test]
    fn mesh_restricts_split_dimensionality() {
        let mut sys = presets::ipu_pod4_mesh();
        sys.chip.cores = 1472;
        let dev = AnalyticDevice::of_chip(&sys.chip);
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
        let scores = g.iter().find(|o| o.name() == "l0.attn_scores").unwrap();
        for plan in p.plans(scores) {
            assert!(plan.factors.split_dims() <= 2, "{}", plan.factors);
        }
    }

    #[test]
    fn batch_enumeration_is_thread_count_invariant() {
        let (sys, dev) = fixtures();
        let p = Partitioner::new(&sys.chip, &dev);
        let g = zoo::llama2_13b().build(Workload::decode(16, 1024), 4);
        let span = g.layer_spans()[0].ops.clone();
        let ops: Vec<&Operator> = g.ops()[span].iter().collect();
        let seq = p.enumerate_all_par(&ops, 1);
        assert_eq!(seq.len(), ops.len());
        for threads in [2, 8] {
            assert_eq!(p.enumerate_all_par(&ops, threads), seq);
        }
        // The fan-out computes exactly what per-op enumeration does.
        for (op, plans) in ops.iter().zip(&seq) {
            assert_eq!(&p.plans(op), plans);
        }
    }

    #[test]
    fn split_candidates_bounds() {
        assert_eq!(split_candidates(1, 1472), vec![1]);
        let c = split_candidates(32, 1472);
        assert!(c.contains(&1) && c.contains(&32));
        assert!(c.iter().all(|&x| x <= 32));
    }

    #[test]
    fn frac_rounds_up_exactly() {
        assert_eq!(frac(Bytes::new(10), 1, 3), Bytes::new(4));
        assert_eq!(frac(Bytes::new(10), 0, 3), Bytes::ZERO);
        assert_eq!(
            frac(Bytes::new(u64::MAX / 2), 2, 1),
            Bytes::new(u64::MAX - 1)
        );
    }
}
