use std::fmt;

use serde::{Deserialize, Serialize};

/// Operator class as seen by the cost model.
///
/// Mirrors the paper's per-operator-type profiling (Fig. 12 fits one model
/// each for matrix multiplication, reduce, and element-wise operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Dense (possibly batched) matrix multiply on the accumulation units.
    MatMul,
    /// Row-wise reductions (softmax, norms) on the vector units.
    Reduce,
    /// Element-wise maps on the vector units.
    Elementwise,
    /// Memory-movement (gather / copy) work.
    Gather,
}

impl OpClass {
    /// All classes, for profiling loops.
    pub const ALL: [OpClass; 4] = [
        OpClass::MatMul,
        OpClass::Reduce,
        OpClass::Elementwise,
        OpClass::Gather,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The shape of one per-core tile, the input of the cost model.
///
/// Interpretation of the dimensions by class:
///
/// | class         | `batch`            | `d0`   | `d1`  | `d2` |
/// |---------------|--------------------|--------|-------|------|
/// | `MatMul`      | independent GEMMs  | m      | k     | n    |
/// | `Reduce`      | 1                  | rows   | cols  | —    |
/// | `Elementwise` | 1                  | elems  | arity | —    |
/// | `Gather`      | 1                  | rows   | width | —    |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Operator class.
    pub class: OpClass,
    /// Independent repetitions of the `d0 × d1 × d2` work unit.
    pub batch: u64,
    /// First dimension.
    pub d0: u64,
    /// Second dimension.
    pub d1: u64,
    /// Third dimension (MatMul only).
    pub d2: u64,
}

impl TileShape {
    /// A plain `m×k×n` matrix-multiply tile.
    #[must_use]
    pub fn matmul(m: u64, k: u64, n: u64) -> Self {
        TileShape {
            class: OpClass::MatMul,
            batch: 1,
            d0: m,
            d1: k,
            d2: n,
        }
    }

    /// A batched matrix-multiply tile (`batch` independent `m×k×n`).
    #[must_use]
    pub fn batch_matmul(batch: u64, m: u64, k: u64, n: u64) -> Self {
        TileShape {
            class: OpClass::MatMul,
            batch,
            d0: m,
            d1: k,
            d2: n,
        }
    }

    /// A `rows×cols` row-reduction tile.
    #[must_use]
    pub fn reduce(rows: u64, cols: u64) -> Self {
        TileShape {
            class: OpClass::Reduce,
            batch: 1,
            d0: rows,
            d1: cols,
            d2: 0,
        }
    }

    /// An element-wise tile over `elems` elements with `arity` inputs.
    #[must_use]
    pub fn elementwise(elems: u64, arity: u64) -> Self {
        TileShape {
            class: OpClass::Elementwise,
            batch: 1,
            d0: elems,
            d1: arity.max(1),
            d2: 0,
        }
    }

    /// A gather tile of `rows` rows of `width` elements.
    #[must_use]
    pub fn gather(rows: u64, width: u64) -> Self {
        TileShape {
            class: OpClass::Gather,
            batch: 1,
            d0: rows,
            d1: width,
            d2: 0,
        }
    }

    /// Nominal floating-point work of the tile.
    #[must_use]
    pub fn flops(&self) -> f64 {
        let b = self.batch as f64;
        match self.class {
            OpClass::MatMul => b * 2.0 * self.d0 as f64 * self.d1 as f64 * self.d2 as f64,
            OpClass::Reduce => b * 5.0 * self.d0 as f64 * self.d1 as f64,
            OpClass::Elementwise => b * 3.0 * self.d0 as f64 * self.d1 as f64,
            OpClass::Gather => 0.0,
        }
    }

    /// SRAM bytes touched by the tile (all operands once, `elem_bytes` per
    /// element).
    #[must_use]
    pub fn bytes_touched(&self, elem_bytes: u64) -> f64 {
        let b = self.batch as f64;
        let e = elem_bytes as f64;
        let elems = match self.class {
            OpClass::MatMul => {
                let (m, k, n) = (self.d0 as f64, self.d1 as f64, self.d2 as f64);
                m * k + k * n + m * n
            }
            OpClass::Reduce => 2.0 * self.d0 as f64 * self.d1 as f64,
            OpClass::Elementwise => (self.d1 as f64 + 1.0) * self.d0 as f64,
            OpClass::Gather => 2.0 * self.d0 as f64 * self.d1 as f64,
        };
        b * elems * e
    }

    /// Feature vector for the learned model. Chosen so a linear leaf can
    /// express `time ≈ α·flops + β·bytes + per-dim overheads + γ`.
    #[must_use]
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.flops() / 1e6,
            self.bytes_touched(2) / 1e3,
            self.batch as f64,
            self.d0 as f64,
            self.d1 as f64,
            self.d2 as f64,
            (self.batch * self.d0) as f64,
        ]
    }

    /// Number of features produced by [`TileShape::features`].
    pub const FEATURE_COUNT: usize = 7;
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}x{}x{}x{}]",
            self.class, self.batch, self.d0, self.d1, self.d2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops() {
        let t = TileShape::matmul(4, 8, 16);
        assert_eq!(t.flops(), 2.0 * 4.0 * 8.0 * 16.0);
        let b = TileShape::batch_matmul(3, 4, 8, 16);
        assert_eq!(b.flops(), 3.0 * t.flops());
    }

    #[test]
    fn features_len_matches_constant() {
        for t in [
            TileShape::matmul(1, 2, 3),
            TileShape::reduce(4, 5),
            TileShape::elementwise(10, 2),
            TileShape::gather(3, 7),
        ] {
            assert_eq!(t.features().len(), TileShape::FEATURE_COUNT);
        }
    }

    #[test]
    fn gather_is_pure_memory() {
        let t = TileShape::gather(16, 128);
        assert_eq!(t.flops(), 0.0);
        assert!(t.bytes_touched(2) > 0.0);
    }
}
