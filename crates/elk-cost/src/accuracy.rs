use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use elk_units::Bytes;

use crate::profile::random_shape;
use crate::{AnalyticDevice, CostModel, OpClass};

/// Predicted-vs-measured evaluation of a cost model on held-out samples —
/// the data behind the paper's Fig. 12 scatter plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// What was evaluated (operator class name or `"Transfer"`).
    pub subject: String,
    /// `(predicted, measured)` pairs in microseconds.
    pub pairs: Vec<(f64, f64)>,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Coefficient of determination in log space (scatter plots are
    /// log-log, matching Fig. 12's axes).
    pub r2_log: f64,
}

impl AccuracyReport {
    /// Evaluates `model` against `device` on `n` held-out tiles of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn for_class(
        model: &dyn CostModel,
        device: &AnalyticDevice,
        class: OpClass,
        n: usize,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one evaluation sample");
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let s = random_shape(class, &mut rng);
                (
                    model.tile_time(&s).as_micros(),
                    device.tile_time(&s).as_micros(),
                )
            })
            .collect();
        Self::from_pairs(class.to_string(), pairs)
    }

    /// Evaluates the link-transfer model on `n` held-out volumes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn for_transfer(
        model: &dyn CostModel,
        device: &AnalyticDevice,
        n: usize,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one evaluation sample");
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let exp = rng.gen_range(6.0..=24.0f64);
                let v = Bytes::new(2f64.powf(exp) as u64);
                (
                    model.link_time(v).as_micros(),
                    device.link_time(v).as_micros(),
                )
            })
            .collect();
        Self::from_pairs("Transfer".to_string(), pairs)
    }

    /// Builds a report from raw `(predicted, measured)` microsecond pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    #[must_use]
    pub fn from_pairs(subject: String, pairs: Vec<(f64, f64)>) -> Self {
        assert!(!pairs.is_empty(), "empty accuracy sample");
        let mape = pairs
            .iter()
            .map(|&(p, m)| ((p - m) / m.max(1e-12)).abs())
            .sum::<f64>()
            / pairs.len() as f64;

        let logs: Vec<(f64, f64)> = pairs
            .iter()
            .map(|&(p, m)| (p.max(1e-9).ln(), m.max(1e-9).ln()))
            .collect();
        let mean_m = logs.iter().map(|&(_, m)| m).sum::<f64>() / logs.len() as f64;
        let ss_tot: f64 = logs.iter().map(|&(_, m)| (m - mean_m).powi(2)).sum();
        let ss_res: f64 = logs.iter().map(|&(p, m)| (m - p).powi(2)).sum();
        let r2_log = if ss_tot <= 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        AccuracyReport {
            subject,
            pairs,
            mape,
            r2_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LearnedCostModel, ProfileConfig};
    use elk_hw::presets;

    #[test]
    fn learned_model_achieves_fig12_quality() {
        // The paper's Fig. 12 shows points tightly hugging the diagonal;
        // we require log-R² ≥ 0.95 and MAPE ≤ 25% for every panel.
        let device = AnalyticDevice::of_chip(&presets::ipu_pod4().chip).with_noise(0.05);
        let model = LearnedCostModel::fit(&device, &ProfileConfig::default());
        for class in OpClass::ALL {
            let rep = AccuracyReport::for_class(&model, &device, class, 300, 4242);
            assert!(rep.r2_log > 0.95, "{class}: R²={:.3}", rep.r2_log);
            assert!(rep.mape < 0.25, "{class}: MAPE={:.3}", rep.mape);
        }
        let rep = AccuracyReport::for_transfer(&model, &device, 200, 4242);
        assert!(rep.r2_log > 0.95, "transfer R²={:.3}", rep.r2_log);
    }

    #[test]
    fn perfect_predictions_have_r2_one() {
        let pairs: Vec<(f64, f64)> = (1..50).map(|i| (i as f64, i as f64)).collect();
        let rep = AccuracyReport::from_pairs("x".into(), pairs);
        assert!((rep.r2_log - 1.0).abs() < 1e-12);
        assert_eq!(rep.mape, 0.0);
    }
}
