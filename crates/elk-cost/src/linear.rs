use serde::{Deserialize, Serialize};

/// An ordinary-least-squares linear model with a small ridge term for
/// numerical stability; the leaf model of [`crate::LinearTreeModel`] and
/// the per-link transfer model of §4.3.
///
/// # Examples
///
/// ```
/// use elk_cost::LinearModel;
///
/// // y = 2·x0 + 1
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 1.0).collect();
/// let m = LinearModel::fit(&xs, &ys);
/// assert!((m.predict(&[10.0]) - 21.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    coef: Vec<f64>,
    intercept: f64,
}

impl LinearModel {
    /// A constant model.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        LinearModel {
            coef: Vec::new(),
            intercept: value,
        }
    }

    /// Fits coefficients by least squares (normal equations with ridge
    /// regularization `λ = 1e-8·n`).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length, `ys` is empty, or rows of
    /// `xs` have inconsistent widths.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!ys.is_empty(), "cannot fit on an empty sample");
        let d = xs[0].len();
        assert!(
            xs.iter().all(|x| x.len() == d),
            "inconsistent feature widths"
        );
        if d == 0 {
            return LinearModel::constant(ys.iter().sum::<f64>() / ys.len() as f64);
        }

        // Augmented design matrix [x | 1]; normal equations A·w = b.
        let n = d + 1;
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![0.0f64; n];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..n {
                let xi = if i < d { x[i] } else { 1.0 };
                b[i] += xi * y;
                for j in 0..n {
                    let xj = if j < d { x[j] } else { 1.0 };
                    a[i][j] += xi * xj;
                }
            }
        }
        let ridge = 1e-8 * ys.len() as f64;
        for (i, row) in a.iter_mut().enumerate().take(d) {
            row[i] += ridge;
        }

        let w = solve(a, b);
        LinearModel {
            intercept: w[d],
            coef: w.into_iter().take(d).collect(),
        }
    }

    /// Predicts the target for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the fitted feature count.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert!(
            x.len() >= self.coef.len(),
            "feature vector too short: {} < {}",
            x.len(),
            self.coef.len()
        );
        self.intercept + self.coef.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }

    /// Fitted coefficients (without intercept).
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Gaussian elimination with partial pivoting. Singular systems fall back
/// to the zero solution in the affected column (the ridge term makes this
/// effectively unreachable).
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        if a[pivot][col].abs() < 1e-300 {
            continue;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            for (rv, pv) in lower[0][col..].iter_mut().zip(&upper[col][col..]) {
                *rv -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        if a[col][col].abs() < 1e-300 {
            x[col] = 0.0;
            continue;
        }
        let mut s = b[col];
        for k in col + 1..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_multivariate_plane() {
        // y = 3·x0 - 2·x1 + 5
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-6);
        assert!((m.coefficients()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn constant_fallback_for_zero_features() {
        let xs = vec![vec![], vec![], vec![]];
        let ys = vec![1.0, 2.0, 3.0];
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.predict(&[]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_features_do_not_explode() {
        // x1 = 2·x0 exactly; ridge keeps the solution finite.
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| 4.0 * i as f64).collect();
        let m = LinearModel::fit(&xs, &ys);
        let pred = m.predict(&[10.0, 20.0]);
        assert!((pred - 40.0).abs() < 1e-3, "pred {pred}");
        assert!(m.coefficients().iter().all(|c| c.is_finite()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = LinearModel::fit(&[vec![1.0]], &[1.0, 2.0]);
    }
}
