//! Cost models for per-core execution and inter-core transfer (§4.3).
//!
//! The paper profiles randomly-shaped tiles on a real IPU and fits a
//! *linear-tree* regression model per operator type, plus a per-link linear
//! model for transfers (Fig. 12). This workspace has no IPU, so the crate
//! supplies both halves of that methodology:
//!
//! * [`AnalyticDevice`] — a shape-aware analytic cycle model standing in
//!   for the hardware. It exposes deterministic measurement noise, so
//!   "profiling" it produces realistic imperfect samples.
//! * [`LinearTreeModel`] / [`LearnedCostModel`] — the same model family the
//!   paper uses (its reference \[10\]): a regression tree whose leaves are ordinary
//!   least-squares linear models over tile-shape features.
//!
//! The compiler plans with the *learned* model while the simulator charges
//! the *analytic* model — mirroring how the paper's compiler predictions
//! differ from its hardware measurements.
//!
//! ```
//! use elk_cost::{AnalyticDevice, CostModel, LearnedCostModel, ProfileConfig, TileShape};
//! use elk_hw::presets;
//!
//! let device = AnalyticDevice::of_chip(&presets::ipu_pod4().chip);
//! let learned = LearnedCostModel::fit(&device, &ProfileConfig::default());
//! let tile = TileShape::matmul(32, 5120, 128);
//! let predicted = learned.tile_time(&tile);
//! let measured = device.tile_time(&tile);
//! let ratio = predicted.as_secs() / measured.as_secs();
//! assert!((0.5..2.0).contains(&ratio));
//! ```

#![warn(missing_docs)]

mod accuracy;
mod analytic;
mod linear;
mod profile;
mod shape;
mod tree;

pub use accuracy::AccuracyReport;
pub use analytic::AnalyticDevice;
pub use linear::LinearModel;
pub use profile::{LearnedCostModel, ProfileConfig};
pub use shape::{OpClass, TileShape};
pub use tree::{LinearTreeModel, TreeParams};

use elk_units::{Bytes, Seconds};

/// Estimates per-core tile execution time and inter-core link transfer
/// time. Implemented by the analytic ground truth and the learned model.
pub trait CostModel: Send + Sync + std::fmt::Debug {
    /// Execution time of one tile on one core.
    fn tile_time(&self, shape: &TileShape) -> Seconds;

    /// Time to move `volume` over one inter-core link.
    fn link_time(&self, volume: Bytes) -> Seconds;
}
