use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use elk_units::{Bytes, Seconds};

use crate::{
    AnalyticDevice, CostModel, LinearModel, LinearTreeModel, OpClass, TileShape, TreeParams,
};

/// Profiling configuration: how many random tiles to "measure" per
/// operator class, over which shape ranges (§4.3: "we randomly generate
/// tiles with varied shapes, and run each tile using one core on the
/// target device").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Samples per operator class.
    pub samples_per_class: usize,
    /// Samples for the link-transfer model.
    pub link_samples: usize,
    /// RNG seed for shape generation.
    pub seed: u64,
    /// Tree hyper-parameters.
    pub tree: TreeParams,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            samples_per_class: 4000,
            link_samples: 200,
            seed: 7,
            tree: TreeParams {
                max_depth: 8,
                min_leaf: 16,
                quantiles: 10,
            },
        }
    }
}

/// Draws a random tile shape covering the ranges the partitioner
/// generates on IPU-class cores (per-core tiles of decode/prefill LLM
/// operators and diffusion transformers).
pub(crate) fn random_shape(class: OpClass, rng: &mut StdRng) -> TileShape {
    fn log_uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
        let (lo_f, hi_f) = ((lo as f64).ln(), (hi as f64).ln());
        (rng.gen_range(lo_f..=hi_f).exp().round() as u64).clamp(lo, hi)
    }
    match class {
        OpClass::MatMul => TileShape {
            class,
            batch: log_uniform(rng, 1, 64),
            d0: log_uniform(rng, 1, 256),
            d1: log_uniform(rng, 4, 8192),
            d2: log_uniform(rng, 1, 1024),
        },
        OpClass::Reduce => TileShape::reduce(log_uniform(rng, 1, 4096), log_uniform(rng, 4, 8192)),
        OpClass::Elementwise => {
            TileShape::elementwise(log_uniform(rng, 8, 262_144), rng.gen_range(1..=3))
        }
        OpClass::Gather => TileShape::gather(log_uniform(rng, 1, 2048), log_uniform(rng, 8, 8192)),
    }
}

/// The compiler-facing cost model: one linear tree per operator class plus
/// a linear per-link transfer model, fitted to measurements of an
/// [`AnalyticDevice`].
///
/// # Examples
///
/// ```
/// use elk_cost::{AnalyticDevice, CostModel, LearnedCostModel, ProfileConfig, TileShape};
/// use elk_hw::presets;
///
/// let device = AnalyticDevice::of_chip(&presets::ipu_pod4().chip).with_noise(0.05);
/// let model = LearnedCostModel::fit(&device, &ProfileConfig::default());
/// let t = model.tile_time(&TileShape::matmul(32, 1024, 64));
/// assert!(t.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedCostModel {
    matmul: LinearTreeModel,
    reduce: LinearTreeModel,
    elementwise: LinearTreeModel,
    gather: LinearTreeModel,
    link: LinearModel,
    floor: Seconds,
}

impl LearnedCostModel {
    /// Profiles `device` and fits the per-class trees and link model.
    #[must_use]
    pub fn fit(device: &AnalyticDevice, cfg: &ProfileConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut fit_class = |class: OpClass| {
            let mut xs = Vec::with_capacity(cfg.samples_per_class);
            let mut ys = Vec::with_capacity(cfg.samples_per_class);
            for _ in 0..cfg.samples_per_class {
                let shape = random_shape(class, &mut rng);
                xs.push(shape.features());
                ys.push(device.tile_time(&shape).as_micros());
            }
            LinearTreeModel::fit(&xs, &ys, &cfg.tree)
        };
        let matmul = fit_class(OpClass::MatMul);
        let reduce = fit_class(OpClass::Reduce);
        let elementwise = fit_class(OpClass::Elementwise);
        let gather = fit_class(OpClass::Gather);

        let mut lx = Vec::with_capacity(cfg.link_samples);
        let mut ly = Vec::with_capacity(cfg.link_samples);
        for _ in 0..cfg.link_samples {
            let exp = rng.gen_range(6.0..=24.0f64);
            let volume = Bytes::new(2f64.powf(exp) as u64);
            lx.push(vec![volume.as_f64() / 1e3]);
            ly.push(device.link_time(volume).as_micros());
        }
        let link = LinearModel::fit(&lx, &ly);

        LearnedCostModel {
            matmul,
            reduce,
            elementwise,
            gather,
            link,
            floor: Seconds::new(50e-9),
        }
    }

    fn tree(&self, class: OpClass) -> &LinearTreeModel {
        match class {
            OpClass::MatMul => &self.matmul,
            OpClass::Reduce => &self.reduce,
            OpClass::Elementwise => &self.elementwise,
            OpClass::Gather => &self.gather,
        }
    }
}

impl CostModel for LearnedCostModel {
    fn tile_time(&self, shape: &TileShape) -> Seconds {
        let us = self.tree(shape.class).predict(&shape.features());
        Seconds::from_micros(us.max(0.0)).max(self.floor)
    }

    fn link_time(&self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            return Seconds::ZERO;
        }
        let us = self.link.predict(&[volume.as_f64() / 1e3]);
        Seconds::from_micros(us.max(0.0)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;

    fn device() -> AnalyticDevice {
        AnalyticDevice::of_chip(&presets::ipu_pod4().chip).with_noise(0.05)
    }

    fn model() -> LearnedCostModel {
        LearnedCostModel::fit(&device(), &ProfileConfig::default())
    }

    #[test]
    fn predictions_track_ground_truth_on_held_out_shapes() {
        let dev = device();
        let m = model();
        let mut rng = StdRng::seed_from_u64(999); // unseen during fit
        for class in OpClass::ALL {
            let mut ratios = Vec::new();
            for _ in 0..200 {
                let s = random_shape(class, &mut rng);
                let pred = m.tile_time(&s).as_secs();
                let meas = dev.tile_time(&s).as_secs();
                ratios.push(pred / meas);
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios[ratios.len() / 2];
            assert!(
                (0.8..1.25).contains(&median),
                "{class}: median pred/meas ratio {median}"
            );
        }
    }

    #[test]
    fn link_model_is_accurate() {
        let dev = device();
        let m = model();
        for kb in [1u64, 16, 256, 4096] {
            let v = Bytes::kib(kb);
            let pred = m.link_time(v).as_secs();
            let meas = dev.link_time(v).as_secs();
            let ratio = pred / meas;
            assert!((0.7..1.4).contains(&ratio), "{kb} KiB ratio {ratio}");
        }
    }

    #[test]
    fn monotone_in_volume_for_typical_sizes() {
        let m = model();
        let t1 = m.tile_time(&TileShape::matmul(16, 512, 64));
        let t2 = m.tile_time(&TileShape::matmul(32, 2048, 128));
        assert!(t2 > t1);
    }

    #[test]
    fn zero_volume_transfers_are_free() {
        assert_eq!(model().link_time(Bytes::ZERO), Seconds::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LearnedCostModel::fit(&device(), &ProfileConfig::default());
        let b = LearnedCostModel::fit(&device(), &ProfileConfig::default());
        let s = TileShape::matmul(17, 444, 31);
        assert_eq!(a.tile_time(&s), b.tile_time(&s));
    }
}
