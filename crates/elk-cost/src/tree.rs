use serde::{Deserialize, Serialize};

use crate::LinearModel;

/// Hyper-parameters of the linear-tree fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (0 = a single linear leaf).
    pub max_depth: u32,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Candidate split quantiles per feature.
    pub quantiles: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 5,
            min_leaf: 24,
            quantiles: 8,
        }
    }
}

/// A regression tree with linear-model leaves — the paper's cost-model
/// family ("we fit a linear tree model using the tile shapes as inputs and
/// the profiled execution times as outputs", §4.3).
///
/// Splits are chosen CART-style by variance reduction over candidate
/// feature quantiles; each leaf then fits an ordinary-least-squares
/// [`LinearModel`] on its samples.
///
/// # Examples
///
/// ```
/// use elk_cost::{LinearTreeModel, TreeParams};
///
/// // Piecewise-linear target: slope changes at x = 50.
/// let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = (0..200)
///     .map(|i| if i < 50 { i as f64 } else { 5.0 * i as f64 - 200.0 })
///     .collect();
/// let tree = LinearTreeModel::fit(&xs, &ys, &TreeParams::default());
/// assert!((tree.predict(&[150.0]) - 550.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearTreeModel {
    root: Node,
    leaves: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        model: LinearModel,
        /// Observed target range of the leaf's training samples, widened;
        /// linear leaves clamp to it so extrapolation cannot run away
        /// (or go negative) on out-of-range inputs.
        lo: f64,
        hi: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl LinearTreeModel {
    /// Fits a tree to `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length or are empty.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &TreeParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!ys.is_empty(), "cannot fit on an empty sample");
        let idx: Vec<usize> = (0..ys.len()).collect();
        let mut leaves = 0;
        let root = build(xs, ys, &idx, params, 0, &mut leaves);
        LinearTreeModel { root, leaves }
    }

    /// Predicts the target for a feature vector.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { model, lo, hi } => return model.predict(x).clamp(*lo, *hi),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves in the fitted tree.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }
}

fn build(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    params: &TreeParams,
    depth: u32,
    leaves: &mut usize,
) -> Node {
    if depth >= params.max_depth || idx.len() < 2 * params.min_leaf {
        return leaf(xs, ys, idx, leaves);
    }
    match best_split(xs, ys, idx, params) {
        None => leaf(xs, ys, idx, leaves),
        Some((feature, threshold)) => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            if l.len() < params.min_leaf || r.len() < params.min_leaf {
                return leaf(xs, ys, idx, leaves);
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, ys, &l, params, depth + 1, leaves)),
                right: Box::new(build(xs, ys, &r, params, depth + 1, leaves)),
            }
        }
    }
}

fn leaf(xs: &[Vec<f64>], ys: &[f64], idx: &[usize], leaves: &mut usize) -> Node {
    *leaves += 1;
    let sub_x: Vec<Vec<f64>> = idx.iter().map(|&i| xs[i].clone()).collect();
    let sub_y: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let lo = sub_y.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sub_y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Node::Leaf {
        model: LinearModel::fit(&sub_x, &sub_y),
        lo: lo / 2.0,
        hi: hi * 2.0,
    }
}

/// Variance-reduction split search over per-feature quantile candidates.
fn best_split(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    params: &TreeParams,
) -> Option<(usize, f64)> {
    let d = xs[idx[0]].len();
    let total_sse = sse(ys, idx);
    let mut best: Option<(usize, f64, f64)> = None;

    // `f` is a feature index into every sample's row, not a position in
    // one slice — a range loop is the natural shape here.
    #[allow(clippy::needless_range_loop)]
    for f in 0..d {
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for q in 1..=params.quantiles {
            let pos = q * (vals.len() - 1) / (params.quantiles + 1);
            let thr = vals[pos.min(vals.len() - 2)];
            let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| xs[i][f] <= thr);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let score = sse(ys, &l) + sse(ys, &r);
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((f, thr, score));
            }
        }
    }
    best.filter(|&(_, _, s)| s < total_sse * 0.999)
        .map(|(f, t, _)| (f, t))
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    let n = idx.len() as f64;
    let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / n;
    idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_linear_target_needs_one_leaf_quality() {
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 0.5 * x[1] + 1.0).collect();
        let tree = LinearTreeModel::fit(&xs, &ys, &TreeParams::default());
        for x in &xs {
            let err = (tree.predict(x) - (3.0 * x[0] + 0.5 * x[1] + 1.0)).abs();
            assert!(err < 1e-3, "err {err}");
        }
    }

    #[test]
    fn depth_zero_is_single_linear_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let tree = LinearTreeModel::fit(
            &xs,
            &ys,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn splits_capture_regime_changes() {
        // Two regimes with different slopes AND different feature use.
        let xs: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 100) as f64, (i / 100) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                if x[1] < 2.0 {
                    10.0 * x[0]
                } else {
                    2.0 * x[0] + 300.0
                }
            })
            .collect();
        let tree = LinearTreeModel::fit(&xs, &ys, &TreeParams::default());
        assert!(tree.leaf_count() >= 2);
        assert!((tree.predict(&[50.0, 0.0]) - 500.0).abs() < 10.0);
        assert!((tree.predict(&[50.0, 3.0]) - 400.0).abs() < 10.0);
    }

    #[test]
    fn min_leaf_respected() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| (i * i) as f64).collect();
        let params = TreeParams {
            min_leaf: 30,
            ..TreeParams::default()
        };
        let tree = LinearTreeModel::fit(&xs, &ys, &params);
        // 40 samples cannot split into two leaves of ≥30.
        assert_eq!(tree.leaf_count(), 1);
    }
}
