use serde::{Deserialize, Serialize};

use elk_hw::ChipConfig;
use elk_units::{ByteRate, Bytes, FlopRate, Seconds};

use crate::{CostModel, OpClass, TileShape};

/// Analytic ground-truth device: a shape-aware per-core cycle model that
/// stands in for profiling real hardware.
///
/// Execution time is the max of a compute term (peak rate derated by a
/// shape-efficiency factor: small or misaligned dimensions waste systolic
/// and SIMD lanes) and an SRAM-bandwidth term, plus a fixed per-tile launch
/// overhead. A deterministic multiplicative noise term (hash of the shape)
/// models measurement variance, so fitting against this device reproduces
/// the imperfect-profile conditions of the paper's Fig. 12.
///
/// # Examples
///
/// ```
/// use elk_cost::{AnalyticDevice, CostModel, TileShape};
/// use elk_hw::presets;
///
/// let dev = AnalyticDevice::of_chip(&presets::ipu_pod4().chip);
/// // A decode GEMV tile is SRAM-bandwidth-bound, not FLOP-bound:
/// let gemv = TileShape::batch_matmul(4, 1, 128, 512);
/// let big = TileShape::matmul(64, 512, 64);
/// assert!(dev.tile_time(&gemv) < dev.tile_time(&big));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticDevice {
    matmul_rate: FlopRate,
    vector_rate: FlopRate,
    sram_bw: ByteRate,
    link_bw: ByteRate,
    link_latency: Seconds,
    tile_overhead: Seconds,
    noise_sigma: f64,
    noise_seed: u64,
}

impl AnalyticDevice {
    /// Builds the device model from a chip description, noise-free.
    #[must_use]
    pub fn of_chip(chip: &ChipConfig) -> Self {
        AnalyticDevice {
            matmul_rate: chip.matmul_rate_per_core,
            vector_rate: chip.vector_rate_per_core,
            sram_bw: chip.sram_bw_per_core,
            link_bw: chip.topology.shift_bandwidth(),
            link_latency: Seconds::new(600e-9),
            tile_overhead: Seconds::new(1.0e-6),
            noise_sigma: 0.0,
            noise_seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Enables deterministic measurement noise with relative magnitude
    /// `sigma` (e.g. `0.05` for ±5%).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or ≥ 1.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&sigma),
            "noise sigma must be in [0,1), got {sigma}"
        );
        self.noise_sigma = sigma;
        self
    }

    /// Sets the noise seed (different seeds model different profiling runs).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// Per-link latency of the interconnect model.
    #[must_use]
    pub fn link_latency(&self) -> Seconds {
        self.link_latency
    }

    /// The shape-efficiency factor in `(0, 0.95]`: how much of the peak
    /// rate the tile's dimensions can sustain.
    #[must_use]
    pub fn efficiency(&self, shape: &TileShape) -> f64 {
        // Each dimension below the unit's native granularity wastes lanes;
        // dim/(dim + c) saturates toward 1 for large dims.
        fn dim_eff(d: u64, native: f64) -> f64 {
            let d = d as f64;
            d / (d + native)
        }
        let eff = match shape.class {
            OpClass::MatMul => {
                0.95 * dim_eff(shape.d0, 4.0) * dim_eff(shape.d1, 24.0) * dim_eff(shape.d2, 6.0)
            }
            OpClass::Reduce => 0.9 * dim_eff(shape.d1, 16.0),
            OpClass::Elementwise => 0.9 * dim_eff(shape.d0, 64.0),
            OpClass::Gather => 1.0,
        };
        eff.max(1e-3)
    }

    fn noise_factor(&self, shape: &TileShape) -> f64 {
        if self.noise_sigma == 0.0 {
            return 1.0;
        }
        let mut h = self.noise_seed;
        for v in [
            shape.class as u64,
            shape.batch,
            shape.d0,
            shape.d1,
            shape.d2,
        ] {
            h ^= v.wrapping_mul(0xff51afd7ed558ccd).rotate_left(31);
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^= h >> 33;
        }
        // Sum of two uniforms centred at 0 — light-tailed, bounded noise.
        let u1 = (h & 0xffff_ffff) as f64 / u32::MAX as f64;
        let u2 = (h >> 32) as f64 / u32::MAX as f64;
        1.0 + self.noise_sigma * (u1 + u2 - 1.0)
    }
}

impl CostModel for AnalyticDevice {
    fn tile_time(&self, shape: &TileShape) -> Seconds {
        let rate = match shape.class {
            OpClass::MatMul => self.matmul_rate,
            OpClass::Reduce | OpClass::Elementwise => self.vector_rate,
            OpClass::Gather => FlopRate::ZERO,
        };
        let compute = if shape.flops() == 0.0 {
            Seconds::ZERO
        } else {
            Seconds::new(shape.flops() / (rate.get() * self.efficiency(shape)))
        };
        let memory = Seconds::new(shape.bytes_touched(2) / self.sram_bw.bytes_per_sec());
        let t = compute.max(memory) + self.tile_overhead;
        t * self.noise_factor(shape)
    }

    fn link_time(&self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            Seconds::ZERO
        } else {
            self.link_latency + self.link_bw.transfer_time(volume)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;

    fn dev() -> AnalyticDevice {
        AnalyticDevice::of_chip(&presets::ipu_pod4().chip)
    }

    #[test]
    fn bigger_tiles_take_longer() {
        let d = dev();
        let small = TileShape::matmul(8, 64, 8);
        let large = TileShape::matmul(32, 256, 32);
        assert!(d.tile_time(&large) > d.tile_time(&small));
    }

    #[test]
    fn larger_tiles_are_more_efficient_per_flop() {
        let d = dev();
        let small = TileShape::matmul(2, 32, 2);
        let large = TileShape::matmul(64, 1024, 64);
        let tput = |s: &TileShape| s.flops() / d.tile_time(s).as_secs();
        assert!(tput(&large) > 5.0 * tput(&small));
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let d = dev().with_noise(0.1);
        let t = TileShape::matmul(17, 333, 41);
        let a = d.tile_time(&t);
        let b = d.tile_time(&t);
        assert_eq!(a, b);
        let clean = dev().tile_time(&t);
        let ratio = a / clean;
        assert!((0.89..1.11).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn different_seeds_change_noise() {
        let t = TileShape::matmul(17, 333, 41);
        let a = dev().with_noise(0.1).with_seed(1).tile_time(&t);
        let b = dev().with_noise(0.1).with_seed(2).tile_time(&t);
        assert_ne!(a, b);
    }

    #[test]
    fn link_time_has_latency_floor() {
        let d = dev();
        assert_eq!(d.link_time(Bytes::ZERO), Seconds::ZERO);
        assert!(d.link_time(Bytes::new(1)) >= d.link_latency());
    }

    #[test]
    fn gather_is_memory_bound() {
        let d = dev();
        let g = TileShape::gather(1024, 128);
        let expected = Seconds::new(g.bytes_touched(2) / 21.3e9);
        let got = d.tile_time(&g) - d.tile_overhead;
        assert!((got.as_secs() - expected.as_secs()).abs() / expected.as_secs() < 0.01);
    }
}
