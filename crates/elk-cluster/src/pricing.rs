//! Shared step pricing for the cluster serving engines: one bucketed
//! workload step through a `(tp, pp)` pipeline, compiled per stage
//! through the single-flight [`PlanCache`] and composed with the
//! stage-boundary collective cost.
//!
//! Both [`ClusterServingSim`](crate::ClusterServingSim) and the
//! autoscaling engine ([`AutoscaleServingSim`](crate::AutoscaleServingSim))
//! price steps here, so a shape compiled by one is a cache hit for the
//! other and their latencies agree exactly.

use std::sync::Arc;

use elk_baselines::{Design, DesignRunner};
use elk_core::CompileError;
use elk_hw::{CollectiveModel, SystemConfig};
use elk_model::{TransformerConfig, Workload};
use elk_serve::{CacheStats, PlanCache};
use elk_sim::SimOptions;
use elk_units::Seconds;

use crate::plan::{ParallelismPlan, StageSpan};

/// Prices pipeline steps for one `(pod, model, tp, pp)` layout. Owns
/// the group-level [`DesignRunner`] (fitted cost model) and a handle on
/// the shared single-flight [`PlanCache`]; `dp` does not enter pricing
/// — every replica group runs the identical pipeline.
#[derive(Debug)]
pub(crate) struct StepPricer {
    runner: DesignRunner,
    cache: Arc<PlanCache>,
    stages: Vec<StageSpan>,
    links: CollectiveModel,
    model: TransformerConfig,
    plan: ParallelismPlan,
    sim: SimOptions,
}

impl StepPricer {
    /// Builds the pricer: group subpod runner, stage spans, and
    /// boundary collective model. `threads` sizes the cache's compile
    /// worker pool only — priced latencies are byte-identical at any
    /// setting.
    pub fn new(
        system: &SystemConfig,
        model: TransformerConfig,
        plan: ParallelismPlan,
        sim: SimOptions,
        threads: usize,
    ) -> Self {
        let cache = Arc::new(PlanCache::new().with_threads(threads));
        StepPricer::with_cache(system, model, plan, sim, cache)
    }

    /// [`new`](Self::new) against an externally owned cache: pricers
    /// for different plans of the same model (the disaggregated pools)
    /// share one single-flight cache, so a stage shape compiled for one
    /// pool is a hit for the other. Cache keys carry the tp degree and
    /// the workload phase, so distinct layouts never collide.
    pub fn with_cache(
        system: &SystemConfig,
        model: TransformerConfig,
        plan: ParallelismPlan,
        sim: SimOptions,
        cache: Arc<PlanCache>,
    ) -> Self {
        StepPricer {
            runner: DesignRunner::new(system.subpod(plan.tp)).with_threads(1),
            cache,
            stages: plan.stages(model.layers),
            links: plan.tp_links(system),
            model,
            plan,
            sim,
        }
    }

    /// Cumulative plan-cache counters (across all runs so far). Not
    /// part of any emitted report — the hit/miss split shifts with the
    /// compile worker count.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Latency of one bucketed `wl` step through the whole `(tp, pp)`
    /// pipeline: every stage in sequence plus stage-boundary transfers.
    /// Errors carry the failing stage index.
    pub fn pipeline_step(
        &self,
        design: Design,
        wl: Workload,
    ) -> Result<Seconds, (usize, CompileError)> {
        let model = &self.model;
        let mut total = Seconds::ZERO;
        // The exact boundary formula the estimator uses.
        let boundary = self.plan.boundary_time(&self.links, model, wl);
        for span in &self.stages {
            let key = span.cache_key(&model.name, self.plan.tp);
            total += self
                .cache
                .step_latency_for(
                    &self.runner,
                    &key,
                    self.plan.tp,
                    design,
                    wl,
                    &self.sim,
                    |w, s| model.build_stage(w, s, span.layers.clone(), span.embed, span.head),
                )
                .map_err(|e| (span.index, e))?;
            if span.index + 1 != self.stages.len() {
                total += boundary;
            }
        }
        Ok(total)
    }

    /// [`pipeline_step`](Self::pipeline_step) with the serving layer's
    /// micro-batch fallback: when the full batch shape has no feasible
    /// on-chip plan, halve the batch until it compiles (a batch-1
    /// failure is a genuine error).
    pub fn split_step(
        &self,
        design: Design,
        wl: Workload,
    ) -> Result<Seconds, (usize, CompileError)> {
        match self.pipeline_step(design, wl) {
            Ok(t) => Ok(t),
            Err((
                _,
                CompileError::NoFeasiblePlan { .. } | CompileError::CapacityExceeded { .. },
            )) if wl.batch > 1 => {
                let lo = Workload {
                    batch: wl.batch / 2,
                    ..wl
                };
                let hi = Workload {
                    batch: wl.batch - wl.batch / 2,
                    ..wl
                };
                let a = self.split_step(design, lo)?;
                let b = if hi.batch == lo.batch {
                    a
                } else {
                    self.split_step(design, hi)?
                };
                Ok(a + b)
            }
            Err(e) => Err(e),
        }
    }
}
