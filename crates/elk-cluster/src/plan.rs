//! Parallelism plans: how a model is laid out over a pod of chips.
//!
//! A [`ParallelismPlan`] factors the pod into `tp × pp × dp` chips:
//! tensor parallelism splits every layer's heads and FFN columns across
//! `tp` chips (exactly what [`TransformerConfig::build`]'s `shards`
//! argument models), pipeline parallelism splits the layer stack into
//! `pp` stages, and data parallelism replicates the whole (tp, pp)
//! arrangement `dp` times with the batch divided between replicas.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use elk_hw::{CollectiveModel, SystemConfig};
use elk_model::{DType, TransformerConfig, Workload};
use elk_units::Seconds;

/// One stage of a pipeline partition: which layers it runs and whether
/// it owns the embedding prologue / LM-head epilogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage index, `0..pp`.
    pub index: usize,
    /// Absolute layer range of the stage.
    pub layers: Range<u32>,
    /// `true` for the first stage (embedding lookup).
    pub embed: bool,
    /// `true` for the last stage (final norm + LM head).
    pub head: bool,
}

impl StageSpan {
    /// A stable key identifying the stage's *architecture* — equal keys
    /// mean operator-identical sub-graphs, so plan caches deduplicate
    /// equal-shaped interior stages across a pipeline.
    #[must_use]
    pub fn cache_key(&self, model: &str, tp: u64) -> String {
        format!(
            "{model}/tp{tp}/{}l{}{}",
            self.layers.len(),
            if self.embed { "+e" } else { "" },
            if self.head { "+h" } else { "" },
        )
    }
}

/// Degrees of tensor, pipeline, and data parallelism over a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismPlan {
    /// Tensor-parallel degree: chips each layer is sharded across.
    pub tp: u64,
    /// Pipeline-parallel degree: stages the layer stack is cut into.
    pub pp: u64,
    /// Data-parallel degree: independent (tp, pp) replica groups.
    pub dp: u64,
}

impl ParallelismPlan {
    /// The trivial single-chip plan.
    #[must_use]
    pub const fn unit() -> Self {
        ParallelismPlan {
            tp: 1,
            pp: 1,
            dp: 1,
        }
    }

    /// A plan with the given degrees.
    #[must_use]
    pub const fn new(tp: u64, pp: u64, dp: u64) -> Self {
        ParallelismPlan { tp, pp, dp }
    }

    /// Chips the plan occupies (`tp · pp · dp`).
    #[must_use]
    pub const fn chips_used(&self) -> u64 {
        self.tp * self.pp * self.dp
    }

    /// Checks the plan against the pod, the model, and the workload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when any degree is zero, the
    /// plan needs more chips than the pod has, `tp` does not divide the
    /// model's heads or FFN width, `pp` exceeds the layer count, or
    /// `dp` exceeds the batch (a replica group would sit idle).
    pub fn validate(
        &self,
        system: &SystemConfig,
        model: &TransformerConfig,
        workload: Workload,
    ) -> Result<(), String> {
        self.validate_structure(system, model)?;
        if self.dp > workload.batch {
            return Err(format!(
                "{self}: dp exceeds the batch ({}) — a replica group would be idle",
                workload.batch
            ));
        }
        Ok(())
    }

    /// The workload-independent half of [`validate`](Self::validate):
    /// degrees, chip budget, shard divisibility, and pipeline depth.
    /// Serving engines use this form — their step batches are dynamic,
    /// and a `dp` beyond a short trace merely idles the extra groups.
    ///
    /// # Errors
    ///
    /// Same as [`validate`](Self::validate) minus the batch bound.
    pub fn validate_structure(
        &self,
        system: &SystemConfig,
        model: &TransformerConfig,
    ) -> Result<(), String> {
        if self.tp == 0 || self.pp == 0 || self.dp == 0 {
            return Err(format!("{self}: every degree must be >= 1"));
        }
        if self.chips_used() > system.chips {
            return Err(format!(
                "{self} needs {} chips but the pod has {}",
                self.chips_used(),
                system.chips
            ));
        }
        if !model.heads.is_multiple_of(self.tp) {
            return Err(format!(
                "{self}: tp must divide the model's {} attention heads",
                model.heads
            ));
        }
        if !model.intermediate.is_multiple_of(self.tp) {
            return Err(format!(
                "{self}: tp must divide the model's FFN width {}",
                model.intermediate
            ));
        }
        if self.pp as u32 > model.layers {
            return Err(format!(
                "{self}: pp exceeds the model's {} layers",
                model.layers
            ));
        }
        Ok(())
    }

    /// The collective model of one tensor-parallel group of this plan:
    /// `tp` participants, each with the pod's per-chip share of the
    /// inter-chip bandwidth, on the pod's link arrangement. The single
    /// constructor the estimator **and** the cluster serving engine
    /// price boundaries with — they can never disagree.
    #[must_use]
    pub fn tp_links(&self, system: &SystemConfig) -> CollectiveModel {
        CollectiveModel::new(
            self.tp,
            system.inter_chip_bw / system.chips,
            system.inter_chip_topology,
        )
    }

    /// Stage-to-stage transfer time for one `workload`-shaped
    /// microbatch of `model` activations: each of the `tp` sender chips
    /// ships its `1/tp` slice point-to-point, and a sharded receiver
    /// all-gathers the full activation across its group.
    #[must_use]
    pub fn boundary_time(
        &self,
        links: &CollectiveModel,
        model: &TransformerConfig,
        workload: Workload,
    ) -> Seconds {
        let activation = DType::F16.bytes_for(workload.tokens_in_flight() * model.hidden);
        let p2p = links.p2p(activation / self.tp);
        if self.tp > 1 {
            p2p + links.all_gather(activation)
        } else {
            p2p
        }
    }

    /// The pipeline partition: `pp` contiguous stages covering
    /// `0..layers`, sized as evenly as possible (earlier stages take the
    /// remainder), with the embedding on the first and the head on the
    /// last.
    ///
    /// # Panics
    ///
    /// Panics if `pp` exceeds `layers` (validate first).
    #[must_use]
    pub fn stages(&self, layers: u32) -> Vec<StageSpan> {
        let pp = u32::try_from(self.pp).expect("pp fits in u32");
        assert!(pp >= 1 && pp <= layers, "pp {pp} out of 1..={layers}");
        let base = layers / pp;
        let extra = layers % pp;
        let mut start = 0u32;
        (0..pp)
            .map(|i| {
                let len = base + u32::from(i < extra);
                let span = StageSpan {
                    index: i as usize,
                    layers: start..start + len,
                    embed: i == 0,
                    head: i + 1 == pp,
                };
                start += len;
                span
            })
            .collect()
    }

    /// The microbatch shape for one replica group: `(micro_batch, count)`
    /// such that `micro_batch · count` covers the group's batch share.
    /// `requested` defaults to the pipeline depth (the classic GPipe
    /// choice) and is clamped to the group batch; with no pipeline
    /// (`pp == 1`) microbatching is pointless and one full batch is
    /// used.
    #[must_use]
    pub fn microbatching(&self, group_batch: u64, requested: Option<u64>) -> (u64, u64) {
        if self.pp <= 1 {
            return (group_batch, 1);
        }
        let want = requested.unwrap_or(self.pp).clamp(1, group_batch);
        let micro = group_batch.div_ceil(want);
        (micro, group_batch.div_ceil(micro))
    }

    /// Derives the per-stage, per-chip shard graphs of this plan for one
    /// microbatch workload: stage `i`'s layers, tensor-parallel over
    /// `tp`, embedding and head on the boundary stages.
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan (validate first).
    #[must_use]
    pub fn stage_graphs(
        &self,
        model: &TransformerConfig,
        micro_workload: Workload,
    ) -> Vec<elk_model::ModelGraph> {
        self.stages(model.layers)
            .into_iter()
            .map(|s| model.build_stage(micro_workload, self.tp, s.layers, s.embed, s.head))
            .collect()
    }

    /// Every valid plan for `model` on `system` under `workload`, in
    /// deterministic `(tp, pp, dp)` lexicographic order — the
    /// auto-parallelism search grid.
    #[must_use]
    pub fn enumerate(
        system: &SystemConfig,
        model: &TransformerConfig,
        workload: Workload,
    ) -> Vec<ParallelismPlan> {
        let chips = system.chips;
        let mut plans = Vec::new();
        for tp in 1..=chips {
            for pp in 1..=chips / tp {
                for dp in 1..=chips / (tp * pp) {
                    let plan = ParallelismPlan::new(tp, pp, dp);
                    if plan.validate(system, model, workload).is_ok() {
                        plans.push(plan);
                    }
                }
            }
        }
        plans
    }
}

impl fmt::Display for ParallelismPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tp{}·pp{}·dp{}", self.tp, self.pp, self.dp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::zoo;

    fn model() -> TransformerConfig {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 5;
        cfg
    }

    #[test]
    fn validation_catches_each_violation() {
        let sys = presets::ipu_pod4();
        let m = model();
        let wl = Workload::decode(8, 512);
        assert!(ParallelismPlan::new(2, 2, 1).validate(&sys, &m, wl).is_ok());
        let err = |p: ParallelismPlan| p.validate(&sys, &m, wl).unwrap_err();
        assert!(err(ParallelismPlan::new(0, 1, 1)).contains(">= 1"));
        assert!(err(ParallelismPlan::new(4, 2, 1)).contains("chips"));
        assert!(err(ParallelismPlan::new(3, 1, 1)).contains("heads"));
        // pp above the layer count (pod would allow pp=4, model has 5
        // layers, so force a deeper cut on a shallower model).
        let mut shallow = m.clone();
        shallow.layers = 1;
        let e = ParallelismPlan::new(1, 2, 1)
            .validate(&sys, &shallow, wl)
            .unwrap_err();
        assert!(e.contains("layers"), "{e}");
    }

    #[test]
    fn dp_larger_than_batch_is_rejected() {
        let sys = presets::ipu_pod4();
        let m = model();
        let wl = Workload::decode(2, 512);
        let e = ParallelismPlan::new(1, 1, 4)
            .validate(&sys, &m, wl)
            .unwrap_err();
        assert!(e.contains("batch"), "{e}");
    }

    #[test]
    fn stages_cover_the_layer_stack_evenly() {
        let plan = ParallelismPlan::new(1, 3, 1);
        let stages = plan.stages(5);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].layers, 0..2, "remainder goes first");
        assert_eq!(stages[1].layers, 2..4);
        assert_eq!(stages[2].layers, 4..5);
        assert!(stages[0].embed && !stages[0].head);
        assert!(!stages[2].embed && stages[2].head);
        assert!(!stages[1].embed && !stages[1].head);
    }

    #[test]
    fn equal_shaped_interior_stages_share_a_cache_key() {
        let plan = ParallelismPlan::new(2, 4, 1);
        let stages = plan.stages(8);
        assert_eq!(
            stages[1].cache_key("m", 2),
            stages[2].cache_key("m", 2),
            "interior stages of equal size dedupe"
        );
        assert_ne!(stages[0].cache_key("m", 2), stages[1].cache_key("m", 2));
        assert_ne!(stages[3].cache_key("m", 2), stages[1].cache_key("m", 2));
    }

    #[test]
    fn microbatching_defaults_to_pipeline_depth() {
        let plan = ParallelismPlan::new(1, 4, 1);
        assert_eq!(plan.microbatching(32, None), (8, 4));
        assert_eq!(plan.microbatching(32, Some(2)), (16, 2));
        // Clamped to the batch.
        assert_eq!(plan.microbatching(2, None), (1, 2));
        assert_eq!(plan.microbatching(1, Some(8)), (1, 1));
        // No pipeline, no microbatching.
        assert_eq!(
            ParallelismPlan::new(4, 1, 1).microbatching(32, Some(8)),
            (32, 1)
        );
    }

    #[test]
    fn enumeration_is_lexicographic_and_respects_constraints() {
        let sys = presets::ipu_pod4();
        let m = model();
        let wl = Workload::decode(8, 512);
        let plans = ParallelismPlan::enumerate(&sys, &m, wl);
        assert!(plans.contains(&ParallelismPlan::unit()));
        assert!(plans.contains(&ParallelismPlan::new(4, 1, 1)));
        assert!(plans.contains(&ParallelismPlan::new(2, 2, 1)));
        // tp=3 does not divide 40 heads.
        assert!(!plans.iter().any(|p| p.tp == 3));
        // Deterministic lexicographic order.
        let mut sorted = plans.clone();
        sorted.sort_by_key(|p| (p.tp, p.pp, p.dp));
        assert_eq!(plans, sorted);
        // Every plan fits the pod.
        assert!(plans.iter().all(|p| p.chips_used() <= sys.chips));
    }

    #[test]
    fn stage_graphs_concatenate_to_the_full_model() {
        let m = model();
        let wl = Workload::decode(8, 512);
        let plan = ParallelismPlan::new(2, 2, 1);
        let stages = plan.stage_graphs(&m, wl);
        let full = m.build(wl, 2);
        let total: usize = stages.iter().map(elk_model::ModelGraph::len).sum();
        assert_eq!(total, full.len());
    }
}
