//! # elk-cluster — multi-chip parallelism planning for the Elk reproduction
//!
//! The paper evaluates Elk on an IPU-POD4, but a single compiled plan
//! only ever spans one tensor-parallel group. This crate plans and
//! prices model execution across the **whole pod**:
//!
//! * [`ParallelismPlan`] — tensor × pipeline × data degrees
//!   (`tp · pp · dp ≤ chips`) with structural validation, per-stage
//!   sharded graph derivation (TP splits heads/FFN columns, PP splits
//!   the layer stack), and the deterministic search grid;
//! * [`ClusterEstimator`] — composes the existing per-group
//!   `DesignRunner` → `SimReport` path with
//!   [`CollectiveModel`](elk_hw::CollectiveModel)-priced stage
//!   boundaries and GPipe-style bubble accounting into a
//!   [`ClusterReport`] (per-stage timeline, bubble fraction, scaling
//!   efficiency), plus an auto-parallelism [`search`] over the grid;
//! * [`ClusterServingSim`] — request-level serving across `dp` replica
//!   groups, each running the `(tp, pp)` pipeline, with pluggable
//!   [`RouterPolicy`](elk_serve::RouterPolicy) dispatch and the shared
//!   single-flight plan cache;
//! * [`AutoscaleServingSim`] — the same replay with an elastic group
//!   fleet: a controller grows/shrinks the ready set against
//!   time-weighted queue depth and windowed SLO attainment, and each
//!   spin-up pays a cold start equal to its plan-compilation cost
//!   priced through the shared cache;
//! * [`DisaggServingSim`] — disaggregated prefill/decode serving: two
//!   chip pools with independent plans on one event timeline, KV-cache
//!   handoff priced via `CollectiveModel::p2p`, chunked prefill, and a
//!   `shared_chips` degenerate mode that reproduces the colocated
//!   engine bit-for-bit (pinned by a differential test);
//! * [`TenantServingSim`] — multi-tenant serving on top of the routed
//!   replay: per-tenant SLO classes with token-bucket admission
//!   control, load shedding (reject or one-shot defer), class-priority
//!   scheduling in the kernel's event ordering, multi-model pods over
//!   one shared plan cache, and per-tenant goodput/fairness reporting.
//!   A single-default-class config reproduces [`ClusterServingSim`]
//!   bit-for-bit (also pinned by a differential test).
//!
//! Everything is deterministic: searches fan over [`elk_par`] with
//! index-ordered merging and the serving event loop is sequential in
//! global arrival order, so every report is byte-identical at any
//! thread count.
//!
//! [`search`]: ClusterEstimator::search
//!
//! ## Example
//!
//! ```
//! use elk_cluster::{ClusterEstimator, ClusterOptions, ParallelismPlan};
//! use elk_baselines::Design;
//! use elk_hw::presets;
//! use elk_model::{zoo, Workload};
//! use elk_sim::SimOptions;
//!
//! # fn main() -> Result<(), elk_cluster::ClusterError> {
//! let mut model = zoo::llama2_13b();
//! model.layers = 2; // doctest-sized
//! let est = ClusterEstimator::new(presets::ipu_pod4(), ClusterOptions::default());
//! let outcome = est.search(
//!     &model,
//!     Workload::decode(16, 512),
//!     Design::ElkFull,
//!     &SimOptions::default(),
//! )?;
//! let plan: ParallelismPlan = outcome.best.plan;
//! assert!(plan.chips_used() <= 4);
//! assert!(outcome.best.step_total.as_secs() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod autoscale;
mod disagg;
mod estimate;
mod plan;
mod pricing;
mod serve;
mod tenancy;

pub use autoscale::{
    AutoscaleConfig, AutoscaleReport, AutoscaleServingSim, ScaleEvent, ScaleEventKind,
};
pub use disagg::{
    kv_handoff_bytes, DisaggConfig, DisaggServingReport, DisaggServingSim, HandoffRecord,
};
pub use estimate::{
    ClusterEstimator, ClusterOptions, ClusterReport, PlanCandidate, SearchOutcome, StageReport,
};
pub use plan::{ParallelismPlan, StageSpan};
pub use serve::{ClusterServeConfig, ClusterServingReport, ClusterServingSim};
pub use tenancy::{TenancyServingReport, TenantServingSim};

use std::fmt;

/// Why a cluster plan could not be estimated or served.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The plan violates a structural or capacity constraint
    /// (degrees, divisibility, chip budget, HBM capacity).
    Invalid(String),
    /// A pipeline stage has no feasible on-chip plan.
    Compile {
        /// The failing stage's index.
        stage: usize,
        /// The compiler's error.
        source: elk_core::CompileError,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Invalid(msg) => write!(f, "invalid cluster plan: {msg}"),
            ClusterError::Compile { stage, source } => {
                write!(f, "stage {stage}: {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}
