//! The cluster estimator: composes per-stage single-chip-group
//! compilation and simulation into a pod-level execution estimate.
//!
//! For a plan `(tp, pp, dp)` the estimator
//!
//! 1. carves the pod into `dp` identical groups of `tp · pp` chips
//!    ([`SystemConfig::subpod`]) and splits the batch between them;
//! 2. builds each pipeline stage's per-chip-shard graph
//!    ([`ParallelismPlan::stage_graphs`]) and runs it through the exact
//!    [`DesignRunner`] → `SimReport` path single-chip experiments use,
//!    so a `tp = pp = dp = 1` plan reproduces the single-chip numbers
//!    bit for bit;
//! 3. prices stage-to-stage activations and tensor-parallel gathers on
//!    the [`CollectiveModel`] and accounts GPipe-style pipeline bubbles
//!    over the microbatch schedule;
//! 4. reports a per-stage timeline, the bubble fraction, and scaling
//!    efficiency against the single-chip baseline.
//!
//! Everything is deterministic: the auto-parallelism search fans the
//! `(tp, pp, dp)` grid across an [`elk_par`] pool with index-ordered
//! merging, so reports are byte-identical at any thread count.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::SystemConfig;
use elk_model::{OperandSource, TransformerConfig, Workload};
use elk_sim::SimOptions;
use elk_units::{Bytes, Seconds};

use crate::plan::{ParallelismPlan, StageSpan};
use crate::ClusterError;

/// Knobs of the estimator (and of the auto-parallelism search).
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Microbatches per pipeline round; defaults to the pipeline depth.
    pub microbatches: Option<u64>,
    /// Compute the single-chip `(1,1,1)` baseline so reports carry a
    /// scaling efficiency (skipped automatically when infeasible).
    pub baseline: bool,
    /// Worker threads for the search grid / stage fan-out (`0` = all
    /// cores). Outputs are byte-identical at any setting.
    pub threads: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            microbatches: None,
            baseline: true,
            threads: 1,
        }
    }
}

/// One stage's contribution to the cluster timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageReport {
    /// Stage index, `0..pp`.
    pub stage: usize,
    /// First layer (absolute index).
    pub layer_start: u32,
    /// One past the last layer.
    pub layer_end: u32,
    /// `true` when the stage owns the embedding prologue.
    pub embed: bool,
    /// `true` when the stage owns the final norm + LM head.
    pub head: bool,
    /// Operators in the stage's per-shard graph.
    pub ops: usize,
    /// Weight bytes resident per chip shard.
    pub weight_bytes: Bytes,
    /// Simulated time of one microbatch through the stage.
    pub time: Seconds,
    /// Stage-to-stage transfer after this stage (zero for the last):
    /// point-to-point activations plus the receiving group's all-gather.
    pub boundary: Seconds,
    /// When the stage first becomes busy (pipeline fill).
    pub start: Seconds,
    /// When the stage's last microbatch completes.
    pub end: Seconds,
    /// Fraction of the makespan the stage spends computing.
    pub busy_fraction: f64,
}

/// Deterministic pod-level estimate of one plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterReport {
    /// Model name.
    pub model: String,
    /// The cluster-step workload (the full batch, before the dp split).
    pub workload: Workload,
    /// Chips in the pod.
    pub chips: u64,
    /// The evaluated plan.
    pub plan: ParallelismPlan,
    /// Chips the plan occupies (`tp · pp · dp`).
    pub chips_used: u64,
    /// Design the stages were compiled with.
    pub design: Design,
    /// Inter-chip link arrangement collectives were priced on.
    pub interconnect: String,
    /// Requests per replica group (`ceil(batch / dp)`).
    pub group_batch: u64,
    /// Requests per microbatch.
    pub micro_batch: u64,
    /// Microbatches per pipeline round.
    pub microbatches: u64,
    /// Per-stage timeline, in pipeline order.
    pub stages: Vec<StageReport>,
    /// Makespan of one cluster step (all groups run identically-sized
    /// batch shares in parallel, so this is the slowest — and only —
    /// group time).
    pub step_total: Seconds,
    /// Tensor-parallel all-reduce volume per microbatch (per chip,
    /// summed over operators).
    pub tp_allreduce_bytes: Bytes,
    /// Time those all-reduces cost per microbatch (priced on the
    /// collective model, as inside the stage simulations).
    pub tp_allreduce_time: Seconds,
    /// Stage-boundary transfer time per microbatch (sum over
    /// boundaries).
    pub p2p_time: Seconds,
    /// Fraction of stage-time-slots idle over the pipeline schedule:
    /// `1 − m·ΣTᵢ / (pp · makespan)` (0 for a single stage).
    pub bubble_fraction: f64,
    /// Single-chip time over `chips_used ×` this plan's time — 1.0 is
    /// perfect linear scaling. `None` when the single-chip baseline is
    /// infeasible or disabled.
    pub scaling_efficiency: Option<f64>,
}

/// One evaluated point of the auto-parallelism search grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanCandidate {
    /// The candidate plan.
    pub plan: ParallelismPlan,
    /// Step makespan when feasible.
    pub step_total: Option<Seconds>,
    /// Why the candidate was rejected, when infeasible.
    pub error: Option<String>,
}

/// Output of [`ClusterEstimator::search`]: every candidate in grid
/// order plus the winner's full report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchOutcome {
    /// Every `(tp, pp, dp)` candidate, in lexicographic grid order.
    pub candidates: Vec<PlanCandidate>,
    /// The winning plan's full estimate (minimum step time; ties break
    /// toward the lexicographically first plan).
    pub best: ClusterReport,
}

/// Plans and prices model execution across a pod of ICCA chips.
#[derive(Debug)]
pub struct ClusterEstimator {
    system: SystemConfig,
    runner: DesignRunner,
    opts: ClusterOptions,
}

impl ClusterEstimator {
    /// Creates an estimator for `system`, fitting the chip cost model
    /// once (shared across every stage, candidate, and baseline run).
    #[must_use]
    pub fn new(system: SystemConfig, opts: ClusterOptions) -> Self {
        let runner = DesignRunner::new(system.clone()).with_threads(1);
        ClusterEstimator {
            system,
            runner,
            opts,
        }
    }

    /// The pod under planning.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The estimator's options.
    #[must_use]
    pub fn options(&self) -> &ClusterOptions {
        &self.opts
    }

    /// Estimates one fixed plan, including the single-chip baseline for
    /// scaling efficiency when enabled and feasible.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] for a plan that fails validation or
    /// HBM-capacity feasibility; [`ClusterError::Compile`] when a stage
    /// has no feasible on-chip plan (SRAM infeasibility).
    pub fn estimate(
        &self,
        model: &TransformerConfig,
        workload: Workload,
        design: Design,
        sim: &SimOptions,
        plan: ParallelismPlan,
    ) -> Result<ClusterReport, ClusterError> {
        plan.validate(&self.system, model, workload)
            .map_err(ClusterError::Invalid)?;
        let baseline = self.baseline_total(model, workload, design, sim, plan)?;
        self.estimate_inner(
            model,
            workload,
            design,
            sim,
            plan,
            baseline,
            self.opts.threads,
        )
    }

    /// Auto-parallelism: evaluates the whole `(tp, pp, dp)` grid and
    /// returns every candidate plus the winner's report. Candidates fan
    /// across the configured worker threads with index-ordered merging,
    /// so the outcome is byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when no candidate is feasible.
    pub fn search(
        &self,
        model: &TransformerConfig,
        workload: Workload,
        design: Design,
        sim: &SimOptions,
    ) -> Result<SearchOutcome, ClusterError> {
        let grid = ParallelismPlan::enumerate(&self.system, model, workload);
        if grid.is_empty() {
            return Err(ClusterError::Invalid(format!(
                "no valid (tp, pp, dp) grid for {} on {} chips",
                model.name, self.system.chips
            )));
        }
        // Every candidate is evaluated independently (inner compile
        // pools stay sequential so worker counts do not multiply).
        let reports = elk_par::par_map(self.opts.threads, &grid, |_, &plan| {
            self.estimate_inner(model, workload, design, sim, plan, None, 1)
        });

        let baseline = reports
            .first()
            .and_then(|r| r.as_ref().ok())
            .filter(|r| r.plan == ParallelismPlan::unit())
            .map(|r| r.step_total);

        let mut best: Option<ClusterReport> = None;
        let mut candidates = Vec::with_capacity(grid.len());
        for report in reports {
            match report {
                Ok(mut r) => {
                    // Patch in the shared baseline (candidates skip it
                    // to avoid re-running (1,1,1) per grid point).
                    r.scaling_efficiency = baseline.map(|base| {
                        base.as_secs() / (r.chips_used as f64 * r.step_total.as_secs())
                    });
                    candidates.push(PlanCandidate {
                        plan: r.plan,
                        step_total: Some(r.step_total),
                        error: None,
                    });
                    // Strictly-smaller wins, so grid order breaks ties.
                    if best.as_ref().is_none_or(|b| r.step_total < b.step_total) {
                        best = Some(r);
                    }
                }
                Err(e) => {
                    // Infeasible candidates are data, not failures; the
                    // plan they describe is recoverable from the error
                    // position in grid order.
                    candidates.push(PlanCandidate {
                        plan: grid[candidates.len()],
                        step_total: None,
                        error: Some(e.to_string()),
                    });
                }
            }
        }
        let best = best.ok_or_else(|| {
            ClusterError::Invalid(format!(
                "no feasible (tp, pp, dp) plan for {} on this pod ({} candidates tried)",
                model.name,
                candidates.len()
            ))
        })?;
        Ok(SearchOutcome { candidates, best })
    }

    /// The `(1,1,1)` reference time, or `None` when disabled/infeasible.
    fn baseline_total(
        &self,
        model: &TransformerConfig,
        workload: Workload,
        design: Design,
        sim: &SimOptions,
        plan: ParallelismPlan,
    ) -> Result<Option<Seconds>, ClusterError> {
        if !self.opts.baseline || plan == ParallelismPlan::unit() {
            // The unit plan is its own baseline; estimate_inner fills it.
            return Ok(None);
        }
        let unit = ParallelismPlan::unit();
        if unit.validate(&self.system, model, workload).is_err() {
            return Ok(None);
        }
        match self.estimate_inner(model, workload, design, sim, unit, None, self.opts.threads) {
            Ok(r) => Ok(Some(r.step_total)),
            // An infeasible single-chip run (SRAM/HBM) just means no
            // efficiency reference exists.
            Err(_) => Ok(None),
        }
    }

    /// The core composition; `baseline` is the `(1,1,1)` step time when
    /// already known.
    #[allow(clippy::too_many_arguments)]
    fn estimate_inner(
        &self,
        model: &TransformerConfig,
        workload: Workload,
        design: Design,
        sim: &SimOptions,
        plan: ParallelismPlan,
        baseline: Option<Seconds>,
        threads: usize,
    ) -> Result<ClusterReport, ClusterError> {
        plan.validate(&self.system, model, workload)
            .map_err(ClusterError::Invalid)?;
        let group_system = self.system.subpod(plan.tp);
        let runner = self.runner.with_system(group_system);
        let group_batch = workload.batch.div_ceil(plan.dp);
        let (micro_batch, microbatches) = plan.microbatching(group_batch, self.opts.microbatches);
        let micro_wl = Workload {
            batch: micro_batch,
            ..workload
        };

        let spans = plan.stages(model.layers);
        // One shared constructor + formula with the cluster serving
        // engine (ParallelismPlan::{tp_links, boundary_time}), so the
        // two can never drift on boundary pricing.
        let links = plan.tp_links(&self.system);
        let boundary_time = plan.boundary_time(&links, model, micro_wl);

        let evals = elk_par::try_par_map(threads, &spans, |i, span| {
            self.eval_stage(
                &runner,
                model,
                micro_wl,
                plan,
                span,
                group_batch,
                sim,
                design,
            )
            .map_err(|e| match e {
                StageFailure::Hbm(msg) => ClusterError::Invalid(msg),
                StageFailure::Compile(source) => ClusterError::Compile { stage: i, source },
            })
        })?;

        // Pipeline composition: fill through every stage once, then the
        // steady state is paced by the slowest stage+boundary round.
        let times: Vec<Seconds> = evals.iter().map(|e| e.time).collect();
        let rounds: Vec<Seconds> = spans
            .iter()
            .map(|s| {
                let b = if s.index + 1 == spans.len() {
                    Seconds::ZERO
                } else {
                    boundary_time
                };
                times[s.index] + b
            })
            .collect();
        let fill: Seconds = rounds.iter().copied().sum();
        let bottleneck = rounds.iter().copied().fold(Seconds::ZERO, Seconds::max);
        let makespan = fill + bottleneck * (microbatches - 1) as f64;
        let busy_total: Seconds = times.iter().copied().sum();
        let bubble_fraction = if makespan.is_zero() {
            0.0
        } else {
            1.0 - (busy_total.as_secs() * microbatches as f64)
                / (plan.pp as f64 * makespan.as_secs())
        };

        let mut starts = Vec::with_capacity(spans.len());
        let mut acc = Seconds::ZERO;
        for round in &rounds {
            starts.push(acc);
            acc += *round;
        }
        let stages: Vec<StageReport> = evals
            .iter()
            .zip(&spans)
            .map(|(e, span)| {
                let start = starts[span.index];
                let end = start + times[span.index] + bottleneck * (microbatches - 1) as f64;
                StageReport {
                    stage: span.index,
                    layer_start: span.layers.start,
                    layer_end: span.layers.end,
                    embed: span.embed,
                    head: span.head,
                    ops: e.ops,
                    weight_bytes: e.weights,
                    time: e.time,
                    boundary: if span.index + 1 == spans.len() {
                        Seconds::ZERO
                    } else {
                        boundary_time
                    },
                    start,
                    end,
                    busy_fraction: if makespan.is_zero() {
                        0.0
                    } else {
                        (e.time.as_secs() * microbatches as f64) / makespan.as_secs()
                    },
                }
            })
            .collect();

        let tp_allreduce_bytes: Bytes = evals.iter().map(|e| e.allreduce).sum();
        let tp_allreduce_time: Seconds = evals.iter().map(|e| e.allreduce_time).sum();
        let p2p_time = boundary_time * (spans.len() - 1) as f64;

        let baseline = baseline.or(if plan == ParallelismPlan::unit() {
            Some(makespan)
        } else {
            None
        });
        Ok(ClusterReport {
            model: model.name.clone(),
            workload,
            chips: self.system.chips,
            plan,
            chips_used: plan.chips_used(),
            design,
            interconnect: self.system.inter_chip_topology.name().to_string(),
            group_batch,
            micro_batch,
            microbatches,
            stages,
            step_total: makespan,
            tp_allreduce_bytes,
            tp_allreduce_time,
            p2p_time,
            bubble_fraction,
            scaling_efficiency: baseline
                .map(|base| base.as_secs() / (plan.chips_used() as f64 * makespan.as_secs())),
        })
    }

    /// Builds, feasibility-checks, compiles, and simulates one stage.
    #[allow(clippy::too_many_arguments)]
    fn eval_stage(
        &self,
        runner: &DesignRunner,
        model: &TransformerConfig,
        micro_wl: Workload,
        plan: ParallelismPlan,
        span: &StageSpan,
        group_batch: u64,
        sim: &SimOptions,
        design: Design,
    ) -> Result<StageEval, StageFailure> {
        let graph = model.build_stage(
            micro_wl,
            plan.tp,
            span.layers.clone(),
            span.embed,
            span.head,
        );
        let weights = graph.weight_bytes();
        // HBM feasibility: resident weights plus the KV cache of every
        // request the group keeps in flight (the stage graph carries one
        // microbatch's KV reads; scale to the group batch).
        let kv_micro: Bytes = graph
            .iter()
            .filter(|o| o.stationary() == OperandSource::HbmKvCache)
            .map(elk_model::Operator::stationary_bytes)
            .sum();
        let kv_group = Bytes::new(kv_micro.get() / micro_wl.batch * group_batch);
        let need = weights + kv_group;
        let capacity = self.system.hbm.capacity;
        if need > capacity {
            return Err(StageFailure::Hbm(format!(
                "{plan} stage {}: {need} per-chip HBM needed (weights {weights} + KV {kv_group}) \
                 exceeds the {capacity} capacity",
                span.index
            )));
        }
        let catalog = runner.catalog(&graph).map_err(StageFailure::Compile)?;
        let outcome = runner
            .run(design, &graph, &catalog, sim)
            .map_err(StageFailure::Compile)?;
        let allreduce: Bytes = graph.iter().map(elk_model::Operator::allreduce).sum();
        let collective = runner.system().collective();
        let allreduce_time: Seconds = graph
            .iter()
            .map(|o| collective.all_reduce(o.allreduce()))
            .sum();
        Ok(StageEval {
            ops: graph.len(),
            weights,
            time: outcome.report.total,
            allreduce,
            allreduce_time,
        })
    }
}

/// Internal per-stage evaluation result.
struct StageEval {
    ops: usize,
    weights: Bytes,
    time: Seconds,
    allreduce: Bytes,
    allreduce_time: Seconds,
}

/// Internal stage-failure discriminator (HBM checks precede compiles).
enum StageFailure {
    Hbm(String),
    Compile(elk_core::CompileError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::zoo;

    fn tiny_model() -> TransformerConfig {
        let mut cfg = zoo::llama2_13b();
        cfg.layers = 2;
        cfg
    }

    fn estimator(threads: usize) -> ClusterEstimator {
        ClusterEstimator::new(
            presets::ipu_pod4(),
            ClusterOptions {
                threads,
                ..ClusterOptions::default()
            },
        )
    }

    #[test]
    fn unit_plan_reproduces_the_single_chip_sim_report() {
        let model = tiny_model();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let est = estimator(1);
        let report = est
            .estimate(&model, wl, Design::ElkFull, &sim, ParallelismPlan::unit())
            .unwrap();

        // The reference: the same engine path on a one-chip system.
        let single = presets::ipu_pod4().subpod(1);
        let runner = DesignRunner::new(single).with_threads(1);
        let graph = model.build(wl, 1);
        let catalog = runner.catalog(&graph).unwrap();
        let outcome = runner.run(Design::ElkFull, &graph, &catalog, &sim).unwrap();

        assert_eq!(report.step_total, outcome.report.total, "bit-identical");
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stages[0].time, outcome.report.total);
        assert_eq!(report.bubble_fraction, 0.0);
        assert_eq!(report.scaling_efficiency, Some(1.0));
        assert_eq!(report.p2p_time, Seconds::ZERO);
    }

    #[test]
    fn pipeline_estimate_has_sane_timeline_and_bubbles() {
        let model = tiny_model();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let est = estimator(1);
        let plan = ParallelismPlan::new(2, 2, 1);
        let r = est
            .estimate(&model, wl, Design::ElkFull, &sim, plan)
            .unwrap();
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.microbatches, 2);
        assert_eq!(r.micro_batch, 8);
        assert!(r.bubble_fraction > 0.0 && r.bubble_fraction < 1.0);
        assert!(r.stages[0].start.is_zero());
        assert!(r.stages[1].start > Seconds::ZERO, "fill delay");
        assert_eq!(r.stages[1].end, r.step_total, "last stage closes the step");
        assert!(r.stages[0].boundary > Seconds::ZERO);
        assert_eq!(r.stages[1].boundary, Seconds::ZERO);
        assert!(r.tp_allreduce_bytes.get() > 0, "tp=2 reduces activations");
        let eff = r.scaling_efficiency.expect("baseline feasible");
        assert!(eff > 0.0 && eff <= 1.5, "efficiency {eff} out of range");
    }

    #[test]
    fn search_is_deterministic_and_picks_the_fastest_candidate() {
        let model = tiny_model();
        let wl = Workload::decode(16, 512);
        let sim = SimOptions::default();
        let seq = estimator(1)
            .search(&model, wl, Design::ElkFull, &sim)
            .unwrap();
        let par = estimator(8)
            .search(&model, wl, Design::ElkFull, &sim)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            serde_json::to_string(&par).unwrap(),
            "search must be byte-identical at any thread count"
        );
        // The winner is no slower than any feasible candidate.
        let best = seq.best.step_total;
        for c in &seq.candidates {
            if let Some(t) = c.step_total {
                assert!(best <= t, "{} beat the chosen plan", c.plan);
            }
        }
        assert!(seq.candidates.len() >= 8, "pod4 grid has many candidates");
    }

    #[test]
    fn hbm_capacity_rejects_oversized_stages() {
        let mut system = presets::ipu_pod4();
        system.hbm = system.hbm.with_capacity(Bytes::mib(64));
        let est = ClusterEstimator::new(system, ClusterOptions::default());
        let model = tiny_model();
        let e = est
            .estimate(
                &model,
                Workload::decode(16, 512),
                Design::ElkFull,
                &SimOptions::default(),
                ParallelismPlan::unit(),
            )
            .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("HBM") && msg.contains("capacity"), "{msg}");
    }

    #[test]
    fn dp_splits_the_batch() {
        let model = tiny_model();
        let sim = SimOptions::default();
        let est = estimator(1);
        let wl = Workload::decode(16, 512);
        let two = est
            .estimate(
                &model,
                wl,
                Design::Basic,
                &sim,
                ParallelismPlan::new(1, 1, 2),
            )
            .unwrap();
        assert_eq!(two.group_batch, 8);
        let one = est
            .estimate(
                &model,
                wl,
                Design::Basic,
                &sim,
                ParallelismPlan::new(1, 1, 1),
            )
            .unwrap();
        assert!(
            two.step_total < one.step_total,
            "half the batch per group must be faster"
        );
    }
}
