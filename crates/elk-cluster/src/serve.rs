//! Cluster-level serving: routed request replay over `dp` replica
//! groups, each running a `(tp, pp)` pipeline plan.
//!
//! Where [`elk_serve::ServingSim`] pre-partitions its trace round-robin
//! so replicas can simulate independently, the cluster engine routes
//! **dynamically**: all groups share one [`elk_sim_core`] event queue,
//! so arrivals and step completions interleave in global time order and
//! a [`Router`] picks each arrival's group from the outstanding counts
//! observable *at that instant* — never from steps that only finish
//! later. This makes load-aware policies (least-outstanding,
//! power-of-two choices) meaningful, at the cost of a sequential event
//! loop — worker threads still accelerate the compile side through the
//! shared single-flight [`PlanCache`], and because cached step
//! latencies are deterministic the emitted report is byte-identical at
//! any thread count.
//!
//! A group's step latency is the pipeline composition of its stages:
//! each stage's sub-graph is compiled and simulated through the exact
//! `DesignRunner` path (cached per stage *shape*, so equal-sized
//! interior stages compile once), plus the stage-boundary transfer
//! priced on the [`CollectiveModel`].

use serde::Serialize;

use elk_baselines::Design;
use elk_hw::SystemConfig;
use elk_model::{Phase, TransformerConfig};
use elk_obs::Obs;
use elk_serve::{
    next_step, BatchConfig, LatencyStats, RequestOutcome, RequestTrace, Router, RouterPolicy,
    SloConfig, StepPlan,
};
use elk_sim::SimOptions;
use elk_sim_core::{EventQueue, QueueStat, PRIO_ARRIVAL, PRIO_STEP_DONE};
use elk_units::Seconds;

use crate::plan::ParallelismPlan;
use crate::pricing::StepPricer;
use crate::ClusterError;

/// Everything cluster serving is parameterized by (except the design
/// and router policy, which are per-run so runs share one engine and
/// cache).
#[derive(Debug, Clone)]
pub struct ClusterServeConfig {
    /// Model to serve (dense transformers only, like [`elk_serve`]).
    pub model: TransformerConfig,
    /// The `(tp, pp, dp)` layout; `dp` is the replica-group count.
    pub plan: ParallelismPlan,
    /// Continuous-batching knobs, applied per group.
    pub batch: BatchConfig,
    /// Latency SLO for goodput accounting.
    pub slo: SloConfig,
    /// Chip-simulator options used when a plan is compiled.
    pub sim: SimOptions,
    /// Compile worker threads (`0` = all cores): accelerates plan-cache
    /// warming only; the event loop itself is sequential and outputs
    /// are byte-identical at any setting.
    pub threads: usize,
}

impl ClusterServeConfig {
    /// A config serving `model` under `plan` with default batching, SLO,
    /// and simulator knobs.
    #[must_use]
    pub fn new(model: TransformerConfig, plan: ParallelismPlan) -> Self {
        ClusterServeConfig {
            model,
            plan,
            batch: BatchConfig::default(),
            slo: SloConfig::default(),
            sim: SimOptions::default(),
            threads: 1,
        }
    }
}

/// Aggregated result of one routed cluster serving run.
///
/// Unlike [`elk_serve::ServingReport`] this report carries no cache
/// hit/miss split — the split legitimately shifts with the compile
/// worker count, and cluster reports are byte-identical across
/// `--threads` settings by contract.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterServingReport {
    /// The design that served the trace.
    pub design: Design,
    /// The router policy requests were dispatched with.
    pub policy: RouterPolicy,
    /// The `(tp, pp, dp)` layout.
    pub plan: ParallelismPlan,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (the loop drains every queue).
    pub completed: usize,
    /// Trace start to the last token of the last request.
    pub makespan: Seconds,
    /// Time-to-first-token summary.
    pub ttft: LatencyStats,
    /// Time-per-output-token summary (multi-token requests only).
    pub tpot: LatencyStats,
    /// End-to-end latency summary.
    pub e2e: LatencyStats,
    /// The SLO the run was scored against.
    pub slo: SloConfig,
    /// Fraction of completed requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second of makespan.
    pub goodput_rps: f64,
    /// All completions per second of makespan.
    pub throughput_rps: f64,
    /// Generated tokens per second of makespan (all groups).
    pub tokens_per_sec: f64,
    /// Prefill iterations across all groups.
    pub prefill_steps: u64,
    /// Decode iterations across all groups.
    pub decode_steps: u64,
    /// Requests dispatched to each replica group, in group order.
    pub per_group_requests: Vec<usize>,
    /// Time-weighted mean waiting-queue depth: total depth×time area
    /// over total simulated group-time (same contract as
    /// [`elk_serve::ServingReport`]).
    pub mean_queue_depth: f64,
    /// Deepest waiting queue observed on any group at any instant.
    pub max_queue_depth: usize,
    /// `(time, waiting)` depth transitions, all groups interleaved in
    /// time order — the same timestamped shape `elk-serve` reports.
    pub queue_depth: Vec<(Seconds, usize)>,
    /// Simulation-kernel events fired (arrivals + step completions).
    pub sim_events: u64,
    /// Largest future-event heap the shared kernel held at once — the
    /// memory-pressure proxy matching `sim_events`' throughput one.
    pub peak_event_queue_len: usize,
    /// Per-request timelines, in trace order (`replica` is the group).
    pub outcomes: Vec<RequestOutcome>,
}

/// Typed events on the cluster's shared simulation timeline.
enum Ev {
    /// The request at this trace index reaches the front-end router.
    Arrival(usize),
    /// This group's in-flight scheduler step completes.
    StepDone {
        /// Index of the group whose step finished.
        gid: usize,
    },
}

/// What a group's in-flight step will do when its completion fires.
/// Crate-visible so the tenancy engine reuses the same step machinery.
pub(crate) enum PendingStep {
    /// Prefill of these trace indices.
    Prefill {
        /// Trace indices admitted into the step.
        batch: Vec<usize>,
    },
    /// One decode iteration over the group's active set.
    Decode,
}

/// One replica group's live state during the event loop.
pub(crate) struct Group {
    /// Waiting queue, trace indices in dispatch order (FIFO).
    pub(crate) waiting: Vec<usize>,
    /// Active (decoding) requests.
    pub(crate) active: Vec<InFlight>,
    /// The step currently running on the group's chips, if any.
    pub(crate) pending: Option<PendingStep>,
    pub(crate) prefill_steps: u64,
    pub(crate) decode_steps: u64,
    /// Waiting-queue depth trace (transitions + time-weighted area).
    pub(crate) queue: QueueStat,
    pub(crate) served: usize,
    /// Completion time of the group's last step.
    pub(crate) end: Seconds,
}

pub(crate) struct InFlight {
    pub(crate) idx: usize,
    pub(crate) generated: u64,
}

impl Group {
    pub(crate) fn new() -> Self {
        Group {
            waiting: Vec::new(),
            active: Vec::new(),
            pending: None,
            prefill_steps: 0,
            decode_steps: 0,
            queue: QueueStat::new(),
            served: 0,
            end: Seconds::ZERO,
        }
    }

    /// Queued + in-flight requests, as a front-end router observes them:
    /// requests inside an unfinished prefill step still count.
    pub(crate) fn outstanding(&self) -> usize {
        let in_step = match &self.pending {
            Some(PendingStep::Prefill { batch }) => batch.len(),
            _ => 0,
        };
        self.waiting.len() + self.active.len() + in_step
    }
}

/// Trace-driven cluster serving simulator for one (pod, model, plan).
///
/// Owns the group-level `DesignRunner` (fitted cost model) and the
/// shared single-flight `PlanCache`, so consecutive runs — across
/// designs and router policies — reuse stage catalogs and compiled
/// plans.
#[derive(Debug)]
pub struct ClusterServingSim {
    config: ClusterServeConfig,
    pricer: StepPricer,
    obs: Obs,
}

impl ClusterServingSim {
    /// Creates a simulator for `config` on the pod `system`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when the plan does not fit the pod or
    /// the model. Only the structural constraints apply — step batches
    /// are dynamic, and a `dp` beyond a short trace's request count
    /// merely leaves the extra groups idle.
    pub fn new(system: SystemConfig, config: ClusterServeConfig) -> Result<Self, ClusterError> {
        config.batch.validate();
        config
            .plan
            .validate_structure(&system, &config.model)
            .map_err(ClusterError::Invalid)?;
        let pricer = StepPricer::new(
            &system,
            config.model.clone(),
            config.plan,
            config.sim,
            config.threads,
        );
        Ok(ClusterServingSim {
            pricer,
            config,
            obs: Obs::null(),
        })
    }

    /// Attaches an observation handle: kernel dispatch spans on the
    /// shared timeline, per-request lanes tagged with their group, and
    /// latency histograms. The event loop is sequential, so recording
    /// goes straight to the shared sink and stays deterministic.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The serve configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterServeConfig {
        &self.config
    }

    /// Cumulative plan-cache counters (across all runs so far). Not part
    /// of any emitted report — the hit/miss split shifts with the
    /// compile worker count.
    #[must_use]
    pub fn cache_stats(&self) -> elk_serve::CacheStats {
        self.pricer.cache_stats()
    }

    /// Serves `trace` under `design`, dispatching with `policy`, and
    /// reports request-level metrics. The plan cache persists across
    /// calls, so a second design or policy reuses compiled stages.
    ///
    /// # Errors
    ///
    /// Propagates compile failures as [`ClusterError::Compile`].
    pub fn run(
        &mut self,
        design: Design,
        policy: RouterPolicy,
        trace: &RequestTrace,
    ) -> Result<ClusterServingReport, ClusterError> {
        let dp = self.config.plan.dp as usize;
        let mut router = Router::new(policy, dp);
        let mut groups: Vec<Group> = (0..dp).map(|_| Group::new()).collect();
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let reqs = &trace.requests;

        // One shared kernel timeline: arrivals and every group's step
        // completions interleave in global `(time, priority, seq)`
        // order, so the router observes exactly the state a front-end
        // would see at the arrival instant.
        let stats_before = self.pricer.cache_stats();
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.observe(
            self.obs.clone(),
            "cluster/kernel",
            &[(PRIO_ARRIVAL, "arrival"), (PRIO_STEP_DONE, "step_done")],
        );
        for (idx, req) in reqs.iter().enumerate() {
            q.schedule(req.arrival, PRIO_ARRIVAL, Ev::Arrival(idx));
        }

        while let Some(fired) = q.pop() {
            let now = q.now();
            match fired.event {
                Ev::Arrival(idx) => {
                    let outstanding: Vec<usize> = groups.iter().map(Group::outstanding).collect();
                    let pick = router.route(&outstanding);
                    let group = &mut groups[pick];
                    group.waiting.push(idx);
                    group.served += 1;
                    group.queue.record(now, group.waiting.len());
                }
                Ev::StepDone { gid } => {
                    let group = &mut groups[gid];
                    match group.pending.take().expect("StepDone implies a step") {
                        PendingStep::Prefill { batch } => {
                            group.prefill_steps += 1;
                            for idx in batch {
                                outcomes[idx] = Some(RequestOutcome {
                                    id: reqs[idx].id,
                                    replica: gid,
                                    arrival: reqs[idx].arrival,
                                    first_token: now,
                                    completion: now,
                                    output_len: reqs[idx].output_len,
                                });
                                if reqs[idx].output_len > 1 {
                                    group.active.push(InFlight { idx, generated: 1 });
                                }
                            }
                        }
                        PendingStep::Decode => {
                            group.decode_steps += 1;
                            group.active.retain_mut(|a| {
                                a.generated += 1;
                                let outcome = outcomes[a.idx].as_mut().expect("prefilled");
                                outcome.completion = now;
                                a.generated < reqs[a.idx].output_len
                            });
                        }
                    }
                    group.end = now;
                }
            }
            // Defer dispatch until every event at this instant has
            // fired, then scan groups in index order (deterministic).
            if q.peek_time() == Some(now) {
                continue;
            }
            for (gid, group) in groups.iter_mut().enumerate() {
                if group.pending.is_some() {
                    continue;
                }
                let prompts: Vec<u64> = group
                    .waiting
                    .iter()
                    .take(self.config.batch.max_batch as usize)
                    .map(|&i| reqs[i].prompt_len)
                    .collect();
                let Some(step) = next_step(&self.config.batch, &prompts, group.active.len()) else {
                    continue;
                };
                let latency = match step {
                    StepPlan::Prefill { admit } => {
                        let batch: Vec<usize> = group.waiting.drain(..admit).collect();
                        group.queue.record(now, group.waiting.len());
                        let longest = batch
                            .iter()
                            .map(|&i| reqs[i].prompt_len)
                            .max()
                            .expect("prefill admits >= 1");
                        let wl = self.config.batch.step_workload(
                            Phase::Prefill,
                            batch.len() as u64,
                            longest,
                        );
                        let latency = self
                            .pricer
                            .split_step(design, wl)
                            .map_err(|(stage, source)| ClusterError::Compile { stage, source })?;
                        group.pending = Some(PendingStep::Prefill { batch });
                        latency
                    }
                    StepPlan::Decode => {
                        let deepest = group
                            .active
                            .iter()
                            .map(|a| reqs[a.idx].prompt_len + a.generated)
                            .max()
                            .expect("decode requires >= 1 active");
                        let wl = self.config.batch.step_workload(
                            Phase::Decode,
                            group.active.len() as u64,
                            deepest,
                        );
                        let latency = self
                            .pricer
                            .split_step(design, wl)
                            .map_err(|(stage, source)| ClusterError::Compile { stage, source })?;
                        group.pending = Some(PendingStep::Decode);
                        latency
                    }
                };
                q.schedule_after(latency, PRIO_STEP_DONE, Ev::StepDone { gid });
            }
        }

        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("the drain completes every request"))
            .collect();
        if self.obs.enabled() {
            let d = self.pricer.cache_stats().since(stats_before);
            self.obs.counter("cluster.cache.lookups", d.hits + d.misses);
        }
        Ok(summarize_groups(
            design,
            policy,
            self.config.plan,
            self.config.slo,
            trace.len(),
            trace.total_output_tokens(),
            groups,
            outcomes,
            (q.events_processed(), q.peak_len()),
            &self.obs,
        ))
    }
}

/// Folds per-request outcomes into the aggregate report. Shared by the
/// plain cluster engine and the tenancy engine — the latter passes the
/// *served* token total (rejected requests generate nothing) and an
/// outcome list that may be shorter than the trace.
#[allow(clippy::too_many_arguments)]
pub(crate) fn summarize_groups(
    design: Design,
    policy: RouterPolicy,
    plan: ParallelismPlan,
    slo: SloConfig,
    requests: usize,
    served_tokens: u64,
    groups: Vec<Group>,
    outcomes: Vec<RequestOutcome>,
    (sim_events, peak_event_queue_len): (u64, usize),
    obs: &Obs,
) -> ClusterServingReport {
    if obs.enabled() {
        // Lanes and histograms derive from the final outcome list
        // (trace order), so they are deterministic by construction.
        for (i, o) in outcomes.iter().enumerate() {
            obs.histogram("cluster.ttft", o.ttft());
            if let Some(t) = o.tpot() {
                obs.histogram("cluster.tpot", t);
            }
            obs.histogram("cluster.e2e", o.e2e());
            if !obs.sampled(i) {
                continue;
            }
            let track = format!("req/{}", o.id);
            let args = [("group", o.replica.to_string())];
            obs.span(
                &track,
                "prefill",
                o.arrival,
                o.first_token - o.arrival,
                &args,
            );
            if o.completion > o.first_token {
                obs.span(
                    &track,
                    "decode",
                    o.first_token,
                    o.completion - o.first_token,
                    &args,
                );
            }
        }
    }
    let ttft: Vec<Seconds> = outcomes.iter().map(RequestOutcome::ttft).collect();
    let tpot: Vec<Seconds> = outcomes.iter().filter_map(RequestOutcome::tpot).collect();
    let e2e: Vec<Seconds> = outcomes.iter().map(RequestOutcome::e2e).collect();
    let met = outcomes.iter().filter(|o| o.meets(&slo)).count();
    let makespan = groups
        .iter()
        .map(|g| g.end)
        .fold(Seconds::ZERO, Seconds::max);
    let span = makespan.as_secs();
    let per_sec = |x: f64| if span > 0.0 { x / span } else { 0.0 };
    // Time-weighted queue mean: each group's depth integrated over
    // its own timeline, pooled over total simulated group-time.
    let depth_area: f64 = groups.iter().map(|g| g.queue.area_until(g.end)).sum();
    let sim_time: f64 = groups.iter().map(|g| g.end.as_secs()).sum();
    let max_queue_depth = groups
        .iter()
        .map(|g| g.queue.max_depth())
        .max()
        .unwrap_or(0);
    let prefill_steps = groups.iter().map(|g| g.prefill_steps).sum();
    let decode_steps = groups.iter().map(|g| g.decode_steps).sum();
    let per_group_requests = groups.iter().map(|g| g.served).collect();
    let mut queue_depth: Vec<(Seconds, usize)> = groups
        .into_iter()
        .flat_map(|g| g.queue.into_samples())
        .collect();
    queue_depth.sort_by_key(|&(t, _)| t);
    ClusterServingReport {
        design,
        policy,
        plan,
        requests,
        completed: outcomes.len(),
        makespan,
        ttft: LatencyStats::of(&ttft),
        tpot: LatencyStats::of(&tpot),
        e2e: LatencyStats::of(&e2e),
        slo,
        slo_attainment: if outcomes.is_empty() {
            0.0
        } else {
            met as f64 / outcomes.len() as f64
        },
        goodput_rps: per_sec(met as f64),
        throughput_rps: per_sec(outcomes.len() as f64),
        tokens_per_sec: per_sec(served_tokens as f64),
        prefill_steps,
        decode_steps,
        per_group_requests,
        mean_queue_depth: if sim_time > 0.0 {
            depth_area / sim_time
        } else {
            0.0
        },
        max_queue_depth,
        queue_depth,
        sim_events,
        peak_event_queue_len,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::{zoo, SeqBuckets};
    use elk_serve::{ArrivalProcess, LengthDist, TraceConfig};

    fn tiny_config(plan: ParallelismPlan) -> ClusterServeConfig {
        let mut model = zoo::llama2_13b();
        model.layers = 2;
        ClusterServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_prefill_tokens: 2048,
                seq_buckets: SeqBuckets::new(256, 2048),
                bucket_batch: true,
            },
            ..ClusterServeConfig::new(model, plan)
        }
    }

    fn tiny_trace(requests: usize) -> RequestTrace {
        TraceConfig {
            seed: 11,
            requests,
            arrivals: ArrivalProcess::Poisson { rate_rps: 200.0 },
            prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
            output_len: LengthDist::Uniform { lo: 2, hi: 12 },
        }
        .generate()
    }

    #[test]
    fn recorded_timeline_is_byte_identical_across_thread_counts() {
        use elk_obs::export::{chrome_trace, metrics};
        use elk_obs::MemRecorder;
        use std::sync::Arc;

        let trace = tiny_trace(14);
        let run = |threads: usize| {
            let mut sim = ClusterServingSim::new(
                presets::ipu_pod4(),
                ClusterServeConfig {
                    threads,
                    ..tiny_config(ParallelismPlan::new(2, 1, 2))
                },
            )
            .unwrap();
            let rec = Arc::new(MemRecorder::new());
            sim.set_obs(Obs::new(rec.clone(), 64));
            sim.run(Design::ElkFull, RouterPolicy::LeastOutstanding, &trace)
                .unwrap();
            let buf = rec.take_buf();
            (
                serde_json::to_string(&chrome_trace(&buf)).unwrap(),
                serde_json::to_string(&metrics(&buf)).unwrap(),
            )
        };
        let (t1_trace, t1_metrics) = run(1);
        let (t4_trace, t4_metrics) = run(4);
        assert_eq!(t1_trace, t4_trace, "timeline must not depend on threads");
        assert_eq!(t1_metrics, t4_metrics, "metrics must not depend on threads");
        assert!(t1_trace.contains("req/"), "per-request lanes recorded");
        assert!(t1_trace.contains("cluster/kernel"), "kernel track recorded");
        assert!(t1_metrics.contains("cluster.cache.lookups"));
        assert!(t1_metrics.contains("cluster.ttft"));
    }

    #[test]
    fn every_request_completes_under_every_policy() {
        let trace = tiny_trace(14);
        let mut sim = ClusterServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(2, 1, 2)),
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let r = sim.run(Design::ElkFull, policy, &trace).unwrap();
            assert_eq!(r.completed, 14, "{policy}");
            assert_eq!(r.per_group_requests.iter().sum::<usize>(), 14);
            for o in &r.outcomes {
                assert!(o.first_token > o.arrival, "{policy}");
                assert!(o.completion >= o.first_token);
                assert!(o.replica < 2);
            }
        }
    }

    #[test]
    fn least_outstanding_steers_around_a_busy_group() {
        // One giant request arrives first and monopolizes whichever
        // group receives it; the rest trickle in afterwards. A blind
        // round-robin keeps alternating onto the busy group; the
        // load-aware policy routes everything else to the idle one.
        let mut requests = vec![elk_serve::Request {
            id: 0,
            arrival: Seconds::ZERO,
            prompt_len: 512,
            output_len: 4000,
        }];
        for i in 1..9u64 {
            requests.push(elk_serve::Request {
                id: i,
                arrival: Seconds::from_millis(10.0 * i as f64),
                prompt_len: 256,
                output_len: 2,
            });
        }
        let trace = RequestTrace::from_requests(requests);
        let mut sim = ClusterServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 2)),
        )
        .unwrap();
        let rr = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace)
            .unwrap();
        let lo = sim
            .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &trace)
            .unwrap();
        assert_eq!(rr.completed, lo.completed);
        let busy = lo.outcomes[0].replica;
        let sent_to_busy = |r: &ClusterServingReport, g: usize| {
            r.outcomes[1..].iter().filter(|o| o.replica == g).count()
        };
        assert!(
            sent_to_busy(&lo, busy) < sent_to_busy(&rr, rr.outcomes[0].replica),
            "least-outstanding must send fewer trailing requests to the busy group \
             ({} vs {})",
            sent_to_busy(&lo, busy),
            sent_to_busy(&rr, rr.outcomes[0].replica)
        );
        assert!(lo.e2e.mean <= rr.e2e.mean, "steering must pay off here");
    }

    #[test]
    fn pipeline_plan_serves_and_reuses_the_stage_cache() {
        let trace = tiny_trace(6);
        let mut sim = ClusterServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 2, 2)),
        )
        .unwrap();
        let r = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace)
            .unwrap();
        assert_eq!(r.completed, 6);
        let after_first = sim.cache_stats();
        assert!(after_first.misses > 0);
        // Same design again: everything cached.
        let r2 = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace)
            .unwrap();
        assert_eq!(sim.cache_stats().misses, after_first.misses);
        assert_eq!(r.outcomes, r2.outcomes, "replay is deterministic");
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let trace = tiny_trace(10);
        let plan = ParallelismPlan::new(2, 2, 1);
        let mut seq = ClusterServingSim::new(presets::ipu_pod4(), tiny_config(plan)).unwrap();
        let mut par = ClusterServingSim::new(
            presets::ipu_pod4(),
            ClusterServeConfig {
                threads: 4,
                ..tiny_config(plan)
            },
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let a = seq.run(Design::ElkFull, policy, &trace).unwrap();
            let b = par.run(Design::ElkFull, policy, &trace).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{policy}: cluster serving must be byte-identical across thread counts"
            );
        }
    }

    #[test]
    fn oversized_plan_is_rejected_up_front() {
        let e = ClusterServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(4, 1, 2)),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(e.to_string().contains("chips"), "{e}");
    }
}
