//! Disaggregated prefill/decode serving: two chip pools on one
//! deterministic timeline.
//!
//! Where [`ClusterServingSim`](crate::ClusterServingSim) colocates
//! prefill and decode on every replica group (a group cannot decode
//! while a prefill step occupies its pipeline), the disaggregated
//! engine splits the pod into a **prefill pool** and a **decode pool**,
//! each with its own [`ParallelismPlan`] and dp groups:
//!
//! * arrivals are routed over the prefill groups by a front-tier
//!   [`Router`];
//! * a completed prompt's KV cache is handed off to a decode group
//!   picked by a back-tier router, paying the point-to-point transfer
//!   `CollectiveModel::p2p(layers × kv_heads × head_dim × prompt_len ×
//!   dtype)` on the pod's interconnect;
//! * decode groups run pure token-generation steps, so a mega-prompt
//!   prefill never stalls another request's decode;
//! * **chunked prefill** (`chunk_tokens > 0`) caps the prompt tokens
//!   one prefill step may process, bounding step granularity so
//!   finished prompts stream to the decode pool at chunk cadence
//!   instead of draining only when a giant mixed step retires.
//!
//! The two pools price steps through one shared single-flight
//! [`PlanCache`](elk_serve::PlanCache) — the cache keys carry the tp
//! degree and the workload phase, exactly the split the pools need.
//!
//! ## The degenerate config is the colocated engine
//!
//! With `shared_chips` set, both pools are mapped onto the *same*
//! groups of one pod: prefill group `i` and decode group `i` time-share
//! one pipeline, the KV handoff is free (the cache already sits in the
//! group's memory) and stays on group `i`. With chunking disabled and
//! identical pool plans this engine reproduces
//! [`ClusterServingSim`](crate::ClusterServingSim) **bit-for-bit** —
//! same outcomes, same percentiles, same step counts — which is pinned
//! by a differential test. The disaggregation machinery is therefore a
//! strict generalization of the colocated engine, not a second engine
//! that can drift.

use std::sync::Arc;

use serde::Serialize;

use elk_baselines::Design;
use elk_hw::{CollectiveModel, SystemConfig};
use elk_model::{DType, Phase, TransformerConfig};
use elk_obs::Obs;
use elk_serve::{
    next_step, BatchConfig, LatencyStats, PlanCache, RequestOutcome, RequestTrace, Router,
    RouterPolicy, SloConfig, StepPlan,
};
use elk_sim::SimOptions;
use elk_sim_core::{EventQueue, QueueStat, PRIO_ARRIVAL, PRIO_STEP_DONE};
use elk_units::{Bytes, Seconds};

use crate::plan::ParallelismPlan;
use crate::pricing::StepPricer;
use crate::ClusterError;

/// KV handoffs settle after the step completions of the same instant,
/// so a prefill that finishes at `t` has published its outcome before
/// the transferred request joins a decode group at the same `t`.
const PRIO_HANDOFF: u8 = 2;

/// Everything disaggregated serving is parameterized by (except the
/// design and router policy, which are per-run so runs share the
/// engine and its plan cache).
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Model to serve (dense transformers only, like [`elk_serve`]).
    pub model: TransformerConfig,
    /// The prefill pool's `(tp, pp, dp)` layout.
    pub prefill: ParallelismPlan,
    /// The decode pool's `(tp, pp, dp)` layout.
    pub decode: ParallelismPlan,
    /// Continuous-batching knobs, applied per group in both pools.
    pub batch: BatchConfig,
    /// Latency SLO for goodput accounting.
    pub slo: SloConfig,
    /// Chip-simulator options used when a plan is compiled.
    pub sim: SimOptions,
    /// Compile worker threads (`0` = all cores): accelerates plan-cache
    /// warming only; reports are byte-identical at any setting.
    pub threads: usize,
    /// Prompt-token cap per prefill step; `0` disables chunking and
    /// reproduces the colocated admission rule exactly.
    pub chunk_tokens: u64,
    /// Map both pools onto the *same* dp groups of one pod: prefill
    /// group `i` and decode group `i` time-share one pipeline and the
    /// KV handoff is free and stays on group `i`. Requires identical
    /// pool plans — this is the degenerate config under which the
    /// engine equals [`ClusterServingSim`](crate::ClusterServingSim).
    pub shared_chips: bool,
}

impl DisaggConfig {
    /// A config serving `model` with the given pool layouts and default
    /// batching, SLO, and simulator knobs (chunking off, pools on
    /// disjoint chips).
    #[must_use]
    pub fn new(
        model: TransformerConfig,
        prefill: ParallelismPlan,
        decode: ParallelismPlan,
    ) -> Self {
        DisaggConfig {
            model,
            prefill,
            decode,
            batch: BatchConfig::default(),
            slo: SloConfig::default(),
            sim: SimOptions::default(),
            threads: 1,
            chunk_tokens: 0,
            shared_chips: false,
        }
    }
}

/// The KV cache a finished prompt ships to its decode group:
/// `layers × kv_heads × head_dim × prompt_len` elements of the KV
/// dtype (f16), per the paper's cache layout.
#[must_use]
pub fn kv_handoff_bytes(model: &TransformerConfig, prompt_len: u64) -> Bytes {
    DType::F16.bytes_for(u64::from(model.layers) * model.kv_heads * model.head_dim * prompt_len)
}

/// One completed prompt's pool-to-pool transfer, in handoff-completion
/// order (which is time order — the conservation tests assert it).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HandoffRecord {
    /// Request id.
    pub id: u64,
    /// Prefill group that produced the KV cache.
    pub from: usize,
    /// Decode group the cache landed on.
    pub to: usize,
    /// When the prompt's last prefill chunk retired.
    pub prefill_done: Seconds,
    /// When the KV transfer completed (`prefill_done` + p2p latency).
    pub handoff_done: Seconds,
    /// Transferred volume (zero on shared chips).
    pub bytes: Bytes,
}

/// Aggregated result of one disaggregated serving run.
///
/// Field conventions follow
/// [`ClusterServingReport`](crate::ClusterServingReport): no wall-clock
/// fields, no cache hit/miss split, byte-identical across `--threads`
/// settings.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DisaggServingReport {
    /// The design that served the trace.
    pub design: Design,
    /// The router policy used at both tiers.
    pub policy: RouterPolicy,
    /// The prefill pool's layout.
    pub prefill_plan: ParallelismPlan,
    /// The decode pool's layout.
    pub decode_plan: ParallelismPlan,
    /// `true` when both pools time-share one set of groups.
    pub shared_chips: bool,
    /// Prompt-token cap per prefill step (`0` = chunking off).
    pub chunk_tokens: u64,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (the loop drains every queue).
    pub completed: usize,
    /// Trace start to the last step retired on either pool.
    pub makespan: Seconds,
    /// Time-to-first-token summary (the first token is released when
    /// the KV handoff lands on the decode pool).
    pub ttft: LatencyStats,
    /// Time-per-output-token summary (multi-token requests only).
    pub tpot: LatencyStats,
    /// End-to-end latency summary.
    pub e2e: LatencyStats,
    /// The SLO the run was scored against.
    pub slo: SloConfig,
    /// Fraction of completed requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second of makespan.
    pub goodput_rps: f64,
    /// All completions per second of makespan.
    pub throughput_rps: f64,
    /// Generated tokens per second of makespan (all groups).
    pub tokens_per_sec: f64,
    /// Prefill iterations across the prefill pool.
    pub prefill_steps: u64,
    /// Decode iterations across the decode pool.
    pub decode_steps: u64,
    /// Prompt tokens processed by prefill steps — exactly the trace's
    /// total prompt tokens when every request prefills exactly once
    /// (chunks included), which the conservation tests assert.
    pub prefill_tokens: u64,
    /// Requests routed to each prefill group, in group order.
    pub per_prefill_group_requests: Vec<usize>,
    /// Requests handed off to each decode group, in group order.
    pub per_decode_group_requests: Vec<usize>,
    /// Total KV volume moved between the pools.
    pub kv_moved: Bytes,
    /// Summed p2p latency of every handoff.
    pub handoff_total: Seconds,
    /// Time-weighted mean waiting-queue depth over the prefill tier
    /// (same contract as the colocated report's `mean_queue_depth`).
    pub prefill_mean_queue_depth: f64,
    /// Deepest prefill waiting queue observed at any instant.
    pub prefill_max_queue_depth: usize,
    /// Time-weighted mean depth of KV arrivals waiting to join a
    /// decode batch.
    pub decode_mean_queue_depth: f64,
    /// Deepest decode-side arrival queue observed at any instant.
    pub decode_max_queue_depth: usize,
    /// `(time, waiting)` prefill-queue transitions, all groups
    /// interleaved in time order.
    pub queue_depth: Vec<(Seconds, usize)>,
    /// Simulation-kernel events fired (arrivals + steps + handoffs).
    pub sim_events: u64,
    /// Every pool-to-pool transfer, in completion (time) order.
    pub handoffs: Vec<HandoffRecord>,
    /// Per-request timelines, in trace order (`replica` is the decode
    /// group).
    pub outcomes: Vec<RequestOutcome>,
}

/// Typed events on the shared two-pool timeline.
enum Ev {
    /// The request at this trace index reaches the front-end router.
    Arrival(usize),
    /// This prefill group's in-flight step completes.
    PrefillDone {
        /// Prefill-pool group index.
        gid: usize,
    },
    /// This decode group's in-flight step completes.
    DecodeDone {
        /// Decode-pool group index.
        gid: usize,
    },
    /// This request's KV cache lands on decode group `to`.
    Handoff {
        /// Trace index of the transferred request.
        idx: usize,
        /// Destination decode group.
        to: usize,
    },
}

/// One prefill group's live state: a FIFO of prompts (partially
/// prefilled heads return to the front) and at most one step in
/// flight.
struct PGroup {
    waiting: Vec<usize>,
    /// `(idx, tokens)` pairs the in-flight step is processing.
    pending: Option<Vec<(usize, u64)>>,
    prefill_steps: u64,
    queue: QueueStat,
    served: usize,
    end: Seconds,
}

impl PGroup {
    fn new() -> Self {
        PGroup {
            waiting: Vec::new(),
            pending: None,
            prefill_steps: 0,
            queue: QueueStat::new(),
            served: 0,
            end: Seconds::ZERO,
        }
    }

    /// Requests inside the in-flight step.
    fn in_step(&self) -> usize {
        self.pending.as_ref().map_or(0, Vec::len)
    }
}

/// One decode group's live state: landed KV arrivals stage in
/// `arrived` until a batch slot frees, `active` decodes one token per
/// step.
struct DGroup {
    /// Handed-off requests waiting for a decode batch slot.
    arrived: Vec<InFlight>,
    active: Vec<InFlight>,
    /// `true` while a decode step is in flight.
    pending: bool,
    /// Handoffs in transit destined for this group.
    inbound: usize,
    decode_steps: u64,
    queue: QueueStat,
    served: usize,
    end: Seconds,
}

impl DGroup {
    fn new() -> Self {
        DGroup {
            arrived: Vec::new(),
            active: Vec::new(),
            pending: false,
            inbound: 0,
            decode_steps: 0,
            queue: QueueStat::new(),
            served: 0,
            end: Seconds::ZERO,
        }
    }

    /// Requests a back-tier router counts against this group: decoding,
    /// staged, and in-transit.
    fn outstanding(&self) -> usize {
        self.active.len() + self.arrived.len() + self.inbound
    }

    /// Moves staged arrivals into the decode batch up to the batch cap,
    /// preserving landing order.
    fn admit(&mut self, now: Seconds, max_batch: usize) {
        let free = max_batch.saturating_sub(self.active.len());
        let n = free.min(self.arrived.len());
        if n > 0 {
            self.active.extend(self.arrived.drain(..n));
            self.queue.record(now, self.arrived.len());
        }
    }
}

struct InFlight {
    idx: usize,
    generated: u64,
}

/// Trace-driven disaggregated serving simulator for one
/// (pod, model, prefill plan, decode plan).
///
/// Owns one `StepPricer` per pool; both price through a shared
/// single-flight plan cache, so consecutive runs — across designs and
/// router policies — reuse stage catalogs and compiled plans, and
/// identical pool plans compile once.
#[derive(Debug)]
pub struct DisaggServingSim {
    config: DisaggConfig,
    links: CollectiveModel,
    prefill_pricer: StepPricer,
    decode_pricer: StepPricer,
    obs: Obs,
}

impl DisaggServingSim {
    /// Creates a simulator for `config` on the pod `system`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when either pool plan does not fit the
    /// pod or the model, the two pools together need more chips than
    /// the pod has (disjoint pools only), or `shared_chips` is set with
    /// differing pool plans.
    pub fn new(system: SystemConfig, config: DisaggConfig) -> Result<Self, ClusterError> {
        config.batch.validate();
        config
            .prefill
            .validate_structure(&system, &config.model)
            .map_err(|e| ClusterError::Invalid(format!("prefill pool: {e}")))?;
        config
            .decode
            .validate_structure(&system, &config.model)
            .map_err(|e| ClusterError::Invalid(format!("decode pool: {e}")))?;
        if config.shared_chips {
            if config.prefill != config.decode {
                return Err(ClusterError::Invalid(format!(
                    "shared_chips maps both pools onto the same groups, so the pool \
                     plans must match (prefill {}, decode {})",
                    config.prefill, config.decode
                )));
            }
        } else {
            let needed = config.prefill.chips_used() + config.decode.chips_used();
            if needed > system.chips {
                return Err(ClusterError::Invalid(format!(
                    "disjoint pools need {needed} chips (prefill {} + decode {}) but \
                     the pod has {}",
                    config.prefill, config.decode, system.chips
                )));
            }
        }
        let cache = Arc::new(PlanCache::new().with_threads(config.threads));
        let prefill_pricer = StepPricer::with_cache(
            &system,
            config.model.clone(),
            config.prefill,
            config.sim,
            Arc::clone(&cache),
        );
        let decode_pricer = StepPricer::with_cache(
            &system,
            config.model.clone(),
            config.decode,
            config.sim,
            cache,
        );
        Ok(DisaggServingSim {
            links: system.collective(),
            prefill_pricer,
            decode_pricer,
            config,
            obs: Obs::null(),
        })
    }

    /// Attaches a recorder: subsequent runs emit kernel dispatch spans,
    /// per-request lanes (with explicit `handoff` spans), and
    /// `disagg.*` metrics. All recorded quantities are sim-time only
    /// and byte-identical across `threads` settings.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The serve configuration.
    #[must_use]
    pub fn config(&self) -> &DisaggConfig {
        &self.config
    }

    /// Cumulative plan-cache counters across both pools (they share one
    /// cache). Not part of any emitted report.
    #[must_use]
    pub fn cache_stats(&self) -> elk_serve::CacheStats {
        self.prefill_pricer.cache_stats()
    }

    /// Serves `trace` under `design`, routing both tiers with `policy`,
    /// and reports request-level metrics. The plan cache persists
    /// across calls.
    ///
    /// # Errors
    ///
    /// Propagates compile failures as [`ClusterError::Compile`].
    #[allow(clippy::too_many_lines)] // one event loop, mirrored on serve.rs
    pub fn run(
        &mut self,
        design: Design,
        policy: RouterPolicy,
        trace: &RequestTrace,
    ) -> Result<DisaggServingReport, ClusterError> {
        let shared = self.config.shared_chips;
        let max_batch = self.config.batch.max_batch as usize;
        let p_dp = self.config.prefill.dp as usize;
        let d_dp = self.config.decode.dp as usize;
        let mut front = Router::new(policy, p_dp);
        let mut back = Router::new(policy, d_dp);
        let mut pgroups: Vec<PGroup> = (0..p_dp).map(|_| PGroup::new()).collect();
        let mut dgroups: Vec<DGroup> = (0..d_dp).map(|_| DGroup::new()).collect();
        let reqs = &trace.requests;
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        // Per-request prefill progress and handoff bookkeeping.
        let mut prefilled: Vec<u64> = vec![0; trace.len()];
        let mut prefill_done: Vec<Seconds> = vec![Seconds::ZERO; trace.len()];
        let mut handoff_from: Vec<usize> = vec![0; trace.len()];
        let mut handoff_bytes: Vec<Bytes> = vec![Bytes::ZERO; trace.len()];
        let mut handoffs: Vec<HandoffRecord> = Vec::with_capacity(trace.len());
        let mut kv_moved = Bytes::ZERO;
        let mut handoff_total = Seconds::ZERO;
        let mut prefill_tokens = 0u64;

        let stats_before = self.prefill_pricer.cache_stats();
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.observe(
            self.obs.clone(),
            "disagg/kernel",
            &[
                (PRIO_ARRIVAL, "arrival"),
                (PRIO_STEP_DONE, "step_done"),
                (PRIO_HANDOFF, "handoff"),
            ],
        );
        for (idx, req) in reqs.iter().enumerate() {
            q.schedule(req.arrival, PRIO_ARRIVAL, Ev::Arrival(idx));
        }

        while let Some(fired) = q.pop() {
            let now = q.now();
            match fired.event {
                Ev::Arrival(idx) => {
                    // The front tier sees a prefill group's queue plus,
                    // on shared chips, everything occupying the same
                    // pipeline from the decode side — exactly the
                    // colocated router's view.
                    let outstanding: Vec<usize> = (0..p_dp)
                        .map(|i| {
                            let own = pgroups[i].waiting.len() + pgroups[i].in_step();
                            if shared {
                                own + dgroups[i].outstanding()
                            } else {
                                own
                            }
                        })
                        .collect();
                    let pick = front.route(&outstanding);
                    let group = &mut pgroups[pick];
                    group.waiting.push(idx);
                    group.served += 1;
                    group.queue.record(now, group.waiting.len());
                }
                Ev::PrefillDone { gid } => {
                    let group = &mut pgroups[gid];
                    let batch = group.pending.take().expect("PrefillDone implies a step");
                    group.prefill_steps += 1;
                    group.end = now;
                    let mut unfinished: Vec<usize> = Vec::new();
                    for (idx, tokens) in batch {
                        prefilled[idx] += tokens;
                        prefill_tokens += tokens;
                        if prefilled[idx] < reqs[idx].prompt_len {
                            unfinished.push(idx);
                            continue;
                        }
                        // Prompt complete: route the KV cache to a
                        // decode group. On shared chips it is already
                        // where it needs to be.
                        let to = if shared {
                            gid
                        } else {
                            let outstanding: Vec<usize> =
                                dgroups.iter().map(DGroup::outstanding).collect();
                            back.route(&outstanding)
                        };
                        let bytes = if shared {
                            Bytes::ZERO
                        } else {
                            kv_handoff_bytes(&self.config.model, reqs[idx].prompt_len)
                        };
                        let latency = self.links.p2p(bytes);
                        prefill_done[idx] = now;
                        handoff_from[idx] = gid;
                        handoff_bytes[idx] = bytes;
                        kv_moved += bytes;
                        handoff_total += latency;
                        dgroups[to].inbound += 1;
                        dgroups[to].served += 1;
                        q.schedule_after(latency, PRIO_HANDOFF, Ev::Handoff { idx, to });
                    }
                    // A chunked head returns to the front of its FIFO.
                    if !unfinished.is_empty() {
                        let group = &mut pgroups[gid];
                        group.waiting.splice(0..0, unfinished);
                        group.queue.record(now, group.waiting.len());
                    }
                }
                Ev::Handoff { idx, to } => {
                    let group = &mut dgroups[to];
                    group.inbound -= 1;
                    handoffs.push(HandoffRecord {
                        id: reqs[idx].id,
                        from: handoff_from[idx],
                        to,
                        prefill_done: prefill_done[idx],
                        handoff_done: now,
                        bytes: handoff_bytes[idx],
                    });
                    outcomes[idx] = Some(RequestOutcome {
                        id: reqs[idx].id,
                        replica: to,
                        arrival: reqs[idx].arrival,
                        first_token: now,
                        completion: now,
                        output_len: reqs[idx].output_len,
                    });
                    if reqs[idx].output_len > 1 {
                        group.arrived.push(InFlight { idx, generated: 1 });
                        group.queue.record(now, group.arrived.len());
                    }
                }
                Ev::DecodeDone { gid } => {
                    let group = &mut dgroups[gid];
                    assert!(group.pending, "DecodeDone implies a step");
                    group.pending = false;
                    group.decode_steps += 1;
                    group.active.retain_mut(|a| {
                        a.generated += 1;
                        let outcome = outcomes[a.idx].as_mut().expect("handed off");
                        outcome.completion = now;
                        a.generated < reqs[a.idx].output_len
                    });
                    group.end = now;
                }
            }
            // Defer dispatch until every event at this instant has
            // fired, then scan groups in index order (deterministic).
            if q.peek_time() == Some(now) {
                continue;
            }
            if shared {
                // One pipeline per group pair: prefill-priority step
                // selection over the pair's joint state, i.e. the
                // colocated scheduler.
                for gid in 0..p_dp {
                    if pgroups[gid].pending.is_some() || dgroups[gid].pending {
                        continue;
                    }
                    dgroups[gid].admit(now, max_batch);
                    let active = dgroups[gid].active.len();
                    if let Some(batch) =
                        self.plan_prefill(&mut pgroups[gid], reqs, &prefilled, now, active)
                    {
                        let latency = self.prefill_latency(design, &prefilled, &batch)?;
                        pgroups[gid].pending = Some(batch);
                        q.schedule_after(latency, PRIO_STEP_DONE, Ev::PrefillDone { gid });
                    } else if active > 0 {
                        let latency = self.decode_latency(design, reqs, &dgroups[gid])?;
                        dgroups[gid].pending = true;
                        q.schedule_after(latency, PRIO_STEP_DONE, Ev::DecodeDone { gid });
                    }
                }
            } else {
                for (gid, group) in pgroups.iter_mut().enumerate() {
                    if group.pending.is_some() {
                        continue;
                    }
                    let Some(batch) = self.plan_prefill(group, reqs, &prefilled, now, 0) else {
                        continue;
                    };
                    let latency = self.prefill_latency(design, &prefilled, &batch)?;
                    group.pending = Some(batch);
                    q.schedule_after(latency, PRIO_STEP_DONE, Ev::PrefillDone { gid });
                }
                for (gid, group) in dgroups.iter_mut().enumerate() {
                    if group.pending {
                        continue;
                    }
                    group.admit(now, max_batch);
                    if group.active.is_empty() {
                        continue;
                    }
                    let latency = self.decode_latency(design, reqs, group)?;
                    group.pending = true;
                    q.schedule_after(latency, PRIO_STEP_DONE, Ev::DecodeDone { gid });
                }
            }
        }

        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("the drain completes every request"))
            .collect();
        if self.obs.enabled() {
            // Lookups (hits + misses) are thread-invariant; the split
            // and per-design plan counts are not, so they stay out of
            // the recorded stream.
            let d = self.prefill_pricer.cache_stats().since(stats_before);
            self.obs.counter("disagg.cache.lookups", d.hits + d.misses);
        }
        let sim_events = q.events_processed();
        Ok(self.summarize(
            design,
            policy,
            trace,
            pgroups,
            dgroups,
            outcomes,
            handoffs,
            kv_moved,
            handoff_total,
            prefill_tokens,
            sim_events,
        ))
    }

    /// Plans the next prefill step for one group: the colocated
    /// admission rule when chunking is off, a budget-capped FIFO walk
    /// (partial heads allowed) when it is on. Returns the `(idx,
    /// tokens)` pairs the step will process, draining them from the
    /// waiting queue, or `None` for an idle/decode turn.
    fn plan_prefill(
        &self,
        group: &mut PGroup,
        reqs: &[elk_serve::Request],
        prefilled: &[u64],
        now: Seconds,
        active: usize,
    ) -> Option<Vec<(usize, u64)>> {
        let cfg = &self.config.batch;
        if self.config.chunk_tokens == 0 {
            let prompts: Vec<u64> = group
                .waiting
                .iter()
                .take(cfg.max_batch as usize)
                .map(|&i| reqs[i].prompt_len)
                .collect();
            return match next_step(cfg, &prompts, active)? {
                StepPlan::Prefill { admit } => {
                    let batch: Vec<(usize, u64)> = group
                        .waiting
                        .drain(..admit)
                        .map(|i| (i, reqs[i].prompt_len))
                        .collect();
                    group.queue.record(now, group.waiting.len());
                    Some(batch)
                }
                StepPlan::Decode => None,
            };
        }
        // Chunked: spend up to `chunk_tokens` on the FIFO, head first
        // (a partially prefilled head resumes where its last chunk
        // stopped); only the last admitted request can be cut
        // mid-prompt.
        let free = (cfg.max_batch as usize).saturating_sub(active);
        if free == 0 || group.waiting.is_empty() {
            return None;
        }
        let mut budget = self.config.chunk_tokens;
        let mut batch: Vec<(usize, u64)> = Vec::new();
        for &idx in group.waiting.iter().take(free) {
            if budget == 0 {
                break;
            }
            let remaining = reqs[idx].prompt_len - prefilled[idx];
            let take = remaining.min(budget);
            batch.push((idx, take));
            budget -= take;
        }
        group.waiting.drain(..batch.len());
        group.queue.record(now, group.waiting.len());
        Some(batch)
    }

    /// Prices one prefill step over `batch`: the step's sequence length
    /// is the deepest context reached (`prefilled + tokens`), which for
    /// unchunked admission is exactly the longest prompt — the
    /// colocated formula.
    fn prefill_latency(
        &self,
        design: Design,
        prefilled: &[u64],
        batch: &[(usize, u64)],
    ) -> Result<Seconds, ClusterError> {
        let deepest = batch
            .iter()
            .map(|&(idx, tokens)| prefilled[idx] + tokens)
            .max()
            .expect("prefill admits >= 1");
        let wl = self
            .config
            .batch
            .step_workload(Phase::Prefill, batch.len() as u64, deepest);
        self.prefill_pricer
            .split_step(design, wl)
            .map_err(|(stage, source)| ClusterError::Compile { stage, source })
    }

    /// Prices one decode step over a group's active set.
    fn decode_latency(
        &self,
        design: Design,
        reqs: &[elk_serve::Request],
        group: &DGroup,
    ) -> Result<Seconds, ClusterError> {
        let deepest = group
            .active
            .iter()
            .map(|a| reqs[a.idx].prompt_len + a.generated)
            .max()
            .expect("decode requires >= 1 active");
        let wl = self
            .config
            .batch
            .step_workload(Phase::Decode, group.active.len() as u64, deepest);
        self.decode_pricer
            .split_step(design, wl)
            .map_err(|(stage, source)| ClusterError::Compile { stage, source })
    }

    /// Folds per-request outcomes into the aggregate report.
    #[allow(clippy::too_many_arguments)]
    fn summarize(
        &self,
        design: Design,
        policy: RouterPolicy,
        trace: &RequestTrace,
        pgroups: Vec<PGroup>,
        dgroups: Vec<DGroup>,
        outcomes: Vec<RequestOutcome>,
        handoffs: Vec<HandoffRecord>,
        kv_moved: Bytes,
        handoff_total: Seconds,
        prefill_tokens: u64,
        sim_events: u64,
    ) -> DisaggServingReport {
        if self.obs.enabled() {
            let by_id: std::collections::BTreeMap<u64, &HandoffRecord> =
                handoffs.iter().map(|h| (h.id, h)).collect();
            for (idx, o) in outcomes.iter().enumerate() {
                self.obs.histogram("disagg.ttft", o.ttft());
                if let Some(t) = o.tpot() {
                    self.obs.histogram("disagg.tpot", t);
                }
                self.obs.histogram("disagg.e2e", o.e2e());
                if !self.obs.sampled(idx) {
                    continue;
                }
                let track = format!("req/{}", o.id);
                let h = by_id.get(&o.id).expect("every request hands off once");
                self.obs.span(
                    &track,
                    "prefill",
                    o.arrival,
                    h.prefill_done - o.arrival,
                    &[("prefill_group", h.from.to_string())],
                );
                self.obs.span(
                    &track,
                    "handoff",
                    h.prefill_done,
                    h.handoff_done - h.prefill_done,
                    &[
                        ("decode_group", h.to.to_string()),
                        ("bytes", h.bytes.get().to_string()),
                    ],
                );
                if o.completion > o.first_token {
                    self.obs.span(
                        &track,
                        "decode",
                        o.first_token,
                        o.completion - o.first_token,
                        &[("decode_group", o.replica.to_string())],
                    );
                }
            }
        }
        let ttft: Vec<Seconds> = outcomes.iter().map(RequestOutcome::ttft).collect();
        let tpot: Vec<Seconds> = outcomes.iter().filter_map(RequestOutcome::tpot).collect();
        let e2e: Vec<Seconds> = outcomes.iter().map(RequestOutcome::e2e).collect();
        let met = outcomes
            .iter()
            .filter(|o| o.meets(&self.config.slo))
            .count();
        let makespan = pgroups
            .iter()
            .map(|g| g.end)
            .chain(dgroups.iter().map(|g| g.end))
            .fold(Seconds::ZERO, Seconds::max);
        let span = makespan.as_secs();
        let per_sec = |x: f64| if span > 0.0 { x / span } else { 0.0 };
        let tier_mean = |area: f64, time: f64| if time > 0.0 { area / time } else { 0.0 };
        let p_area: f64 = pgroups.iter().map(|g| g.queue.area_until(g.end)).sum();
        let p_time: f64 = pgroups.iter().map(|g| g.end.as_secs()).sum();
        let d_area: f64 = dgroups.iter().map(|g| g.queue.area_until(g.end)).sum();
        let d_time: f64 = dgroups.iter().map(|g| g.end.as_secs()).sum();
        let prefill_max_queue_depth = pgroups
            .iter()
            .map(|g| g.queue.max_depth())
            .max()
            .unwrap_or(0);
        let decode_max_queue_depth = dgroups
            .iter()
            .map(|g| g.queue.max_depth())
            .max()
            .unwrap_or(0);
        let prefill_steps = pgroups.iter().map(|g| g.prefill_steps).sum();
        let decode_steps = dgroups.iter().map(|g| g.decode_steps).sum();
        let per_prefill_group_requests = pgroups.iter().map(|g| g.served).collect();
        let per_decode_group_requests = dgroups.iter().map(|g| g.served).collect();
        let mut queue_depth: Vec<(Seconds, usize)> = pgroups
            .into_iter()
            .flat_map(|g| g.queue.into_samples())
            .collect();
        queue_depth.sort_by_key(|&(t, _)| t);
        DisaggServingReport {
            design,
            policy,
            prefill_plan: self.config.prefill,
            decode_plan: self.config.decode,
            shared_chips: self.config.shared_chips,
            chunk_tokens: self.config.chunk_tokens,
            requests: trace.len(),
            completed: outcomes.len(),
            makespan,
            ttft: LatencyStats::of(&ttft),
            tpot: LatencyStats::of(&tpot),
            e2e: LatencyStats::of(&e2e),
            slo: self.config.slo,
            slo_attainment: if outcomes.is_empty() {
                0.0
            } else {
                met as f64 / outcomes.len() as f64
            },
            goodput_rps: per_sec(met as f64),
            throughput_rps: per_sec(outcomes.len() as f64),
            tokens_per_sec: per_sec(trace.total_output_tokens() as f64),
            prefill_steps,
            decode_steps,
            prefill_tokens,
            per_prefill_group_requests,
            per_decode_group_requests,
            kv_moved,
            handoff_total,
            prefill_mean_queue_depth: tier_mean(p_area, p_time),
            prefill_max_queue_depth,
            decode_mean_queue_depth: tier_mean(d_area, d_time),
            decode_max_queue_depth,
            queue_depth,
            sim_events,
            handoffs,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterServeConfig, ClusterServingSim};
    use elk_hw::presets;
    use elk_model::{zoo, SeqBuckets};
    use elk_serve::{ArrivalProcess, LengthDist, TraceConfig};

    fn tiny_model() -> TransformerConfig {
        let mut model = zoo::llama2_13b();
        model.layers = 2;
        model
    }

    fn tiny_batch() -> BatchConfig {
        BatchConfig {
            max_batch: 8,
            max_prefill_tokens: 2048,
            seq_buckets: SeqBuckets::new(256, 2048),
            bucket_batch: true,
        }
    }

    fn tiny_config(prefill: ParallelismPlan, decode: ParallelismPlan) -> DisaggConfig {
        DisaggConfig {
            batch: tiny_batch(),
            ..DisaggConfig::new(tiny_model(), prefill, decode)
        }
    }

    fn tiny_trace(requests: usize) -> RequestTrace {
        TraceConfig {
            seed: 11,
            requests,
            arrivals: ArrivalProcess::Poisson { rate_rps: 200.0 },
            prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
            output_len: LengthDist::Uniform { lo: 2, hi: 12 },
        }
        .generate()
    }

    #[test]
    fn degenerate_config_reproduces_the_colocated_engine() {
        // shared chips + identical plans + no chunking = the colocated
        // scheduler: outcomes, latency summaries, step counts, and
        // routing must match bit-for-bit under every policy.
        let trace = tiny_trace(14);
        let plan = ParallelismPlan::new(2, 1, 2);
        let mut disagg = DisaggServingSim::new(
            presets::ipu_pod4(),
            DisaggConfig {
                shared_chips: true,
                ..tiny_config(plan, plan)
            },
        )
        .unwrap();
        let mut colo = ClusterServingSim::new(
            presets::ipu_pod4(),
            ClusterServeConfig {
                batch: tiny_batch(),
                ..ClusterServeConfig::new(tiny_model(), plan)
            },
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let d = disagg.run(Design::ElkFull, policy, &trace).unwrap();
            let c = colo.run(Design::ElkFull, policy, &trace).unwrap();
            assert_eq!(d.outcomes, c.outcomes, "{policy}");
            assert_eq!(
                serde_json::to_string(&d.ttft).unwrap(),
                serde_json::to_string(&c.ttft).unwrap(),
                "{policy}: ttft must be bit-identical"
            );
            assert_eq!(
                serde_json::to_string(&d.tpot).unwrap(),
                serde_json::to_string(&c.tpot).unwrap(),
                "{policy}: tpot must be bit-identical"
            );
            assert_eq!(
                serde_json::to_string(&d.e2e).unwrap(),
                serde_json::to_string(&c.e2e).unwrap(),
                "{policy}: e2e must be bit-identical"
            );
            assert_eq!(d.makespan, c.makespan, "{policy}");
            assert_eq!(d.prefill_steps, c.prefill_steps, "{policy}");
            assert_eq!(d.decode_steps, c.decode_steps, "{policy}");
            assert_eq!(
                d.per_prefill_group_requests, c.per_group_requests,
                "{policy}"
            );
            assert_eq!(d.kv_moved, Bytes::ZERO, "{policy}: shared chips move no KV");
            assert_eq!(d.handoff_total, Seconds::ZERO, "{policy}");
        }
    }

    #[test]
    fn disjoint_pools_complete_every_request_and_price_every_handoff() {
        let trace = tiny_trace(12);
        let mut sim = DisaggServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 2), ParallelismPlan::new(1, 1, 2)),
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let r = sim.run(Design::ElkFull, policy, &trace).unwrap();
            assert_eq!(r.completed, 12, "{policy}");
            assert_eq!(
                r.handoffs.len(),
                12,
                "{policy}: each request hands off once"
            );
            let expect: Bytes = trace
                .requests
                .iter()
                .map(|q| kv_handoff_bytes(&sim.config.model, q.prompt_len))
                .sum();
            assert_eq!(r.kv_moved, expect, "{policy}");
            assert!(r.handoff_total > Seconds::ZERO, "{policy}");
            for h in &r.handoffs {
                assert!(h.bytes.get() > 0, "{policy}");
                assert!(h.handoff_done > h.prefill_done, "{policy}: p2p takes time");
                assert!(h.from < 2 && h.to < 2, "{policy}");
            }
            for w in r.handoffs.windows(2) {
                assert!(
                    w[0].handoff_done <= w[1].handoff_done,
                    "{policy}: time order"
                );
            }
            assert_eq!(
                r.per_decode_group_requests.iter().sum::<usize>(),
                12,
                "{policy}"
            );
        }
    }

    #[test]
    fn chunked_prefill_conserves_prompt_tokens() {
        let trace = tiny_trace(10);
        let total_prompt: u64 = trace.requests.iter().map(|q| q.prompt_len).sum();
        let mut sim = DisaggServingSim::new(
            presets::ipu_pod4(),
            DisaggConfig {
                chunk_tokens: 256,
                ..tiny_config(ParallelismPlan::new(1, 1, 2), ParallelismPlan::new(1, 1, 2))
            },
        )
        .unwrap();
        let r = sim
            .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &trace)
            .unwrap();
        assert_eq!(r.completed, 10);
        assert_eq!(
            r.prefill_tokens, total_prompt,
            "chunks must cover each prompt exactly once"
        );
        // Prompts above the cap need multiple chunks, so there are more
        // prefill steps than an uncapped run would take.
        let unchunked = DisaggServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 2), ParallelismPlan::new(1, 1, 2)),
        )
        .unwrap()
        .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &trace)
        .unwrap();
        assert!(r.prefill_steps > unchunked.prefill_steps);
        assert_eq!(unchunked.prefill_tokens, total_prompt);
    }

    #[test]
    fn thread_count_does_not_change_disagg_outcomes() {
        let trace = tiny_trace(10);
        let cfg = DisaggConfig {
            chunk_tokens: 512,
            ..tiny_config(ParallelismPlan::new(2, 1, 1), ParallelismPlan::new(1, 1, 2))
        };
        let mut seq = DisaggServingSim::new(presets::ipu_pod4(), cfg.clone()).unwrap();
        let mut par =
            DisaggServingSim::new(presets::ipu_pod4(), DisaggConfig { threads: 4, ..cfg }).unwrap();
        for policy in RouterPolicy::all() {
            let a = seq.run(Design::ElkFull, policy, &trace).unwrap();
            let b = par.run(Design::ElkFull, policy, &trace).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{policy}: disagg serving must be byte-identical across thread counts"
            );
        }
    }

    #[test]
    fn shared_chips_requires_matching_pool_plans() {
        let e = DisaggServingSim::new(
            presets::ipu_pod4(),
            DisaggConfig {
                shared_chips: true,
                ..tiny_config(ParallelismPlan::new(2, 1, 2), ParallelismPlan::new(1, 1, 2))
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(e.to_string().contains("match"), "{e}");
    }

    #[test]
    fn disjoint_pools_must_fit_the_pod() {
        let e = DisaggServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(2, 1, 2), ParallelismPlan::new(2, 1, 1)),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(e.to_string().contains("chips"), "{e}");
    }
}
