//! Autoscaling cluster serving: an elastic `dp` fleet on the shared
//! deterministic event kernel.
//!
//! [`AutoscaleServingSim`] replays a request trace like
//! [`ClusterServingSim`](crate::ClusterServingSim), but the number of
//! live replica groups is controlled at runtime: a periodic controller
//! compares the **time-weighted waiting-queue depth** per ready group
//! and the **windowed SLO attainment** against thresholds and grows or
//! shrinks the ready set between `min_groups` and `max_groups`.
//!
//! Spinning up a group is not free: the group must compile its stage
//! plans, so its cold start equals its plan-compilation cost —
//! [`AutoscaleConfig::cold_start_steps`] warm-up step latencies priced
//! through the same single-flight `PlanCache` the serving steps use.
//! Once the fleet has compiled the warm-up shapes, later spin-ups are
//! warm starts (the cache already holds the plans) and become ready
//! immediately — the cold/warm-start dynamic FaaS simulators model for
//! containers, with plan compilation as the cold path.
//!
//! Everything runs on the [`elk_sim_core`] kernel in one global event
//! order, the controller included, so reports are byte-identical at
//! any compile-thread count. No wall-clock quantity may be added to
//! [`AutoscaleReport`] — see the `PlanSearchStats` convention in
//! `elk-spec`.

use serde::Serialize;

use elk_baselines::Design;
use elk_hw::SystemConfig;
use elk_model::Phase;
use elk_obs::Obs;
use elk_serve::{next_step, LatencyStats, RequestOutcome, RequestTrace, SloConfig, StepPlan};
use elk_sim_core::{EventQueue, QueueStat, PRIO_ARRIVAL, PRIO_STEP_DONE};
use elk_units::Seconds;

use crate::plan::ParallelismPlan;
use crate::pricing::StepPricer;
use crate::serve::ClusterServeConfig;
use crate::ClusterError;

/// Controller events fire after every arrival and step completion at
/// the same instant, so scaling decisions see settled state.
const PRIO_CONTROL: u8 = 2;

/// Autoscaling controller policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutoscaleConfig {
    /// Groups provisioned at trace start and the floor the controller
    /// never shrinks below (`>= 1`).
    pub min_groups: u64,
    /// Ceiling on simultaneously provisioned groups; `tp * pp *
    /// max_groups` must fit the pod.
    pub max_groups: u64,
    /// Controller decision cadence (simulated seconds).
    pub interval: Seconds,
    /// Scale up when the window's time-weighted waiting depth per
    /// ready group exceeds this.
    pub up_queue_depth: f64,
    /// Scale down when the per-group depth falls below this (and the
    /// SLO target holds).
    pub down_queue_depth: f64,
    /// Windowed SLO-attainment floor: attainment below this also
    /// triggers a scale-up, and blocks scale-downs.
    pub slo_target: f64,
    /// Cold-start size: warm-up step latencies a fresh group pays
    /// before it can serve, priced through the plan cache.
    pub cold_start_steps: f64,
}

impl Default for AutoscaleConfig {
    /// One always-on group, up to four, quarter-second decisions.
    fn default() -> Self {
        AutoscaleConfig {
            min_groups: 1,
            max_groups: 4,
            interval: Seconds::new(0.25),
            up_queue_depth: 4.0,
            down_queue_depth: 0.5,
            slo_target: 0.9,
            cold_start_steps: 25.0,
        }
    }
}

impl AutoscaleConfig {
    fn validate(&self) -> Result<(), ClusterError> {
        let fail = |msg: String| Err(ClusterError::Invalid(msg));
        if self.min_groups < 1 {
            return fail("autoscale min_groups must be >= 1".into());
        }
        if self.max_groups < self.min_groups {
            return fail(format!(
                "autoscale max_groups ({}) must be >= min_groups ({})",
                self.max_groups, self.min_groups
            ));
        }
        if self.interval.as_secs() <= 0.0 {
            return fail("autoscale interval must be > 0".into());
        }
        if !(self.down_queue_depth >= 0.0 && self.up_queue_depth > self.down_queue_depth) {
            return fail(format!(
                "autoscale thresholds need up_queue_depth ({}) > down_queue_depth ({}) >= 0",
                self.up_queue_depth, self.down_queue_depth
            ));
        }
        if !(0.0..=1.0).contains(&self.slo_target) {
            return fail(format!(
                "autoscale slo_target must be in [0, 1], got {}",
                self.slo_target
            ));
        }
        if self.cold_start_steps < 0.0 {
            return fail("autoscale cold_start_steps must be >= 0".into());
        }
        Ok(())
    }
}

/// A fleet transition, in controller order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScaleEventKind {
    /// The controller provisioned the group (it starts warming, or is
    /// ready at once on a warm start).
    Up,
    /// The group finished its cold start and joined the ready set.
    Ready,
    /// The controller marked the group draining: no new requests, and
    /// it leaves once its queue empties.
    Down,
    /// A drained group released its chips.
    Off,
}

/// One entry of the fleet transition log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScaleEvent {
    /// Simulated time of the transition.
    pub time: Seconds,
    /// What happened.
    pub kind: ScaleEventKind,
    /// The group it happened to.
    pub group: usize,
    /// Ready groups immediately after the transition.
    pub ready: usize,
    /// Cold-start delay paid (`Up` only; zero on warm starts and
    /// reactivations).
    pub cold_start: Seconds,
}

/// Aggregated result of one autoscaled serving run. Deterministic: no
/// wall-clock fields, byte-identical at any `threads` setting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AutoscaleReport {
    /// The design that served the trace.
    pub design: Design,
    /// Group shape and fleet ceiling: `(tp, pp, max_groups)`.
    pub plan: ParallelismPlan,
    /// Fleet floor.
    pub min_groups: u64,
    /// Fleet ceiling.
    pub max_groups: u64,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to completion (the loop drains every queue).
    pub completed: usize,
    /// Trace start to the last token of the last request.
    pub makespan: Seconds,
    /// Time-to-first-token summary.
    pub ttft: LatencyStats,
    /// Time-per-output-token summary (multi-token requests only).
    pub tpot: LatencyStats,
    /// End-to-end latency summary.
    pub e2e: LatencyStats,
    /// The SLO the run was scored against.
    pub slo: SloConfig,
    /// Fraction of completed requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second of makespan.
    pub goodput_rps: f64,
    /// All completions per second of makespan.
    pub throughput_rps: f64,
    /// Generated tokens per second of makespan (all groups).
    pub tokens_per_sec: f64,
    /// Prefill iterations across all groups.
    pub prefill_steps: u64,
    /// Decode iterations across all groups.
    pub decode_steps: u64,
    /// Requests dispatched to each group slot, in slot order.
    pub per_group_requests: Vec<usize>,
    /// Time-weighted mean waiting-queue depth (same contract as
    /// [`ClusterServingReport`](crate::ClusterServingReport)).
    pub mean_queue_depth: f64,
    /// Deepest waiting queue observed on any group at any instant.
    pub max_queue_depth: usize,
    /// `(time, waiting)` depth transitions, all groups interleaved.
    pub queue_depth: Vec<(Seconds, usize)>,
    /// Up transitions the controller issued (initial provisioning
    /// included).
    pub scale_ups: u64,
    /// Down transitions the controller issued.
    pub scale_downs: u64,
    /// Spin-ups that paid a fresh plan compile (the rest were warm).
    pub cold_starts: u64,
    /// Total simulated seconds spent in cold starts.
    pub cold_start_total: Seconds,
    /// Provisioned chip-time: Σ over groups of (time from `Up` to
    /// `Off` or makespan) × `tp` × `pp`, in chip-seconds. The
    /// autoscaler's cost side; compare against `dp × tp × pp ×
    /// makespan` for a static fleet.
    pub chip_seconds: f64,
    /// Most groups simultaneously provisioned (warming included).
    pub peak_groups: usize,
    /// The fleet transition log, time-monotone.
    pub transitions: Vec<ScaleEvent>,
    /// Simulation-kernel events fired (arrivals, step completions,
    /// controller ticks, ready events).
    pub sim_events: u64,
    /// Per-request timelines, in trace order (`replica` is the group).
    pub outcomes: Vec<RequestOutcome>,
}

/// Lifecycle of a group slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupState {
    /// Released: no chips held, receives nothing.
    Off,
    /// Provisioned, compiling its plans; receives nothing yet.
    Warming,
    /// Serving and eligible for new arrivals.
    Ready,
    /// Finishing its queue; receives no new arrivals.
    Draining,
}

/// Events on the autoscaled fleet's shared timeline.
enum Ev {
    /// The request at this trace index reaches the front-end router.
    Arrival(usize),
    /// This group's in-flight scheduler step completes.
    StepDone {
        /// Index of the group whose step finished.
        gid: usize,
    },
    /// This group's cold start finishes.
    GroupReady {
        /// Index of the group that finished warming.
        gid: usize,
    },
    /// Periodic controller decision point.
    ScaleTick,
}

/// What a group's in-flight step will do when its completion fires.
enum PendingStep {
    /// Prefill of these trace indices.
    Prefill {
        /// Trace indices admitted into the step.
        batch: Vec<usize>,
    },
    /// One decode iteration over the group's active set.
    Decode,
}

struct InFlight {
    idx: usize,
    generated: u64,
}

/// One group slot's live state.
struct Slot {
    state: GroupState,
    waiting: Vec<usize>,
    active: Vec<InFlight>,
    pending: Option<PendingStep>,
    prefill_steps: u64,
    decode_steps: u64,
    queue: QueueStat,
    served: usize,
    /// Completion time of the slot's last step.
    end: Seconds,
    /// When the slot was last provisioned (None while off).
    on_since: Option<Seconds>,
    /// Accumulated provisioned time from finished on-intervals.
    on_time: Seconds,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: GroupState::Off,
            waiting: Vec::new(),
            active: Vec::new(),
            pending: None,
            prefill_steps: 0,
            decode_steps: 0,
            queue: QueueStat::new(),
            served: 0,
            end: Seconds::ZERO,
            on_since: None,
            on_time: Seconds::ZERO,
        }
    }

    /// Queued + in-flight requests, as the router observes them.
    fn outstanding(&self) -> usize {
        let in_step = match &self.pending {
            Some(PendingStep::Prefill { batch }) => batch.len(),
            _ => 0,
        };
        self.waiting.len() + self.active.len() + in_step
    }

    fn drained(&self) -> bool {
        self.waiting.is_empty() && self.active.is_empty() && self.pending.is_none()
    }
}

/// Trace-driven serving simulator with an elastic group fleet.
///
/// Owns the same `StepPricer` machinery as
/// [`ClusterServingSim`](crate::ClusterServingSim): stage plans live in
/// one single-flight cache, so serving steps and cold-start warm-ups
/// price identically and consecutive runs reuse compiled stages.
#[derive(Debug)]
pub struct AutoscaleServingSim {
    config: ClusterServeConfig,
    auto: AutoscaleConfig,
    pricer: StepPricer,
    obs: Obs,
}

impl AutoscaleServingSim {
    /// Creates a simulator on the pod `system`. The `(tp, pp)` of
    /// `config.plan` shapes every group; its `dp` is ignored — the
    /// fleet runs between `auto.min_groups` and `auto.max_groups`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when the controller config is
    /// ill-formed or `tp * pp * max_groups` does not fit the pod.
    pub fn new(
        system: SystemConfig,
        config: ClusterServeConfig,
        auto: AutoscaleConfig,
    ) -> Result<Self, ClusterError> {
        config.batch.validate();
        auto.validate()?;
        let plan = ParallelismPlan::new(config.plan.tp, config.plan.pp, auto.max_groups);
        plan.validate_structure(&system, &config.model)
            .map_err(ClusterError::Invalid)?;
        let config = ClusterServeConfig { plan, ..config };
        let pricer = StepPricer::new(
            &system,
            config.model.clone(),
            config.plan,
            config.sim,
            config.threads,
        );
        Ok(AutoscaleServingSim {
            config,
            auto,
            pricer,
            obs: Obs::null(),
        })
    }

    /// Attaches a recorder: subsequent runs emit kernel dispatch spans,
    /// per-request lanes, fleet-transition instants on the `fleet`
    /// track, and `autoscale.*` metrics. All recorded quantities are
    /// sim-time only and byte-identical across `threads` settings.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The serve configuration (with `plan.dp` set to `max_groups`).
    #[must_use]
    pub fn config(&self) -> &ClusterServeConfig {
        &self.config
    }

    /// The controller policy.
    #[must_use]
    pub fn autoscale_config(&self) -> &AutoscaleConfig {
        &self.auto
    }

    /// The cold-start delay a fresh (cache-cold) group pays under
    /// `design` for a trace whose longest prompt is `prompt_hint`
    /// tokens: [`AutoscaleConfig::cold_start_steps`] × the warm-up
    /// shape set's step latencies, priced through the plan cache.
    ///
    /// # Errors
    ///
    /// Propagates compile failures as [`ClusterError::Compile`].
    pub fn cold_start_cost(
        &self,
        design: Design,
        prompt_hint: u64,
    ) -> Result<Seconds, ClusterError> {
        let batch = &self.config.batch;
        let warmup = [
            batch.step_workload(Phase::Prefill, 1, prompt_hint),
            batch.step_workload(Phase::Decode, batch.max_batch, prompt_hint),
        ];
        let mut total = Seconds::ZERO;
        for wl in warmup {
            total += self
                .pricer
                .split_step(design, wl)
                .map_err(|(stage, source)| ClusterError::Compile { stage, source })?;
        }
        Ok(Seconds::new(total.as_secs() * self.auto.cold_start_steps))
    }

    /// Serves `trace` under `design` with the elastic fleet and
    /// reports request-level metrics plus the scale transition log.
    ///
    /// # Errors
    ///
    /// Propagates compile failures as [`ClusterError::Compile`].
    #[allow(clippy::too_many_lines)]
    pub fn run(
        &mut self,
        design: Design,
        trace: &RequestTrace,
    ) -> Result<AutoscaleReport, ClusterError> {
        let max = self.auto.max_groups as usize;
        let min = self.auto.min_groups as usize;
        let reqs = &trace.requests;
        let mut slots: Vec<Slot> = (0..max).map(|_| Slot::new()).collect();
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; trace.len()];
        let mut transitions: Vec<ScaleEvent> = Vec::new();
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.observe(
            self.obs.clone(),
            "autoscale/kernel",
            &[
                (PRIO_ARRIVAL, "arrival"),
                (PRIO_STEP_DONE, "step_done"),
                (PRIO_CONTROL, "control"),
            ],
        );

        // The warm-up shape set prices against the trace's worst-case
        // prompt, so the cold start covers the plans the group will
        // actually need.
        let prompt_hint = reqs.iter().map(|r| r.prompt_len).max().unwrap_or(1);
        let cold_cost = self.cold_start_cost(design, prompt_hint)?;
        // `true` once any group's spin-up has compiled the warm-up
        // shapes this run: later spin-ups hit the shared cache and
        // start warm. Deliberately NOT read from PlanCache counters —
        // those shift with the compile worker count.
        let mut fleet_warm = false;

        let ready_count = |slots: &[Slot]| {
            slots
                .iter()
                .filter(|s| s.state == GroupState::Ready)
                .count()
        };

        // The floor fleet is provisioned before the trace window opens.
        for (gid, slot) in slots.iter_mut().enumerate().take(min) {
            slot.state = GroupState::Ready;
            slot.on_since = Some(Seconds::ZERO);
            transitions.push(ScaleEvent {
                time: Seconds::ZERO,
                kind: ScaleEventKind::Up,
                group: gid,
                ready: gid,
                cold_start: Seconds::ZERO,
            });
            transitions.push(ScaleEvent {
                time: Seconds::ZERO,
                kind: ScaleEventKind::Ready,
                group: gid,
                ready: gid + 1,
                cold_start: Seconds::ZERO,
            });
        }

        for (idx, req) in reqs.iter().enumerate() {
            q.schedule(req.arrival, PRIO_ARRIVAL, Ev::Arrival(idx));
        }
        if !trace.is_empty() {
            q.schedule(self.auto.interval, PRIO_CONTROL, Ev::ScaleTick);
        }

        let mut completed = 0usize;
        let mut window_completed = 0usize;
        let mut window_met = 0usize;
        let mut area_prev = 0.0f64;
        let mut scale_ups = min as u64;
        let mut scale_downs = 0u64;
        let mut cold_starts = 0u64;
        let mut cold_start_total = Seconds::ZERO;
        let mut on_now = min;
        let mut peak_groups = min;

        while let Some(fired) = q.pop() {
            let now = q.now();
            match fired.event {
                Ev::Arrival(idx) => {
                    // Least-outstanding over the ready set, lowest
                    // index on ties — deterministic, and requests are
                    // never routed to warming or draining groups.
                    let pick = slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.state == GroupState::Ready)
                        .min_by_key(|(gid, s)| (s.outstanding(), *gid))
                        .map(|(gid, _)| gid)
                        .expect("the fleet floor keeps >= 1 group ready");
                    let slot = &mut slots[pick];
                    slot.waiting.push(idx);
                    slot.served += 1;
                    slot.queue.record(now, slot.waiting.len());
                }
                Ev::StepDone { gid } => {
                    let slot = &mut slots[gid];
                    match slot.pending.take().expect("StepDone implies a step") {
                        PendingStep::Prefill { batch } => {
                            slot.prefill_steps += 1;
                            for idx in batch {
                                let outcome = RequestOutcome {
                                    id: reqs[idx].id,
                                    replica: gid,
                                    arrival: reqs[idx].arrival,
                                    first_token: now,
                                    completion: now,
                                    output_len: reqs[idx].output_len,
                                };
                                if reqs[idx].output_len > 1 {
                                    slot.active.push(InFlight { idx, generated: 1 });
                                } else {
                                    completed += 1;
                                    window_completed += 1;
                                    window_met += usize::from(outcome.meets(&self.config.slo));
                                }
                                outcomes[idx] = Some(outcome);
                            }
                        }
                        PendingStep::Decode => {
                            slot.decode_steps += 1;
                            let slo = self.config.slo;
                            slot.active.retain_mut(|a| {
                                a.generated += 1;
                                let outcome = outcomes[a.idx].as_mut().expect("prefilled");
                                outcome.completion = now;
                                let live = a.generated < reqs[a.idx].output_len;
                                if !live {
                                    completed += 1;
                                    window_completed += 1;
                                    window_met += usize::from(outcome.meets(&slo));
                                }
                                live
                            });
                        }
                    }
                    slot.end = now;
                }
                Ev::GroupReady { gid } => {
                    let slot = &mut slots[gid];
                    debug_assert_eq!(slot.state, GroupState::Warming);
                    slot.state = GroupState::Ready;
                    transitions.push(ScaleEvent {
                        time: now,
                        kind: ScaleEventKind::Ready,
                        group: gid,
                        ready: ready_count(&slots),
                        cold_start: Seconds::ZERO,
                    });
                }
                Ev::ScaleTick => {
                    let ready = ready_count(&slots);
                    let area_now: f64 = slots.iter().map(|s| s.queue.area_until(now)).sum();
                    let depth =
                        (area_now - area_prev) / self.auto.interval.as_secs() / ready.max(1) as f64;
                    area_prev = area_now;
                    let attainment = if window_completed > 0 {
                        window_met as f64 / window_completed as f64
                    } else {
                        1.0
                    };
                    window_completed = 0;
                    window_met = 0;
                    let warming = slots.iter().any(|s| s.state == GroupState::Warming);
                    let overloaded =
                        depth > self.auto.up_queue_depth || attainment < self.auto.slo_target;
                    let idle =
                        depth < self.auto.down_queue_depth && attainment >= self.auto.slo_target;
                    // One transition per tick, and none while a group
                    // warms — a cooldown so the controller waits for
                    // ordered capacity before ordering more.
                    if !warming && overloaded && ready < max {
                        scale_ups += 1;
                        if let Some(gid) =
                            slots.iter().position(|s| s.state == GroupState::Draining)
                        {
                            // Cheapest capacity first: a draining group
                            // is still warm and running — reactivate.
                            slots[gid].state = GroupState::Ready;
                            transitions.push(ScaleEvent {
                                time: now,
                                kind: ScaleEventKind::Up,
                                group: gid,
                                ready: ready_count(&slots),
                                cold_start: Seconds::ZERO,
                            });
                            transitions.push(ScaleEvent {
                                time: now,
                                kind: ScaleEventKind::Ready,
                                group: gid,
                                ready: ready_count(&slots),
                                cold_start: Seconds::ZERO,
                            });
                        } else if let Some(gid) =
                            slots.iter().position(|s| s.state == GroupState::Off)
                        {
                            let cold = if fleet_warm { Seconds::ZERO } else { cold_cost };
                            fleet_warm = true;
                            if cold > Seconds::ZERO {
                                cold_starts += 1;
                                cold_start_total += cold;
                            }
                            let slot = &mut slots[gid];
                            slot.state = GroupState::Warming;
                            slot.on_since = Some(now);
                            on_now += 1;
                            peak_groups = peak_groups.max(on_now);
                            transitions.push(ScaleEvent {
                                time: now,
                                kind: ScaleEventKind::Up,
                                group: gid,
                                ready,
                                cold_start: cold,
                            });
                            q.schedule_after(cold, PRIO_CONTROL, Ev::GroupReady { gid });
                        }
                    } else if !warming && idle && ready > min {
                        // Drain the highest-index ready group: lowest
                        // indices stay the stable core of the fleet.
                        let gid = slots
                            .iter()
                            .rposition(|s| s.state == GroupState::Ready)
                            .expect("ready > min >= 1");
                        scale_downs += 1;
                        slots[gid].state = GroupState::Draining;
                        transitions.push(ScaleEvent {
                            time: now,
                            kind: ScaleEventKind::Down,
                            group: gid,
                            ready: ready_count(&slots),
                            cold_start: Seconds::ZERO,
                        });
                    }
                    if completed < trace.len() {
                        q.schedule_after(self.auto.interval, PRIO_CONTROL, Ev::ScaleTick);
                    }
                }
            }
            // Defer dispatch until every event at this instant has
            // fired, then scan slots in index order (deterministic).
            if q.peek_time() == Some(now) {
                continue;
            }
            for gid in 0..slots.len() {
                let slot = &mut slots[gid];
                if !matches!(slot.state, GroupState::Ready | GroupState::Draining)
                    || slot.pending.is_some()
                {
                    continue;
                }
                let prompts: Vec<u64> = slot
                    .waiting
                    .iter()
                    .take(self.config.batch.max_batch as usize)
                    .map(|&i| reqs[i].prompt_len)
                    .collect();
                match next_step(&self.config.batch, &prompts, slot.active.len()) {
                    Some(step) => {
                        let latency = match step {
                            StepPlan::Prefill { admit } => {
                                let batch: Vec<usize> = slot.waiting.drain(..admit).collect();
                                slot.queue.record(now, slot.waiting.len());
                                let longest = batch
                                    .iter()
                                    .map(|&i| reqs[i].prompt_len)
                                    .max()
                                    .expect("prefill admits >= 1");
                                let wl = self.config.batch.step_workload(
                                    Phase::Prefill,
                                    batch.len() as u64,
                                    longest,
                                );
                                let latency = self.pricer.split_step(design, wl).map_err(
                                    |(stage, source)| ClusterError::Compile { stage, source },
                                )?;
                                slot.pending = Some(PendingStep::Prefill { batch });
                                latency
                            }
                            StepPlan::Decode => {
                                let deepest = slot
                                    .active
                                    .iter()
                                    .map(|a| reqs[a.idx].prompt_len + a.generated)
                                    .max()
                                    .expect("decode requires >= 1 active");
                                let wl = self.config.batch.step_workload(
                                    Phase::Decode,
                                    slot.active.len() as u64,
                                    deepest,
                                );
                                let latency = self.pricer.split_step(design, wl).map_err(
                                    |(stage, source)| ClusterError::Compile { stage, source },
                                )?;
                                slot.pending = Some(PendingStep::Decode);
                                latency
                            }
                        };
                        q.schedule_after(latency, PRIO_STEP_DONE, Ev::StepDone { gid });
                    }
                    None => {
                        // An idle draining group releases its chips.
                        if slot.state == GroupState::Draining && slot.drained() {
                            slot.state = GroupState::Off;
                            if let Some(since) = slot.on_since.take() {
                                slot.on_time += now - since;
                            }
                            on_now -= 1;
                            transitions.push(ScaleEvent {
                                time: now,
                                kind: ScaleEventKind::Off,
                                group: gid,
                                ready: ready_count(&slots),
                                cold_start: Seconds::ZERO,
                            });
                        }
                    }
                }
            }
        }

        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("the drain completes every request"))
            .collect();
        let sim_events = q.events_processed();
        Ok(self.summarize(
            design,
            trace,
            slots,
            outcomes,
            transitions,
            Summing {
                sim_events,
                scale_ups,
                scale_downs,
                cold_starts,
                cold_start_total,
                peak_groups,
            },
        ))
    }

    /// Folds per-request outcomes into the aggregate report.
    #[allow(clippy::too_many_lines)]
    fn summarize(
        &self,
        design: Design,
        trace: &RequestTrace,
        slots: Vec<Slot>,
        outcomes: Vec<RequestOutcome>,
        transitions: Vec<ScaleEvent>,
        extra: Summing,
    ) -> AutoscaleReport {
        if self.obs.enabled() {
            self.obs.counter("autoscale.scale_ups", extra.scale_ups);
            self.obs.counter("autoscale.scale_downs", extra.scale_downs);
            self.obs.counter("autoscale.cold_starts", extra.cold_starts);
            for ev in &transitions {
                let name = match ev.kind {
                    ScaleEventKind::Up => "up",
                    ScaleEventKind::Ready => "ready",
                    ScaleEventKind::Down => "down",
                    ScaleEventKind::Off => "off",
                };
                self.obs.instant(
                    "fleet",
                    name,
                    ev.time,
                    &[
                        ("group", ev.group.to_string()),
                        ("ready", ev.ready.to_string()),
                    ],
                );
                self.obs
                    .gauge("fleet", "ready_groups", ev.time, ev.ready as f64);
            }
            for (idx, o) in outcomes.iter().enumerate() {
                self.obs.histogram("autoscale.ttft", o.ttft());
                if let Some(t) = o.tpot() {
                    self.obs.histogram("autoscale.tpot", t);
                }
                self.obs.histogram("autoscale.e2e", o.e2e());
                if !self.obs.sampled(idx) {
                    continue;
                }
                let track = format!("req/{}", o.id);
                let group = [("group", o.replica.to_string())];
                self.obs.span(
                    &track,
                    "prefill",
                    o.arrival,
                    o.first_token - o.arrival,
                    &group,
                );
                if o.completion > o.first_token {
                    self.obs.span(
                        &track,
                        "decode",
                        o.first_token,
                        o.completion - o.first_token,
                        &group,
                    );
                }
            }
        }
        let ttft: Vec<Seconds> = outcomes.iter().map(RequestOutcome::ttft).collect();
        let tpot: Vec<Seconds> = outcomes.iter().filter_map(RequestOutcome::tpot).collect();
        let e2e: Vec<Seconds> = outcomes.iter().map(RequestOutcome::e2e).collect();
        let met = outcomes
            .iter()
            .filter(|o| o.meets(&self.config.slo))
            .count();
        let makespan = slots
            .iter()
            .map(|s| s.end)
            .fold(Seconds::ZERO, Seconds::max);
        let span = makespan.as_secs();
        let per_sec = |x: f64| if span > 0.0 { x / span } else { 0.0 };
        let depth_area: f64 = slots.iter().map(|s| s.queue.area_until(s.end)).sum();
        let sim_time: f64 = slots.iter().map(|s| s.end.as_secs()).sum();
        let max_queue_depth = slots.iter().map(|s| s.queue.max_depth()).max().unwrap_or(0);
        let prefill_steps = slots.iter().map(|s| s.prefill_steps).sum();
        let decode_steps = slots.iter().map(|s| s.decode_steps).sum();
        let per_group_requests = slots.iter().map(|s| s.served).collect();
        // Groups still provisioned at the end bill until the makespan.
        let group_chips = (self.config.plan.tp * self.config.plan.pp) as f64;
        let chip_seconds: f64 = slots
            .iter()
            .map(|s| {
                let mut on = s.on_time;
                if let Some(since) = s.on_since {
                    if makespan > since {
                        on += makespan - since;
                    }
                }
                on.as_secs() * group_chips
            })
            .sum();
        let mut queue_depth: Vec<(Seconds, usize)> = slots
            .into_iter()
            .flat_map(|s| s.queue.into_samples())
            .collect();
        queue_depth.sort_by_key(|&(t, _)| t);
        AutoscaleReport {
            design,
            plan: self.config.plan,
            min_groups: self.auto.min_groups,
            max_groups: self.auto.max_groups,
            requests: trace.len(),
            completed: outcomes.len(),
            makespan,
            ttft: LatencyStats::of(&ttft),
            tpot: LatencyStats::of(&tpot),
            e2e: LatencyStats::of(&e2e),
            slo: self.config.slo,
            slo_attainment: if outcomes.is_empty() {
                0.0
            } else {
                met as f64 / outcomes.len() as f64
            },
            goodput_rps: per_sec(met as f64),
            throughput_rps: per_sec(outcomes.len() as f64),
            tokens_per_sec: per_sec(trace.total_output_tokens() as f64),
            prefill_steps,
            decode_steps,
            per_group_requests,
            mean_queue_depth: if sim_time > 0.0 {
                depth_area / sim_time
            } else {
                0.0
            },
            max_queue_depth,
            queue_depth,
            scale_ups: extra.scale_ups,
            scale_downs: extra.scale_downs,
            cold_starts: extra.cold_starts,
            cold_start_total: extra.cold_start_total,
            chip_seconds,
            peak_groups: extra.peak_groups,
            transitions,
            sim_events: extra.sim_events,
            outcomes,
        }
    }
}

/// Controller counters threaded from the event loop to the report.
struct Summing {
    sim_events: u64,
    scale_ups: u64,
    scale_downs: u64,
    cold_starts: u64,
    cold_start_total: Seconds,
    peak_groups: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use elk_hw::presets;
    use elk_model::{zoo, SeqBuckets};
    use elk_serve::{BatchConfig, Request, RouterPolicy};
    use elk_units::Seconds;

    fn tiny_config() -> ClusterServeConfig {
        let mut model = zoo::llama2_13b();
        model.layers = 2;
        ClusterServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_prefill_tokens: 2048,
                seq_buckets: SeqBuckets::new(256, 2048),
                bucket_batch: true,
            },
            ..ClusterServeConfig::new(model, ParallelismPlan::new(1, 1, 1))
        }
    }

    /// A front-loaded burst: `n` requests in a tight opening volley,
    /// then a sparse tail, so the controller first grows then shrinks.
    fn burst_trace(n: usize) -> RequestTrace {
        let mut requests: Vec<Request> = (0..n as u64)
            .map(|i| Request {
                id: i,
                arrival: Seconds::from_millis(2.0 * i as f64),
                prompt_len: 300 + 37 * (i % 5),
                output_len: 2 + i % 6,
            })
            .collect();
        for i in 0..6u64 {
            requests.push(Request {
                id: n as u64 + i,
                arrival: Seconds::new(3.0 + 0.5 * i as f64),
                prompt_len: 256,
                output_len: 2,
            });
        }
        RequestTrace::from_requests(requests)
    }

    fn sim(auto: AutoscaleConfig) -> AutoscaleServingSim {
        AutoscaleServingSim::new(presets::ipu_pod4(), tiny_config(), auto).expect("valid config")
    }

    fn busy_auto() -> AutoscaleConfig {
        AutoscaleConfig {
            interval: Seconds::new(0.1),
            up_queue_depth: 1.0,
            down_queue_depth: 0.25,
            ..AutoscaleConfig::default()
        }
    }

    #[test]
    fn burst_scales_up_then_back_down() {
        let report = sim(busy_auto())
            .run(Design::ElkFull, &burst_trace(40))
            .expect("runs");
        assert_eq!(report.completed, report.requests);
        assert!(report.scale_ups > 1, "the burst must trigger a spin-up");
        assert!(
            report.scale_downs >= 1,
            "the sparse tail must trigger a drain: {:?}",
            report.transitions
        );
        assert_eq!(report.cold_starts, 1, "first spin-up pays, later are warm");
        assert!(report.cold_start_total > Seconds::ZERO);
        assert!(report.peak_groups > 1);
        assert!(report.chip_seconds > 0.0);
        // The fleet never exceeds its bounds.
        assert!(report.peak_groups <= report.max_groups as usize);
    }

    #[test]
    fn transitions_are_time_monotone_and_consistent() {
        let report = sim(busy_auto())
            .run(Design::ElkFull, &burst_trace(40))
            .expect("runs");
        let mut last = Seconds::ZERO;
        for ev in &report.transitions {
            assert!(ev.time >= last, "transition log must be time-sorted");
            last = ev.time;
        }
        let ups = report
            .transitions
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Up)
            .count() as u64;
        assert_eq!(ups, report.scale_ups);
        // Every Up is eventually matched by a Ready for that group.
        for ev in &report.transitions {
            if ev.kind == ScaleEventKind::Up {
                assert!(
                    report
                        .transitions
                        .iter()
                        .any(|e| e.kind == ScaleEventKind::Ready
                            && e.group == ev.group
                            && e.time >= ev.time),
                    "group {} went up but never ready",
                    ev.group
                );
            }
        }
    }

    #[test]
    fn static_floor_matches_fixed_fleet() {
        // min == max disables scaling: the run must match the plain
        // cluster engine with the same dp and router, event for event.
        let auto = AutoscaleConfig {
            min_groups: 2,
            max_groups: 2,
            ..AutoscaleConfig::default()
        };
        let trace = burst_trace(20);
        let a = sim(auto).run(Design::ElkFull, &trace).expect("autoscaled");
        let mut fixed = crate::ClusterServingSim::new(
            presets::ipu_pod4(),
            ClusterServeConfig {
                ..ClusterServeConfig {
                    plan: ParallelismPlan::new(1, 1, 2),
                    ..tiny_config()
                }
            },
        )
        .expect("fixed fleet");
        let b = fixed
            .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &trace)
            .expect("fixed run");
        assert_eq!(a.outcomes, b.outcomes, "same routing, same timelines");
        assert_eq!(a.prefill_steps, b.prefill_steps);
        assert_eq!(a.decode_steps, b.decode_steps);
        assert_eq!(a.scale_ups, 2, "only the initial provisioning");
        assert_eq!(a.scale_downs, 0);
        assert_eq!(a.cold_starts, 0);
    }

    #[test]
    fn no_request_lands_on_an_unready_group() {
        let report = sim(busy_auto())
            .run(Design::ElkFull, &burst_trace(40))
            .expect("runs");
        // Reconstruct each group's ready intervals from the log and
        // check every outcome's arrival fell inside one.
        for o in &report.outcomes {
            let mut ready_at: Option<Seconds> = None;
            let mut covered = false;
            for ev in &report.transitions {
                if ev.group != o.replica || ev.time > o.arrival {
                    continue;
                }
                match ev.kind {
                    ScaleEventKind::Ready | ScaleEventKind::Up
                        if ev.kind == ScaleEventKind::Ready =>
                    {
                        ready_at = Some(ev.time);
                    }
                    ScaleEventKind::Down | ScaleEventKind::Off => ready_at = None,
                    _ => {}
                }
                covered = ready_at.is_some();
            }
            assert!(
                covered,
                "request {} arrived at {} on group {} outside a ready interval",
                o.id, o.arrival, o.replica
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let trace = burst_trace(30);
        let mut seq = sim(busy_auto());
        let mut par = AutoscaleServingSim::new(
            presets::ipu_pod4(),
            ClusterServeConfig {
                threads: 8,
                ..tiny_config()
            },
            busy_auto(),
        )
        .expect("valid config");
        let a = seq.run(Design::ElkFull, &trace).expect("t1");
        let b = par.run(Design::ElkFull, &trace).expect("t8");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "autoscaled serving must be byte-identical across thread counts"
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        let err = AutoscaleServingSim::new(
            presets::ipu_pod4(),
            tiny_config(),
            AutoscaleConfig {
                min_groups: 0,
                ..AutoscaleConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("min_groups"), "{err}");
        let err = AutoscaleServingSim::new(
            presets::ipu_pod4(),
            tiny_config(),
            AutoscaleConfig {
                max_groups: 8,
                ..AutoscaleConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("chips"), "{err}");
        let err = AutoscaleServingSim::new(
            presets::ipu_pod4(),
            tiny_config(),
            AutoscaleConfig {
                up_queue_depth: 0.1,
                down_queue_depth: 0.5,
                ..AutoscaleConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("up_queue_depth"), "{err}");
    }
}
